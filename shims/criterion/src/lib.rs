//! Minimal offline stand-in for the `criterion` crate.
//!
//! Keeps the same authoring surface (`criterion_group!`, groups,
//! `bench_function`, `bench_with_input`, `Throughput`) but measures
//! with a plain wall-clock loop: a short warm-up, then timed batches
//! until a time budget is reached. Results are printed one line per
//! benchmark as `group/name: mean <time> (<iters> iters)` plus
//! throughput when configured.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; used to derive a rate from the mean time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Two-part benchmark id (`function` / `parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self { name: format!("{function}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    /// Mean seconds per iteration of the last `iter` call.
    mean_secs: f64,
    iters_run: u64,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self { mean_secs: f64::NAN, iters_run: 0, budget }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run once to pull code/data into caches and get a
        // per-iteration estimate for batch sizing.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed().max(Duration::from_nanos(1));

        let mut total = first;
        let mut iters: u64 = 1;
        while total < self.budget {
            let batch = ((self.budget.as_secs_f64() / 4.0 / first.as_secs_f64()) as u64)
                .clamp(1, 1_000_000);
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.mean_secs = total.as_secs_f64() / iters as f64;
        self.iters_run = iters;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!("{label}: mean {} ({} iters)", human_time(b.mean_secs), b.iters_run);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / b.mean_secs / (1 << 20) as f64;
            line.push_str(&format!(", {rate:.1} MiB/s"));
        }
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / b.mean_secs;
            line.push_str(&format!(", {rate:.0} elem/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named collection of benchmarks sharing throughput/sample config.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    budget: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        // Fewer samples → shorter budget, mirroring criterion's intent.
        self.budget = Duration::from_millis((20 * n.max(5)) as u64).min(Duration::from_secs(2));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { budget: Duration::from_millis(500) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup { name: name.into(), throughput: None, budget, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&id.to_string(), &b, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
