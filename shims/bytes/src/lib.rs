//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides `BytesMut` (a thin growable byte buffer), the `BufMut`
//! little-endian writer surface, and the `Buf` little-endian reader
//! surface for `&[u8]` cursors — exactly the API the paged store's
//! serializer uses.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer; a thin wrapper over `Vec<u8>`.
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { inner: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// Little-endian write surface.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Little-endian read surface over a consuming cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
    fn copy_to_array<const N: usize>(&mut self) -> [u8; N];

    fn get_u8(&mut self) -> u8 {
        self.copy_to_array::<1>()[0]
    }
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.copy_to_array())
    }
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.copy_to_array())
    }
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.copy_to_array())
    }
    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.copy_to_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn copy_to_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(N <= self.len(), "read past end of buffer");
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_i64_le(-42);
        buf.put_f64_le(std::f64::consts::PI);
        buf.put_slice(b"abc");
        let bytes = buf.to_vec();
        let mut cur: &[u8] = &bytes;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), u64::MAX - 3);
        assert_eq!(cur.get_i64_le(), -42);
        assert_eq!(cur.get_f64_le(), std::f64::consts::PI);
        assert_eq!(&cur[..3], b"abc");
        cur.advance(3);
        assert_eq!(cur.remaining(), 0);
    }
}
