//! Minimal offline stand-in for the `proptest` crate.
//!
//! Preserves the authoring surface used by this workspace — the
//! `proptest!` macro with `#![proptest_config(..)]`, `Strategy` with
//! `prop_map`/`prop_recursive`/`boxed`, range and tuple strategies,
//! `any::<T>()`, `prop::collection::vec`, `Just`, `prop_oneof!`, a tiny
//! `"[a-z]{0,8}"`-style string pattern strategy, and the `prop_assert*`
//! macros. Cases are drawn from a deterministic per-test seeded RNG.
//! There is no shrinking: a failing case reports its values' Debug only
//! through the assertion message.

pub mod test_runner {
    /// Error carried out of a failing property body by `prop_assert*`.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Per-test configuration; only `cases` is interpreted. The other
    /// fields mirror upstream proptest so the conventional
    /// `ProptestConfig { cases: N, ..Default::default() }` spelling
    /// keeps working (and keeps a base to fill from).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256, max_shrink_iters: 1024, max_global_rejects: 65_536 }
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test's path,
    /// so every `cargo test` run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test path gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            O: 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| f(inner.sample(rng)))
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy::new(move |rng| self.sample(rng))
        }

        /// Build recursive values: at each of `depth` levels the result
        /// is either a leaf (this strategy) or one application of
        /// `recurse` over the level below. `_desired_size` and
        /// `_expected_branch` are accepted for API compatibility.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(current).boxed();
                current = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        sampler: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self { sampler: Rc::clone(&self.sampler) }
        }
    }

    impl<T> BoxedStrategy<T> {
        pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            Self { sampler: Rc::new(f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.sampler)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among variants; the backing of `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            Self { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.variants.len());
            self.variants[i].sample(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// String-pattern strategy: a subset of regex syntax covering
    /// sequences of literal chars and char classes (`[a-z0-9]`),
    /// each optionally repeated `{m}` or `{m,n}`.
    impl Strategy for &str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: char class or literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional repetition {m} or {m,n}.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("bad repetition"),
                        n.trim().parse::<usize>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = if hi > lo { lo + rng.below(hi - lo + 1) } else { lo };
            for _ in 0..count {
                out.push(alphabet[rng.below(alphabet.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        /// Arbitrary bit patterns: exercises NaN payloads, infinities,
        /// and subnormals, which the codec tests rely on.
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive-exclusive element-count range for `vec`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 1 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so `prop::collection::vec(..)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}: {}",
                    stringify!($cond), file!(), line!(), format!($($fmt)+),
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right` at {}:{}\n  left: {:?}\n right: {:?}",
                    file!(), line!(), __l, __r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                    file!(), line!(), format!($($fmt)+), __l, __r,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right` at {}:{}\n  both: {:?}",
                    file!(), line!(), __l,
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strategies = ( $( $strat, )+ );
            for __case in 0..__config.cases {
                let ( $($arg,)+ ) = {
                    let ( $(ref $arg,)+ ) = __strategies;
                    ( $( $crate::strategy::Strategy::sample($arg, &mut __rng), )+ )
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed on case {} of {}: {}",
                        stringify!($name), __case + 1, __config.cases, e,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 10i64..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(x in -5.0f64..5.0, n in 3usize..9) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((3..9).contains(&n), "n = {}", n);
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec(any::<u8>(), 2..6),
            pair in arb_pair(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(pair.0 < pair.1);
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1u32), Just(2u32), 5u32..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }

        #[test]
        fn string_pattern(s in "[a-z]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }

        #[test]
        fn recursive_strategy_terminates(depth_tag in arb_nested()) {
            prop_assert!(count_depth(&depth_tag) <= 5);
        }

        #[test]
        fn early_return_ok(v in 0u64..10) {
            if v > 100 {
                return Ok(());
            }
            prop_assert_eq!(v, v);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Nested {
        Leaf,
        Wrap(Box<Nested>),
    }

    fn count_depth(n: &Nested) -> usize {
        match n {
            Nested::Leaf => 0,
            Nested::Wrap(inner) => 1 + count_depth(inner),
        }
    }

    fn arb_nested() -> impl Strategy<Value = Nested> {
        Just(Nested::Leaf).prop_recursive(4, 16, 1, |inner| {
            inner.prop_map(|n| Nested::Wrap(Box::new(n)))
        })
    }

    #[test]
    fn prop_assert_eq_reports_values() {
        fn failing() -> Result<(), TestCaseError> {
            let a = 1;
            let b = 2;
            prop_assert_eq!(a, b);
            Ok(())
        }
        let err = failing().unwrap_err();
        assert!(err.to_string().contains("left: 1"));
    }
}
