//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with the `parking_lot` API shape the
//! workspace uses: infallible `lock`/`read`/`write` that recover from
//! poisoning instead of returning `Result`s. Only the surface actually
//! consumed by the workspace is provided.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with `parking_lot`-style infallible guards.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with `parking_lot`-style infallible `lock`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
