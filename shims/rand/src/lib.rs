//! Minimal offline stand-in for the `rand` crate.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64, which is more
//! than adequate statistically for the simulation and sampling code in
//! this workspace. Only the API surface the workspace consumes is
//! provided: `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::
//! seed_from_u64`, `rngs::StdRng`, and `seq::SliceRandom`.

use std::ops::Range;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value surface, blanket-implemented for every
/// `RngCore` (mirroring rand's own design so `R: Rng + ?Sized` bounds
/// in the workspace keep working).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`.
pub trait UniformRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo over a 64-bit draw: bias is negligible for the
                // span sizes used in this workspace's tests/simulators.
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}
uniform_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self { s }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use super::Xoshiro256PlusPlus as StdRng;
}

pub mod seq {
    use super::{Rng, UniformRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_style_generic_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(9);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
