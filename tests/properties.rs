//! Cross-crate property tests: planted-parameter recovery, codec
//! round-trips through the whole storage stack, formula round-trips,
//! and approximate-vs-exact agreement under random laws.

use lawsdb::core::LawsDb;
use lawsdb::fit::FitOptions;
use lawsdb::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Grouped capture recovers planted power-law parameters for any
    /// reasonable (p, α) and answers the point query with them.
    #[test]
    fn capture_recovers_planted_power_law(
        p in 0.1f64..5.0,
        alpha in -1.5f64..-0.1,
    ) {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for i in 0..40usize {
            src.push(0i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(alpha));
        }
        let mut b = TableBuilder::new("m");
        b.add_i64("s", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let mut db = LawsDb::new();
        db.quality.min_r2 = 0.0;
        db.register_table(b.build().unwrap()).unwrap();
        let model = db
            .capture_model(
                "m",
                "intensity ~ p * nu ^ alpha",
                Some("s"),
                &FitOptions::default().with_initial("alpha", -0.7),
            )
            .unwrap();
        let predicted = model.predict_scalar(Some(0), &[("nu", 0.14)]).unwrap();
        let truth = p * 0.14f64.powf(alpha);
        prop_assert!((predicted - truth).abs() < 1e-6 * truth.max(1.0),
            "predicted {predicted} vs {truth}");
    }

    /// The full storage stack (column encode → pages → device → decode)
    /// round-trips arbitrary float columns, including NaN and infinities.
    #[test]
    fn paged_storage_roundtrips_any_float_column(
        values in prop::collection::vec(
            prop_oneof![
                any::<f64>(),
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ],
            1..300,
        ),
        page_size in 64usize..1024,
    ) {
        use lawsdb::storage::pager::Pager;
        let mut b = TableBuilder::new("t");
        b.add_f64("v", values.clone());
        let table = b.build().unwrap();
        let mut pager = Pager::new(page_size, 4);
        pager.store_table(&table).unwrap();
        let back = pager.read_table("t").unwrap();
        let col = back.column("v").unwrap().f64_data().unwrap();
        prop_assert_eq!(col.len(), values.len());
        for (a, b) in col.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The residual codec is bit-exact for arbitrary observation and
    /// prediction vectors.
    #[test]
    fn residual_codec_lossless_roundtrip(
        pairs in prop::collection::vec((any::<f64>(), -1e6f64..1e6), 0..200),
    ) {
        use lawsdb::storage::compress::residual;
        let observed: Vec<f64> = pairs.iter().map(|(o, _)| *o).collect();
        let predicted: Vec<f64> = pairs.iter().map(|(_, p)| *p).collect();
        let enc = residual::encode_lossless(&observed, &predicted).unwrap();
        let back = residual::decode_lossless(&enc, &predicted).unwrap();
        for (a, b) in back.iter().zip(&observed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The generic LZSS+Huffman pipeline round-trips arbitrary bytes.
    #[test]
    fn generic_compression_roundtrips(data in prop::collection::vec(any::<u8>(), 0..5000)) {
        use lawsdb::storage::compress::{generic_compress, generic_decompress};
        let enc = generic_compress(&data);
        prop_assert_eq!(generic_decompress(&enc).unwrap(), data);
    }

    /// Formula display → parse round-trips and preserves evaluation.
    #[test]
    fn formula_display_roundtrip(
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        x in 0.1f64..10.0,
    ) {
        use lawsdb::expr::{parse_expr, Bindings};
        let sources = [
            format!("{a} + {b} * x"),
            format!("{a} * x ^ 2 - {b} / (x + 1)"),
            format!("exp({b} * ln(x)) + {a}"),
            format!("max(x, {a}) + min(x, {b})"),
        ];
        for src in &sources {
            let e = parse_expr(src).unwrap();
            let reparsed = parse_expr(&e.to_string()).unwrap();
            let mut bind = Bindings::new();
            bind.set("x", x);
            let v1 = e.eval(&bind).unwrap();
            let v2 = reparsed.eval(&bind).unwrap();
            prop_assert!(
                (v1 - v2).abs() <= 1e-9 * (1.0 + v1.abs()) || (v1.is_nan() && v2.is_nan()),
                "{src}: {v1} vs {v2}"
            );
        }
    }

    /// SQL aggregate results over random tables match a straightforward
    /// reference computation.
    #[test]
    fn sql_aggregates_match_reference(
        values in prop::collection::vec(-1e3f64..1e3, 1..100),
    ) {
        let mut b = TableBuilder::new("t");
        b.add_f64("v", values.clone());
        let db = LawsDb::new();
        db.register_table(b.build().unwrap()).unwrap();
        let r = db
            .query("SELECT COUNT(v) AS c, SUM(v) AS s, AVG(v) AS a, MIN(v) AS lo, MAX(v) AS hi FROM t")
            .unwrap();
        let row = r.table.row(0).unwrap();
        let sum: f64 = values.iter().sum();
        prop_assert_eq!(row[0].as_i64().unwrap(), values.len() as i64);
        prop_assert!((row[1].as_f64().unwrap() - sum).abs() < 1e-6 * (1.0 + sum.abs()));
        prop_assert!(
            (row[2].as_f64().unwrap() - sum / values.len() as f64).abs() < 1e-6
        );
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(row[3].as_f64().unwrap(), lo);
        prop_assert_eq!(row[4].as_f64().unwrap(), hi);
    }
}
