//! Correctness integration: on noise-free data the model-backed answers
//! must agree with exact execution across many query shapes — the
//! approximate engine is a *rewrite*, and on clean data the rewrite is
//! semantics-preserving over the reconstructed relation.

use lawsdb::core::LawsDb;
use lawsdb::fit::FitOptions;
use lawsdb::prelude::*;

/// Clean multi-source power-law table: one observation per
/// (source, band), so the reconstructed relation equals the base data.
fn clean_db() -> LawsDb {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for s in 0..20i64 {
        let p = 0.5 + s as f64 * 0.25;
        let alpha = -1.0 + s as f64 * 0.05;
        for &f in &freqs {
            src.push(s);
            nu.push(f);
            intensity.push(p * f.powf(alpha));
        }
    }
    let mut b = TableBuilder::new("m");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(b.build().unwrap()).unwrap();
    db.capture_model(
        "m",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default().with_initial("alpha", -0.7),
    )
    .unwrap();
    db
}

fn both(db: &LawsDb, sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let exact = db.query(sql).unwrap().table;
    let approx = db.query_approx(sql).unwrap().table;
    let to_rows = |t: &lawsdb::storage::Table| {
        (0..t.row_count()).map(|i| t.row(i).unwrap()).collect::<Vec<_>>()
    };
    (to_rows(&exact), to_rows(&approx))
}

fn rows_close(a: &[Vec<Value>], b: &[Vec<Value>]) {
    assert_eq!(a.len(), b.len(), "row counts differ: {} vs {}", a.len(), b.len());
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.len(), rb.len());
        for (va, vb) in ra.iter().zip(rb) {
            match (va.as_f64(), vb.as_f64()) {
                (Some(x), Some(y)) => {
                    assert!(
                        (x - y).abs() <= 1e-6 * (1.0 + x.abs()),
                        "{x} vs {y} in {ra:?} / {rb:?}"
                    )
                }
                _ => assert_eq!(va, vb),
            }
        }
    }
}

#[test]
fn point_select_matches() {
    let db = clean_db();
    let (e, a) = both(&db, "SELECT intensity FROM m WHERE source = 7 AND nu = 0.16");
    rows_close(&e, &a);
}

#[test]
fn predicate_scan_matches() {
    let db = clean_db();
    let (e, a) = both(
        &db,
        "SELECT source, intensity FROM m WHERE nu = 0.15 AND intensity > 2.0 ORDER BY source",
    );
    rows_close(&e, &a);
}

#[test]
fn group_by_aggregate_matches() {
    let db = clean_db();
    let (e, a) = both(
        &db,
        "SELECT source, AVG(intensity) AS m_i, MAX(intensity) AS p_i FROM m \
         GROUP BY source ORDER BY source",
    );
    rows_close(&e, &a);
}

#[test]
fn arithmetic_projection_matches() {
    let db = clean_db();
    let (e, a) = both(
        &db,
        "SELECT source, intensity * 2 + 1 AS scaled FROM m \
         WHERE nu = 0.12 ORDER BY scaled DESC LIMIT 5",
    );
    rows_close(&e, &a);
}

#[test]
fn between_and_disjunction_match() {
    let db = clean_db();
    let (e, a) = both(
        &db,
        "SELECT source, nu, intensity FROM m \
         WHERE nu BETWEEN 0.14 AND 0.17 AND (source = 3 OR source = 12) \
         ORDER BY source, nu",
    );
    rows_close(&e, &a);
}

#[test]
fn global_aggregates_match() {
    let db = clean_db();
    for agg in ["COUNT(intensity)", "SUM(intensity)", "AVG(intensity)", "MIN(intensity)", "MAX(intensity)"] {
        let sql = format!("SELECT {agg} AS v FROM m");
        let e = db.query(&sql).unwrap().table.column("v").unwrap().to_f64_lossy().unwrap()[0];
        let ans = db.query_approx(&sql).unwrap();
        // Either strategy (enumeration or analytic) must agree.
        let col = ans
            .table
            .column("v")
            .or_else(|_| ans.table.column("value"))
            .unwrap();
        let a = col.to_f64_lossy().unwrap()[0];
        assert!((e - a).abs() <= 1e-6 * (1.0 + e.abs()), "{agg}: exact {e} vs approx {a}");
    }
}

#[test]
fn order_by_and_limit_match() {
    let db = clean_db();
    let (e, a) = both(
        &db,
        "SELECT source, intensity FROM m WHERE nu = 0.18 \
         ORDER BY intensity DESC LIMIT 3",
    );
    rows_close(&e, &a);
}
