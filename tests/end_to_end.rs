//! End-to-end integration: the paper's full pipeline on the synthetic
//! LOFAR workload — generate, register, intercept a fit, answer both
//! example queries, compress, detect anomalies.

use lawsdb::approx::anomaly::{rank_anomalies, recall_at_k, MisfitScore};
use lawsdb::core::storage_mgr::{compress_column, decompress_column, CompressionMode};
use lawsdb::core::FitOptions;
use lawsdb::data::lofar::{LofarConfig, LofarDataset};
use lawsdb::prelude::*;

fn lofar_db(sources: usize, noise: f64, anomalies: f64) -> (LawsDb, LofarDataset) {
    let cfg = LofarConfig {
        noise_rel: noise,
        anomaly_fraction: anomalies,
        ..LofarConfig::with_sources(sources)
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table.clone()).unwrap();
    (db, data)
}

fn capture(db: &LawsDb) -> lawsdb::core::FitReport {
    let mut session = db.session();
    let frame = session.frame("measurements").unwrap();
    session
        .fit(
            &frame,
            "intensity ~ p * nu ^ alpha",
            FitOptions::grouped_by("source")
                .with_raw(lawsdb::fit::FitOptions::default().with_initial("alpha", -0.7)),
        )
        .unwrap()
}

#[test]
fn paper_pipeline_end_to_end() {
    let (db, data) = lofar_db(300, 0.05, 0.0);
    let report = capture(&db);
    assert!(report.overall_r2 > 0.85, "R² {}", report.overall_r2);
    assert_eq!(report.parameter_vectors, 300);

    // Paper query 1: point reconstruction, zero IO, error-bounded.
    let a1 = db
        .query_approx("SELECT intensity FROM measurements WHERE source = 42 AND nu = 0.14")
        .unwrap();
    assert_eq!(a1.rows_scanned, 0);
    assert_eq!(a1.table.row_count(), 1);
    let v = a1.table.column("intensity").unwrap().f64_data().unwrap()[0];
    let t = &data.truth[42];
    let truth = t.p * 0.14_f64.powf(t.alpha);
    assert!(
        (v - truth).abs() < 0.1 * truth.abs().max(0.01),
        "predicted {v} vs truth {truth}"
    );
    assert!(a1.error_bound.unwrap() > 0.0);

    // Paper query 2: enumeration, compared against exact execution.
    let q2 = "SELECT source, intensity FROM measurements \
              WHERE nu = 0.15 AND intensity > 1.0";
    let approx = db.query_approx(q2).unwrap();
    let exact = db.query(q2).unwrap();
    let approx_sources: std::collections::BTreeSet<i64> = approx
        .table
        .column("source")
        .unwrap()
        .i64_data()
        .unwrap()
        .iter()
        .copied()
        .collect();
    let exact_sources: std::collections::BTreeSet<i64> = exact
        .table
        .column("source")
        .unwrap()
        .i64_data()
        .unwrap()
        .iter()
        .copied()
        .collect();
    let disagree = approx_sources.symmetric_difference(&exact_sources).count();
    // Sources whose noisy intensity straddles the 1.0 threshold flip
    // between the exact (noisy) and model (denoised) answer, so the
    // allowed disagreement is statistical; the slack term absorbs
    // RNG-stream differences across generator implementations.
    assert!(
        disagree <= exact_sources.len() / 10 + 4,
        "sets differ by {disagree} of {}",
        exact_sources.len()
    );
}

#[test]
fn semantic_compression_roundtrip_through_engine() {
    let (db, _) = lofar_db(100, 0.02, 0.0);
    capture(&db);
    let model = db.models().best_for("measurements", "intensity", false).unwrap();
    let table = db.table("measurements").unwrap();
    let compressed = compress_column(&model, &table, CompressionMode::Lossless).unwrap();
    assert!(compressed.ratio() < 1.0);
    let back = decompress_column(&compressed, &model, &table).unwrap();
    let original = table.column("intensity").unwrap().f64_data().unwrap();
    for (a, b) in back.iter().zip(original) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn anomaly_detection_on_planted_transients() {
    let (db, data) = lofar_db(800, 0.08, 0.03);
    capture(&db);
    let model = db.models().best_for("measurements", "intensity", false).unwrap();
    let ranked = rank_anomalies(&model, MisfitScore::OneMinusR2);
    let k = data.anomalies.len();
    assert!(k > 5, "generator should have planted anomalies");
    let recall = recall_at_k(&ranked, &data.anomalies, 2 * k);
    assert!(recall > 0.5, "recall@2k = {recall}");
}

#[test]
fn transparent_answering_switches_paths() {
    let (db, _) = lofar_db(50, 0.05, 0.0);
    // Before capture: exact.
    let before = db
        .query_transparent("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
        .unwrap();
    assert!(!before.is_approximate());
    capture(&db);
    // After capture: approximate, zero IO.
    let after = db
        .query_transparent("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
        .unwrap();
    assert!(after.is_approximate());
    assert_eq!(after.rows_scanned(), 0);
    // A query no model covers still works exactly (COUNT(*) has no
    // modeled column).
    let exact = db.query_transparent("SELECT COUNT(*) FROM measurements").unwrap();
    assert!(!exact.is_approximate());
}

#[test]
fn data_change_lifecycle() {
    let (db, _) = lofar_db(60, 0.02, 0.0);
    let report = capture(&db);
    // Append rows for a brand-new source.
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for i in 0..40usize {
        src.push(5000i64);
        nu.push(freqs[i % 4]);
        intensity.push(1.5 * freqs[i % 4].powf(-0.6));
    }
    let stale = db
        .append_rows(
            "measurements",
            &[
                lawsdb::storage::Column::from_i64(src),
                lawsdb::storage::Column::from_f64(nu),
                lawsdb::storage::Column::from_f64(intensity),
            ],
        )
        .unwrap();
    assert_eq!(stale.len(), 1);
    // Stale: no active model answers.
    assert!(db
        .query_approx("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.15")
        .is_err());
    // Re-fit covers the new source too.
    let fresh = db
        .refit(
            report.model,
            &lawsdb::fit::FitOptions::default().with_initial("alpha", -0.7),
        )
        .unwrap();
    assert_eq!(fresh.params.vector_count(), 61);
    let a = db
        .query_approx("SELECT intensity FROM measurements WHERE source = 5000 AND nu = 0.15")
        .unwrap();
    let v = a.table.column("intensity").unwrap().f64_data().unwrap()[0];
    assert!((v - 1.5 * 0.15_f64.powf(-0.6)).abs() < 0.05);
}
