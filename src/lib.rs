//! # LawsDB — Capturing the Laws of (Data) Nature
//!
//! Facade crate for the LawsDB workspace, a production-quality Rust
//! reproduction of the CIDR 2015 vision paper *"Capturing the Laws of
//! (Data) Nature"* (Mühleisen, Kersten, Manegold — CWI).
//!
//! LawsDB is a columnar relational engine that **intercepts statistical
//! model fitting** performed against stored data, judges the quality of
//! the fitted models, stores models and parameters in a catalog, and then
//! exploits them for:
//!
//! * **approximate query answering** — answering SQL point, range and
//!   aggregate queries from captured models, with error bounds, without
//!   touching the base data ("zero-IO scans");
//! * **semantic compression** — storing model parameters plus residuals
//!   instead of raw columns, reconstructing losslessly on demand;
//! * **anomaly detection** — surfacing the observations that defy the
//!   captured laws.
//!
//! ## Quickstart
//!
//! ```
//! use lawsdb::prelude::*;
//!
//! // Build an engine, load a tiny power-law data set, capture a model.
//! let mut db = LawsDb::new();
//! let mut tb = TableBuilder::new("measurements");
//! tb.add_i64("source", (0..100).map(|i| i / 10).collect());
//! tb.add_f64("nu", (0..100).map(|i| 0.1 + 0.01 * (i % 10) as f64).collect());
//! tb.add_f64(
//!     "intensity",
//!     (0..100)
//!         .map(|i| {
//!             let nu: f64 = 0.1 + 0.01 * (i % 10) as f64;
//!             2.0 * nu.powf(-0.7)
//!         })
//!         .collect(),
//! );
//! db.register_table(tb.build().unwrap()).unwrap();
//!
//! // An analyst fits a model through the strawman session — LawsDB
//! // intercepts it (Figure 2 of the paper).
//! let mut session = db.session();
//! let frame = session.frame("measurements").unwrap();
//! let report = session
//!     .fit(&frame, "intensity ~ p * nu ^ alpha", FitOptions::grouped_by("source"))
//!     .unwrap();
//! assert!(report.overall_r2 > 0.99);
//!
//! // Later queries can be answered approximately from the model alone.
//! let answer = session
//!     .query_approx("SELECT intensity FROM measurements WHERE source = 4 AND nu = 0.14")
//!     .unwrap();
//! assert!(answer.rows_scanned == 0); // zero-IO
//! ```
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the paper-vs-measured record of every reproduced exhibit.

pub use lawsdb_approx as approx;
pub use lawsdb_cluster as cluster;
pub use lawsdb_core as core;
pub use lawsdb_data as data;
pub use lawsdb_expr as expr;
pub use lawsdb_fit as fit;
pub use lawsdb_linalg as linalg;
pub use lawsdb_models as models;
pub use lawsdb_obs as obs;
pub use lawsdb_query as query;
pub use lawsdb_server as server;
pub use lawsdb_storage as storage;

/// One-stop imports for applications.
pub mod prelude {
    pub use lawsdb_core::engine::LawsDb;
    pub use lawsdb_core::session::{FitOptions, Session};
    pub use lawsdb_data::lofar::{LofarConfig, LofarDataset};
    pub use lawsdb_expr::Expr;
    pub use lawsdb_fit::diagnostics::FitDiagnostics;
    pub use lawsdb_models::catalog::ModelCatalog;
    pub use lawsdb_models::CapturedModel;
    pub use lawsdb_obs::QueryProfile;
    pub use lawsdb_query::QueryResult;
    pub use lawsdb_server::{Client, Server, ServerConfig};
    pub use lawsdb_storage::table::{Table, TableBuilder};
    pub use lawsdb_storage::value::Value;
}
