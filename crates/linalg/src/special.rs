//! Special functions: ln-gamma, regularized incomplete gamma and beta,
//! and the error function.
//!
//! These are the numerical roots of every quality measure the paper
//! relies on (Section 3: "we could use the R² coefficient of
//! determination or the results of an F-test"): the F and Student-t
//! cumulative distributions are regularized incomplete beta functions,
//! and the χ² CDF is a regularized incomplete gamma.
//!
//! Implementations follow the classic Lanczos / continued-fraction
//! formulations (Numerical Recipes style) with double-precision accuracy
//! of roughly 1e-13 over the ranges exercised by model diagnostics.

/// Natural log of the gamma function for `x > 0`, via a 9-term Lanczos
/// approximation (g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x <= 0.0 {
        // Reflection formula for the log-gamma of non-positive reals is
        // only needed by tests; diagnostics always pass positive df.
        if x == x.floor() {
            return f64::INFINITY; // poles at non-positive integers
        }
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin().abs()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// otherwise, per the usual domain split.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || x < 0.0 || x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    if !(a > 0.0) || x < 0.0 || x.is_nan() {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    // Modified Lentz algorithm for the continued fraction.
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    if !(a > 0.0) || !(b > 0.0) || x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Symmetry split keeps the continued fraction convergent.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = f64::MIN_POSITIVE / EPS;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, via the regularized incomplete gamma: `erf(x) =
/// sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    let v = gamma_p(0.5, x * x);
    if x >= 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-13);
        close(ln_gamma(2.0), 0.0, 1e-13);
        close(ln_gamma(5.0), 24.0_f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800.0_f64.ln(), 1e-11);
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-13);
        // Γ(3/2) = √π/2.
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-13);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 10.0), (10.0, 3.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-13);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}.
        for &x in &[0.1, 1.0, 2.5, 7.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
        assert!(gamma_p(-1.0, 1.0).is_nan());
        assert!(gamma_p(1.0, -1.0).is_nan());
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.2), (7.0, 1.5, 0.8)] {
            close(beta_inc(a, b, x), 1.0 - beta_inc(b, a, 1.0 - x), 1e-12);
        }
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1, 1) = x.
        for &x in &[0.1, 0.37, 0.9] {
            close(beta_inc(1.0, 1.0, x), x, 1e-13);
        }
    }

    #[test]
    fn beta_inc_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry.
        close(beta_inc(2.0, 2.0, 0.5), 0.5, 1e-13);
        // I_x(1, 2) = 1 − (1−x)² = 2x − x².
        close(beta_inc(1.0, 2.0, 0.3), 2.0 * 0.3 - 0.09, 1e-13);
    }

    #[test]
    fn erf_reference_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erfc(1.0), 1.0 - 0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erf_saturates() {
        assert!(erf(10.0) > 0.999_999_999);
        assert!(erf(-10.0) < -0.999_999_999);
    }
}
