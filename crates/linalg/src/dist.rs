//! Probability distributions for model diagnostics.
//!
//! The paper's interception layer judges every captured model (Section 3,
//! step 2: "Judge the quality of the model"). That judging needs:
//!
//! * the **F distribution** — F-test of a fitted model against a reduced
//!   model with fewer parameters;
//! * the **Student-t distribution** — per-parameter significance
//!   (t-statistics) and prediction intervals on approximate answers
//!   ("returned with error bounds", Figure 2 step 5);
//! * the **Normal distribution** — CLT error bars for the sampling-AQP
//!   baseline;
//! * the **χ² distribution** — residual-variance tests used by the
//!   model-change detector.

use crate::special::{beta_inc, erf, gamma_p};

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard normal CDF (the probit function).
///
/// Acklam's rational approximation refined with one Halley step; accurate
/// to well below 1e-12 across (0, 1). Returns ±∞ at the boundaries and
/// NaN outside [0, 1].
pub fn normal_quantile(p: f64) -> f64 {
    if p.is_nan() || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Coefficients of Acklam's approximation.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student-t cumulative distribution function with `df` degrees of
/// freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if !(df > 0.0) || t.is_nan() {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(0.5 * df, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t-statistic.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    if t.is_nan() {
        return f64::NAN;
    }
    2.0 * (1.0 - t_cdf(t.abs(), df))
}

/// Quantile of the Student-t distribution via bisection on [`t_cdf`].
///
/// The fitting layer only evaluates this a handful of times per captured
/// model (confidence bands), so a robust 1e-12 bisection is preferable to
/// a long closed-form approximation.
pub fn t_quantile(p: f64, df: f64) -> f64 {
    if !(df > 0.0) || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    if (p - 0.5).abs() < 1e-300 {
        return 0.0;
    }
    // Bracket: normal quantile is a good starting scale; widen until the
    // CDF brackets p.
    let mut lo = -1.0;
    let mut hi = 1.0;
    while t_cdf(lo, df) > p {
        lo *= 2.0;
        if lo < -1e12 {
            return f64::NEG_INFINITY;
        }
    }
    while t_cdf(hi, df) < p {
        hi *= 2.0;
        if hi > 1e12 {
            return f64::INFINITY;
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-13 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// F-distribution cumulative distribution function with `(d1, d2)`
/// degrees of freedom.
pub fn f_cdf(f: f64, d1: f64, d2: f64) -> f64 {
    if !(d1 > 0.0) || !(d2 > 0.0) || f.is_nan() {
        return f64::NAN;
    }
    if f <= 0.0 {
        return 0.0;
    }
    beta_inc(0.5 * d1, 0.5 * d2, d1 * f / (d1 * f + d2))
}

/// Upper-tail p-value of an F statistic — the quantity reported by the
/// model-vs-reduced-model F-test in fit diagnostics.
pub fn f_p_value(f: f64, d1: f64, d2: f64) -> f64 {
    if f.is_nan() {
        return f64::NAN;
    }
    if f <= 0.0 {
        return 1.0;
    }
    1.0 - f_cdf(f, d1, d2)
}

/// χ² cumulative distribution function with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if !(df > 0.0) || x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 {
        return 0.0;
    }
    gamma_p(0.5 * df, 0.5 * x)
}

/// Upper-tail χ² p-value.
pub fn chi2_p_value(x: f64, df: f64) -> f64 {
    1.0 - chi2_cdf(x, df)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn normal_cdf_reference() {
        close(normal_cdf(0.0), 0.5, 1e-15);
        close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
        close(normal_cdf(-1.0), 0.158_655_253_931_457_05, 1e-12);
    }

    #[test]
    fn normal_quantile_roundtrip() {
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            close(normal_cdf(normal_quantile(p)), p, 1e-12);
        }
        close(normal_quantile(0.975), 1.959_963_984_540_054, 1e-9);
        assert_eq!(normal_quantile(0.0), f64::NEG_INFINITY);
        assert_eq!(normal_quantile(1.0), f64::INFINITY);
        assert!(normal_quantile(1.5).is_nan());
    }

    #[test]
    fn t_cdf_matches_normal_for_large_df() {
        for &x in &[-2.0, -0.5, 0.0, 1.0, 2.5] {
            close(t_cdf(x, 1e7), normal_cdf(x), 1e-6);
        }
    }

    #[test]
    fn t_cdf_cauchy_special_case() {
        // t with df = 1 is the Cauchy distribution: CDF = 1/2 + atan(x)/π.
        for &x in &[-3.0, -1.0, 0.0, 0.5, 4.0] {
            close(t_cdf(x, 1.0), 0.5 + x.atan() / std::f64::consts::PI, 1e-12);
        }
    }

    #[test]
    fn t_quantile_reference() {
        // t_{0.975, 10} = 2.228138852 (standard table value).
        close(t_quantile(0.975, 10.0), 2.228_138_852, 1e-7);
        close(t_quantile(0.5, 7.0), 0.0, 1e-12);
        // Symmetry.
        close(t_quantile(0.025, 10.0), -t_quantile(0.975, 10.0), 1e-9);
    }

    #[test]
    fn f_cdf_reference() {
        // F(1, d2) relates to t²: P(F ≤ f) = P(|t| ≤ √f) for t with d2 df.
        let f = 4.0;
        let via_t = t_cdf(2.0, 12.0) - t_cdf(-2.0, 12.0);
        close(f_cdf(f, 1.0, 12.0), via_t, 1e-12);
        // F_{0.95}(2, 10) ≈ 4.10282 — check CDF there is 0.95.
        close(f_cdf(4.102_821, 2.0, 10.0), 0.95, 1e-5);
    }

    #[test]
    fn f_p_value_edges() {
        assert_eq!(f_p_value(0.0, 2.0, 10.0), 1.0);
        assert!(f_p_value(1e6, 2.0, 10.0) < 1e-9);
    }

    #[test]
    fn chi2_cdf_exponential_special_case() {
        // χ² with 2 df is Exp(1/2): CDF = 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 3.0, 10.0] {
            close(chi2_cdf(x, 2.0), 1.0 - (-x / 2.0_f64).exp(), 1e-13);
        }
    }

    #[test]
    fn chi2_median_near_df() {
        // Median of χ²_k ≈ k(1 − 2/(9k))³.
        let k = 10.0_f64;
        let approx_median = k * (1.0 - 2.0 / (9.0 * k)).powi(3);
        close(chi2_cdf(approx_median, k), 0.5, 1e-3);
    }

    #[test]
    fn invalid_inputs_yield_nan() {
        assert!(t_cdf(1.0, 0.0).is_nan());
        assert!(f_cdf(1.0, -1.0, 2.0).is_nan());
        assert!(chi2_cdf(1.0, 0.0).is_nan());
    }
}
