//! Row-major dense matrix.

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This is deliberately a simple owned buffer: the matrices that appear in
/// model fitting are small (p × p normal matrices for p parameters, n × p
/// design matrices for one group's observations), so we optimize for clear
/// code and cache-friendly row-major traversal rather than for views and
/// strides.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix from a row-major data vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch { expected: (rows, cols), got: data.len() });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Create the n×n identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build a design matrix from column slices: each slice becomes one
    /// column. All slices must have equal length.
    pub fn from_columns(columns: &[&[f64]]) -> Result<Self> {
        let cols = columns.len();
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_columns",
                    lhs: (rows, i),
                    rhs: (c.len(), i),
                });
            }
        }
        Ok(Matrix::from_fn(rows, cols, |r, c| columns[c][r]))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Copy column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Unchecked-by-type get; panics on out-of-range indices like slice
    /// indexing does.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Set one entry.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute entry (∞-norm of the vectorization).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::norm2(&self.data)
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps both the rhs row and the output row in
        // cache; this matters for the n×p by p×p products in fitting.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for j in 0..rrow.len() {
                    orow[j] += a * rrow[j];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "matvec",
                lhs: self.shape(),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|r| crate::dot(self.row(r), v)).collect())
    }

    /// `selfᵀ * v` without materializing the transpose.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "tr_matvec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = self.row(r);
            let s = v[r];
            if s == 0.0 {
                continue;
            }
            for (o, &x) in out.iter_mut().zip(row) {
                *o += s * x;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self` (the `XᵀX` of the normal equations),
    /// exploiting symmetry: only the upper triangle is computed and then
    /// mirrored.
    pub fn gram(&self) -> Matrix {
        let p = self.cols;
        let mut g = Matrix::zeros(p, p);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..p {
                let xi = row[i];
                if xi == 0.0 {
                    continue;
                }
                for j in i..p {
                    g[(i, j)] += xi * row[j];
                }
            }
        }
        for i in 0..p {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Elementwise sum with `rhs`.
    pub fn add(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "add",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.shape() != rhs.shape() {
            return Err(LinalgError::DimensionMismatch {
                op: "sub",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scaled copy `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Add `lambda` to every diagonal entry in place (Levenberg-Marquardt
    /// damping and ridge regularization both need this).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self.data[i * self.cols + i] += lambda;
        }
    }

    /// Estimate the 1-norm condition number of a square matrix by explicit
    /// inversion through LU. Intended for small fitting matrices where the
    /// O(n³) cost is irrelevant; returns `f64::INFINITY` when singular.
    pub fn condition_estimate(&self) -> f64 {
        if !self.is_square() {
            return f64::NAN;
        }
        let inv = match crate::solve::Lu::new(self).and_then(|lu| lu.inverse()) {
            Ok(inv) => inv,
            Err(_) => return f64::INFINITY,
        };
        self.norm1() * inv.norm1()
    }

    /// Maximum absolute column sum (induced 1-norm).
    pub fn norm1(&self) -> f64 {
        let mut best = 0.0_f64;
        for c in 0..self.cols {
            let mut s = 0.0;
            for r in 0..self.rows {
                s += self[(r, c)].abs();
            }
            best = best.max(s);
        }
        best
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>12.5} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, d: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, d.to_vec()).unwrap()
    }

    #[test]
    fn from_vec_rejects_bad_shape() {
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn identity_matmul_is_identity_op() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a).unwrap(), a);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let b = m(2, 2, &[5., 6., 7., 8.]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = m(2, 3, &[0.0; 6]);
        let b = m(2, 2, &[0.0; 4]);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(0, 1)], 4.0);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let x = m(4, 2, &[1., 2., 3., 4., 5., 6., 7., 8.]);
        let g = x.gram();
        let explicit = x.transpose().matmul(&x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn tr_matvec_matches_transpose_matvec() {
        let x = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let v = [1.0, -1.0, 2.0];
        let a = x.tr_matvec(&v).unwrap();
        let b = x.transpose().matvec(&v).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn from_columns_builds_design_matrix() {
        let c0 = [1.0, 1.0, 1.0];
        let c1 = [2.0, 3.0, 4.0];
        let x = Matrix::from_columns(&[&c0, &c1]).unwrap();
        assert_eq!(x.shape(), (3, 2));
        assert_eq!(x.col(1), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_columns_rejects_ragged() {
        let c0 = [1.0, 1.0];
        let c1 = [2.0];
        assert!(Matrix::from_columns(&[&c0, &c1]).is_err());
    }

    #[test]
    fn add_diagonal_damps() {
        let mut a = Matrix::identity(3);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(2, 2)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn condition_of_identity_is_one() {
        let i = Matrix::identity(4);
        assert!((i.condition_estimate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_of_singular_is_infinite() {
        let s = m(2, 2, &[1., 2., 2., 4.]);
        assert!(s.condition_estimate().is_infinite());
    }

    #[test]
    fn norm1_is_max_col_sum() {
        let a = m(2, 2, &[1., -5., 2., 1.]);
        assert_eq!(a.norm1(), 6.0);
    }
}
