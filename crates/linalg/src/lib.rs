//! # lawsdb-linalg
//!
//! Dense linear algebra and statistical special functions for LawsDB.
//!
//! This crate is the numerical substrate for the model-fitting machinery
//! described in Section 3 of *"Capturing the Laws of (Data) Nature"*
//! (CIDR 2015): ordinary least squares via the normal equations
//! `β̂ = (XᵀX)⁻¹Xᵀy` or (better conditioned) a Householder QR
//! factorization, and the Gauss-Newton / Levenberg-Marquardt updates
//! `β⁽ˢ⁺¹⁾ = β⁽ˢ⁾ − (JᵀJ)⁻¹Jᵀr` which require solving small dense
//! symmetric systems per iteration.
//!
//! Everything is implemented from scratch on plain `f64` buffers: no BLAS,
//! no external numerics crates. Matrices are row-major [`Matrix`] values;
//! factorizations are separate types ([`Cholesky`], [`Qr`], [`Lu`]) so a
//! factorization can be reused across many right-hand sides (the grouped
//! fitting path in `lawsdb-fit` relies on this).
//!
//! The [`special`] module provides ln-gamma, regularized incomplete
//! beta/gamma and erf, from which the [`dist`] module derives the Normal,
//! Student-t, F and χ² distributions used to judge model quality
//! (residual standard error, F-tests, parameter t-statistics).

// `!(x > y)` is a deliberate NaN-aware guard (NaN must take the error
// branch), and index loops over multiple co-indexed buffers are the
// clearest form for the factorization kernels.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod dist;
pub mod error;
pub mod matrix;
pub mod ops;
pub mod solve;
pub mod special;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use solve::{Cholesky, Lu, Qr};

/// Machine-epsilon-scaled tolerance used by the factorizations to decide
/// that a pivot is numerically zero.
pub const PIVOT_TOL: f64 = 1e-12;

/// Dot product of two equal-length slices.
///
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (callers in this workspace always pass equal
/// lengths — the debug assertion documents the contract).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four independent partial sums: faster on the long residual vectors
    // produced by grouped fitting and less rounding correlation.
    let n = a.len().min(b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let chunks = n / 4;
    for i in 0..chunks {
        let k = i * 4;
        s0 += a[k] * b[k];
        s1 += a[k + 1] * b[k + 1];
        s2 += a[k + 2] * b[k + 2];
        s3 += a[k + 3] * b[k + 3];
    }
    for k in chunks * 4..n {
        s0 += a[k] * b[k];
    }
    (s0 + s1) + (s2 + s3)
}

/// Euclidean (L2) norm of a slice, guarded against overflow/underflow by
/// scaling with the largest absolute entry.
#[inline]
pub fn norm2(v: &[f64]) -> f64 {
    let maxabs = v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    if maxabs == 0.0 || !maxabs.is_finite() {
        return maxabs;
    }
    let mut s = 0.0;
    for &x in v {
        let t = x / maxabs;
        s += t * t;
    }
    maxabs * s.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f64> = (0..17).map(|i| i as f64 * 0.5).collect();
        let b: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_is_scale_safe() {
        // Naive sum-of-squares would overflow here.
        let v = [1e200, 1e200];
        let n = norm2(&v);
        assert!((n - 2.0_f64.sqrt() * 1e200).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norm2_tiny_values_do_not_underflow() {
        let v = [1e-200, 1e-200];
        let n = norm2(&v);
        assert!((n - 2.0_f64.sqrt() * 1e-200).abs() / n < 1e-12);
    }
}
