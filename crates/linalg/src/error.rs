//! Error type for the linear-algebra substrate.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by matrix construction and factorization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The requested shape does not match the supplied data length.
    ShapeMismatch {
        /// Rows × cols that the caller asked for.
        expected: (usize, usize),
        /// Number of elements actually supplied.
        got: usize,
    },
    /// Two operands have incompatible dimensions for the operation.
    DimensionMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Left operand shape.
        lhs: (usize, usize),
        /// Right operand shape.
        rhs: (usize, usize),
    },
    /// A factorization encountered a numerically singular matrix.
    Singular {
        /// Which factorization failed.
        what: &'static str,
        /// Pivot index at which the failure was detected.
        pivot: usize,
    },
    /// Cholesky requires a symmetric positive-definite input.
    NotPositiveDefinite {
        /// Diagonal index at which positive-definiteness failed.
        index: usize,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// The least-squares system is under-determined (fewer rows than
    /// columns); the paper's fitting process requires more observations
    /// than model parameters (Section 3).
    UnderDetermined {
        /// Number of observations (rows).
        rows: usize,
        /// Number of parameters (columns).
        cols: usize,
    },
    /// A non-finite value (NaN or ±∞) was encountered where a finite
    /// number is required.
    NonFinite {
        /// Context description.
        what: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => write!(
                f,
                "shape mismatch: {}x{} requires {} elements, got {}",
                expected.0,
                expected.1,
                expected.0 * expected.1,
                got
            ),
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { what, pivot } => {
                write!(f, "{what}: singular matrix (zero pivot at {pivot})")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "cholesky: matrix not positive definite at diagonal {index}")
            }
            LinalgError::NotSquare { shape } => {
                write!(f, "operation requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::UnderDetermined { rows, cols } => write!(
                f,
                "least squares is under-determined: {rows} observations for {cols} parameters"
            ),
            LinalgError::NonFinite { what } => {
                write!(f, "non-finite value encountered in {what}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch { expected: (2, 3), got: 5 };
        assert!(e.to_string().contains("requires 6 elements, got 5"));
        let e = LinalgError::Singular { what: "lu", pivot: 4 };
        assert!(e.to_string().contains("zero pivot at 4"));
        let e = LinalgError::UnderDetermined { rows: 2, cols: 5 };
        assert!(e.to_string().contains("2 observations for 5 parameters"));
    }
}
