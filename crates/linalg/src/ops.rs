//! Vector and summary-statistics helpers shared by the fitting and
//! approximate-query layers.

/// Arithmetic mean; `NaN` for an empty slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Unbiased sample variance (divides by n−1); `NaN` for slices shorter
/// than 2.
pub fn variance(v: &[f64]) -> f64 {
    if v.len() < 2 {
        return f64::NAN;
    }
    let m = mean(v);
    // Two-pass algorithm: numerically stable and the second pass is
    // branch-free.
    let ss: f64 = v.iter().map(|x| (x - m) * (x - m)).sum();
    ss / (v.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(v: &[f64]) -> f64 {
    variance(v).sqrt()
}

/// Total sum of squares around the mean, `Σ(yᵢ − ȳ)²` — the denominator
/// of the coefficient of determination.
pub fn total_sum_of_squares(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    let m = mean(v);
    v.iter().map(|x| (x - m) * (x - m)).sum()
}

/// Pearson correlation coefficient of two equal-length slices.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.len() < 2 {
        return f64::NAN;
    }
    let ma = mean(a);
    let mb = mean(b);
    let (mut sab, mut saa, mut sbb) = (0.0, 0.0, 0.0);
    for (x, y) in a.iter().zip(b) {
        let dx = x - ma;
        let dy = y - mb;
        sab += dx * dy;
        saa += dx * dx;
        sbb += dy * dy;
    }
    if saa == 0.0 || sbb == 0.0 {
        return f64::NAN;
    }
    sab / (saa * sbb).sqrt()
}

/// In-place AXPY: `y ← y + alpha·x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise subtraction `a − b` into a fresh vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Minimum and maximum of a slice in one pass; `None` when empty or when
/// all values are NaN (NaN entries are skipped).
pub fn min_max(v: &[f64]) -> Option<(f64, f64)> {
    let mut it = v.iter().copied().filter(|x| !x.is_nan());
    let first = it.next()?;
    let mut lo = first;
    let mut hi = first;
    for x in it {
        if x < lo {
            lo = x;
        }
        if x > hi {
            hi = x;
        }
    }
    Some((lo, hi))
}

/// p-th quantile (0 ≤ p ≤ 1) using linear interpolation between order
/// statistics (R type-7, the default in most statistical environments).
/// Sorts a copy; `NaN` for an empty slice.
pub fn quantile(v: &[f64], p: f64) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    let mut s: Vec<f64> = v.iter().copied().filter(|x| !x.is_nan()).collect();
    if s.is_empty() {
        return f64::NAN;
    }
    s.sort_by(|a, b| a.partial_cmp(b).expect("NaNs filtered above"));
    let p = p.clamp(0.0, 1.0);
    let h = (s.len() - 1) as f64 * p;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        s[lo] + (h - lo as f64) * (s[hi] - s[lo])
    }
}

/// Median absolute deviation scaled to be consistent with the standard
/// deviation under normality (×1.4826). Robust dispersion estimate used
/// by the anomaly-ranking layer.
pub fn mad(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    let med = quantile(v, 0.5);
    let devs: Vec<f64> = v.iter().map(|x| (x - med).abs()).collect();
    1.4826 * quantile(&devs, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_known() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        // Population variance is 4 → sample variance = 32/7.
        assert!((variance(&v) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_short_slices() {
        assert!(mean(&[]).is_nan());
        assert!(variance(&[1.0]).is_nan());
        assert_eq!(total_sum_of_squares(&[]), 0.0);
        assert!(min_max(&[]).is_none());
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn pearson_perfectly_correlated() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let c = [-1.0, -2.0, -3.0];
        assert!((pearson(&a, &c) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_input_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 4.0).abs() < 1e-12);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_ignores_nans() {
        let v = [f64::NAN, 1.0, 3.0];
        assert!((quantile(&v, 0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn min_max_skips_nan() {
        let v = [3.0, f64::NAN, -1.0, 2.0];
        assert_eq!(min_max(&v), Some((-1.0, 3.0)));
    }

    #[test]
    fn mad_of_symmetric_data() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        // median 3, abs devs [2,1,0,1,2] → median 1 → MAD = 1.4826.
        assert!((mad(&v) - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn axpy_and_sub() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
        assert_eq!(sub(&y, &x), vec![11.0, 22.0]);
    }
}
