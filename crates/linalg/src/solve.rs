//! Dense factorizations: Cholesky, Householder QR and LU with partial
//! pivoting, plus the triangular solves built on top of them.
//!
//! The fitting layer chooses between two OLS paths (Section 3 of the
//! paper solves the normal equations `(XᵀX)β̂ = Xᵀy`):
//!
//! * **Cholesky of the Gram matrix** — fastest, used for well-conditioned
//!   grouped fits where the same tiny normal matrix shape repeats tens of
//!   thousands of times;
//! * **Householder QR of the design matrix** — numerically preferable when
//!   the design is ill-conditioned (squaring the condition number in the
//!   Gram matrix loses half the digits).

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::PIVOT_TOL;

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix. Only the lower triangle of the input is read.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense.
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        // Scale-aware positive-definiteness threshold: a diagonal pivot is
        // "zero" relative to the largest diagonal entry of A.
        let diag_max = (0..n).fold(0.0_f64, |m, i| m.max(a[(i, i)].abs())).max(1.0);
        let tol = diag_max * PIVOT_TOL * PIVOT_TOL;
        for j in 0..n {
            let mut d = a[(j, j)];
            for k in 0..j {
                d -= l[(j, k)] * l[(j, k)];
            }
            if !(d > tol) {
                return Err(LinalgError::NotPositiveDefinite { index: j });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A·x = b` via forward then backward substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // L·y = b
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ·x = y
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Inverse of the factored matrix (used for parameter covariance
    /// `σ²(XᵀX)⁻¹` in fit diagnostics).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// log-determinant of `A` (2·Σ log Lᵢᵢ); useful for information
    /// criteria over multivariate models.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Householder QR factorization of an m×n matrix with m ≥ n.
///
/// Stores the Householder vectors in the lower trapezoid of the working
/// matrix and R in the upper triangle, exactly like LAPACK's `geqrf`.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    /// Householder scalar coefficients τ.
    tau: Vec<f64>,
}

impl Qr {
    /// Factor a matrix with at least as many rows as columns.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::UnderDetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k below row k.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly; store v below the diagonal.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            tau[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= tau[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Shape of the factored matrix.
    pub fn shape(&self) -> (usize, usize) {
        self.qr.shape()
    }

    /// Apply `Qᵀ` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.tau[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// Returns the coefficient vector of length `n`. Fails with
    /// [`LinalgError::Singular`] when `A` is rank-deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr solve",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on R (n×n upper triangle).
        let rmax = (0..n).fold(0.0_f64, |acc, i| acc.max(self.qr[(i, i)].abs())).max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.qr[(i, j)] * x[j];
            }
            let d = self.qr[(i, i)];
            if d.abs() <= rmax * PIVOT_TOL {
                return Err(LinalgError::Singular { what: "qr", pivot: i });
            }
            x[i] = s / d;
        }
        Ok(x)
    }

    /// Residual sum of squares of the least-squares solution, available
    /// for free as the squared norm of the trailing part of `Qᵀb`.
    pub fn residual_sum_of_squares(&self, b: &[f64]) -> Result<f64> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr rss",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        Ok(crate::dot(&y[n..], &y[n..]))
    }

    /// Copy of the upper-triangular factor R (n×n).
    pub fn r(&self) -> Matrix {
        let n = self.qr.cols();
        Matrix::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }

    /// `(RᵀR)⁻¹ = (XᵀX)⁻¹` — the unscaled parameter covariance.
    pub fn xtx_inverse(&self) -> Result<Matrix> {
        let r = self.r();
        let n = r.rows();
        // Invert R by back substitution against identity columns, then
        // form R⁻¹·R⁻ᵀ.
        let rmax = (0..n).fold(0.0_f64, |acc, i| acc.max(r[(i, i)].abs())).max(1.0);
        let mut rinv = Matrix::zeros(n, n);
        for col in 0..n {
            let mut x = vec![0.0; n];
            for i in (0..=col).rev() {
                let mut s = if i == col { 1.0 } else { 0.0 };
                for j in (i + 1)..=col {
                    s -= r[(i, j)] * x[j];
                }
                let d = r[(i, i)];
                if d.abs() <= rmax * PIVOT_TOL {
                    return Err(LinalgError::Singular { what: "qr xtx_inverse", pivot: i });
                }
                x[i] = s / d;
            }
            for i in 0..n {
                rinv[(i, col)] = x[i];
            }
        }
        rinv.matmul(&rinv.transpose())
    }
}

/// LU factorization with partial pivoting for general square systems.
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position i.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    sign: f64,
}

impl Lu {
    /// Factor a square matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_abs().max(1.0);
        for k in 0..n {
            // Partial pivot: largest absolute entry in column k at/below k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= scale * PIVOT_TOL {
                return Err(LinalgError::Singular { what: "lu", pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let d = lu[(k, j)];
                    lu[(i, j)] -= factor * d;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut y: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let mut s = y[i];
            for k in 0..i {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.lu[(i, k)] * y[k];
            }
            y[i] = s / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Explicit inverse, one solve per identity column.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, d: &[f64]) -> Matrix {
        Matrix::from_vec(rows, cols, d.to_vec()).unwrap()
    }

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn cholesky_solves_spd_system() {
        // A = [[4,2],[2,3]], b = [10, 9] → x = [2, 5/3]... compute: solve.
        let a = m(2, 2, &[4., 2., 2., 3.]);
        let ch = Cholesky::new(&a).unwrap();
        let x = ch.solve(&[10.0, 9.0]).unwrap();
        let back = a.matvec(&x).unwrap();
        assert_close(&back, &[10.0, 9.0], 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = m(2, 2, &[1., 2., 2., 1.]); // eigenvalues 3, -1
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = m(2, 3, &[0.0; 6]);
        assert!(matches!(Cholesky::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_factor_reconstructs() {
        let a = m(3, 3, &[25., 15., -5., 15., 18., 0., -5., 0., 11.]);
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let back = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - a[(i, j)]).abs() < 1e-10);
            }
        }
        // Known factor: L = [[5,0,0],[3,3,0],[-1,1,3]]
        assert!((l[(0, 0)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_inverse_and_logdet() {
        let a = m(2, 2, &[2., 0., 0., 8.]);
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse().unwrap();
        assert!((inv[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((inv[(1, 1)] - 0.125).abs() < 1e-12);
        assert!((ch.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_recovers_line() {
        // y = 3 + 2x exactly.
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let ones = [1.0; 4];
        let design = Matrix::from_columns(&[&ones, &xs]).unwrap();
        let qr = Qr::new(&design).unwrap();
        let beta = qr.solve_least_squares(&ys).unwrap();
        assert_close(&beta, &[3.0, 2.0], 1e-10);
        assert!(qr.residual_sum_of_squares(&ys).unwrap() < 1e-18);
    }

    #[test]
    fn qr_matches_cholesky_on_overdetermined() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 3.0).collect();
        let ys: Vec<f64> = xs.iter().enumerate().map(|(i, x)| 1.5 - 0.7 * x + ((i * 37) % 11) as f64 * 0.01).collect();
        let ones = vec![1.0; 20];
        let design = Matrix::from_columns(&[&ones, &xs]).unwrap();
        let qr_beta = Qr::new(&design).unwrap().solve_least_squares(&ys).unwrap();
        let gram = design.gram();
        let rhs = design.tr_matvec(&ys).unwrap();
        let ch_beta = Cholesky::new(&gram).unwrap().solve(&rhs).unwrap();
        assert_close(&qr_beta, &ch_beta, 1e-8);
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Second column is 2× the first.
        let c0 = [1.0, 2.0, 3.0];
        let c1 = [2.0, 4.0, 6.0];
        let design = Matrix::from_columns(&[&c0, &c1]).unwrap();
        let qr = Qr::new(&design).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn qr_rejects_underdetermined() {
        let a = m(2, 3, &[0.0; 6]);
        assert!(matches!(Qr::new(&a), Err(LinalgError::UnderDetermined { .. })));
    }

    #[test]
    fn qr_xtx_inverse_matches_direct() {
        let c0 = [1.0, 1.0, 1.0, 1.0];
        let c1 = [0.0, 1.0, 2.0, 5.0];
        let x = Matrix::from_columns(&[&c0, &c1]).unwrap();
        let viaqr = Qr::new(&x).unwrap().xtx_inverse().unwrap();
        let direct = Lu::new(&x.gram()).unwrap().inverse().unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((viaqr[(i, j)] - direct[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn lu_solves_general_system() {
        let a = m(3, 3, &[0., 2., 1., 1., -2., -3., -1., 1., 2.]);
        let lu = Lu::new(&a).unwrap();
        let b = [-8.0, 0.0, 3.0];
        let x = lu.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        assert_close(&back, &b, 1e-10);
    }

    #[test]
    fn lu_det_known_value() {
        let a = m(2, 2, &[3., 8., 4., 6.]);
        let lu = Lu::new(&a).unwrap();
        assert!((lu.det() - (-14.0)).abs() < 1e-10);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = m(2, 2, &[1., 2., 2., 4.]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn lu_inverse_times_matrix_is_identity() {
        let a = m(3, 3, &[2., 1., 1., 1., 3., 2., 1., 0., 0.]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-10);
            }
        }
    }
}
