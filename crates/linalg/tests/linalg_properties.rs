//! Property tests for the dense linear algebra kernels: algebraic
//! identities and solver residuals on random inputs.

use lawsdb_linalg::{Cholesky, Lu, Matrix, Qr};
use proptest::prelude::*;

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data).expect("exact size"))
}

fn max_abs_diff(a: &Matrix, b: &Matrix) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            worst = worst.max((a[(i, j)] - b[(i, j)]).abs());
        }
    }
    worst
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(a in arb_matrix(4, 3), b in arb_matrix(3, 5)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(max_abs_diff(&lhs, &rhs) < 1e-10);
    }

    /// Gram matrix equals the explicit XᵀX product.
    #[test]
    fn gram_matches_explicit(x in arb_matrix(6, 3)) {
        let g = x.gram();
        let explicit = x.transpose().matmul(&x).unwrap();
        prop_assert!(max_abs_diff(&g, &explicit) < 1e-10);
    }

    /// Cholesky solves random SPD systems: ‖A·x − b‖ tiny.
    /// (A = MᵀM + I is positive definite by construction.)
    #[test]
    fn cholesky_solves_random_spd(
        m in arb_matrix(5, 4),
        b in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        let mut a = m.gram();
        a.add_diagonal(1.0);
        let x = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8, "{u} vs {v}");
        }
    }

    /// LU solves random diagonally-dominant systems exactly.
    #[test]
    fn lu_solves_diag_dominant(
        m in arb_matrix(4, 4),
        b in prop::collection::vec(-5.0f64..5.0, 4),
    ) {
        // Make it safely invertible: add a strong diagonal.
        let mut a = m.clone();
        a.add_diagonal(25.0);
        let x = Lu::new(&a).unwrap().solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-8);
        }
    }

    /// Least-squares optimality: the QR residual is orthogonal to the
    /// column space (Xᵀ·r ≈ 0) — the normal equations, verified.
    #[test]
    fn qr_residual_is_orthogonal_to_columns(
        m in arb_matrix(8, 3),
        y in prop::collection::vec(-5.0f64..5.0, 8),
    ) {
        // Guard against rank deficiency with a diagonal nudge on the
        // first rows.
        let mut x = m.clone();
        for j in 0..3 {
            x[(j, j)] += 10.0;
        }
        let qr = Qr::new(&x).unwrap();
        let beta = qr.solve_least_squares(&y).unwrap();
        let fitted = x.matvec(&beta).unwrap();
        let r: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        let xtr = x.tr_matvec(&r).unwrap();
        for v in xtr {
            prop_assert!(v.abs() < 1e-7, "Xᵀr component {v}");
        }
        // And the RSS shortcut agrees with the explicit residual.
        let rss_direct: f64 = r.iter().map(|v| v * v).sum();
        let rss_qr = qr.residual_sum_of_squares(&y).unwrap();
        prop_assert!((rss_direct - rss_qr).abs() <= 1e-7 * (1.0 + rss_direct));
    }

    /// det(A) · det(A⁻¹) = 1 for well-conditioned matrices.
    #[test]
    fn determinant_of_inverse(m in arb_matrix(3, 3)) {
        let mut a = m.clone();
        a.add_diagonal(20.0);
        let lu = Lu::new(&a).unwrap();
        let inv = lu.inverse().unwrap();
        let det_a = lu.det();
        let det_inv = Lu::new(&inv).unwrap().det();
        prop_assert!((det_a * det_inv - 1.0).abs() < 1e-6, "{det_a} * {det_inv}");
    }
}
