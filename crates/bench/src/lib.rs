//! # lawsdb-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper's evaluation, plus the quantitative experiments implied by its
//! Section 4 claims. See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Two entry points:
//!
//! * the **`report` binary** (`cargo run --release -p lawsdb-bench --bin
//!   report -- <experiment> [--scale paper]`) prints each experiment's
//!   rows/series in paper-style text tables;
//! * the **Criterion benches** (`cargo bench -p lawsdb-bench`) time the
//!   hot paths of each experiment.
//!
//! Every experiment is a plain library function here so both entry
//! points (and the integration tests) share one implementation.

pub mod experiments;

/// Workload scale for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast versions for CI and Criterion.
    Small,
    /// Intermediate scale.
    Medium,
    /// The paper's full LOFAR scale (35,692 sources, 1.45M rows).
    Paper,
}

impl Scale {
    /// LOFAR source count at this scale.
    pub fn lofar_sources(self) -> usize {
        match self {
            Scale::Small => 500,
            Scale::Medium => 5_000,
            Scale::Paper => 35_692,
        }
    }

    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Wall-clock time of a closure, in microseconds, with the result.
pub fn time_us<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e6)
}

/// Format bytes human-readably (KB/MB with one decimal).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1} MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.1} KB", bytes as f64 / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Format microseconds human-readably.
pub fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Paper.lofar_sources(), 35_692);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(11_000_000), "11.0 MB");
        assert_eq!(fmt_bytes(640_000), "640.0 KB");
        assert_eq!(fmt_us(1500.0), "1.50 ms");
        assert_eq!(fmt_us(2_500_000.0), "2.50 s");
    }

    #[test]
    fn time_us_returns_result() {
        let (v, t) = time_us(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
