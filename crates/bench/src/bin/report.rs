//! The experiment report runner.
//!
//! ```text
//! cargo run --release -p lawsdb-bench --bin report -- all --scale small
//! cargo run --release -p lawsdb-bench --bin report -- table1 --scale paper
//! ```
//!
//! Experiments: `table1` (E1), `figure1` (E2), `figure2` (E3), and
//! `e4`…`e11`; `all` runs the suite. Scale: `small` (default),
//! `medium`, or `paper` (the full 35,692-source LOFAR scale).

use lawsdb_bench::experiments as exp;
use lawsdb_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = Scale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes small|medium|paper"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => die(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let run_one = |name: &str| match name {
        "table1" | "e1" => exp::table1::print(&exp::table1::run(scale)),
        "figure1" | "e2" => exp::figure1::print(&exp::figure1::run()),
        "figure2" | "e3" => exp::figure2::print(&exp::figure2::run(scale)),
        "e4" => exp::e4_compression::print(&exp::e4_compression::run(scale)),
        "e5" => exp::e5_zero_io::print(&exp::e5_zero_io::run(scale)),
        "e6" => exp::e6_accuracy::print(&exp::e6_accuracy::run(scale)),
        "e7" => exp::e7_analytic::print(&exp::e7_analytic::run()),
        "e8" => exp::e8_anomaly::print(&exp::e8_anomaly::run(scale)),
        "e9" => exp::e9_enumeration::print(&exp::e9_enumeration::run(scale)),
        "e10" => exp::e10_model_change::print(&exp::e10_model_change::run(scale)),
        "e11" => exp::e11_model_classes::print(&exp::e11_model_classes::run()),
        "bench-query" => {
            let scales: &[usize] = match scale {
                Scale::Small => &[100_000],
                Scale::Medium => &[100_000, 1_000_000],
                Scale::Paper => &[100_000, 1_000_000, 4_000_000],
            };
            let r = exp::morsel::run(scales);
            exp::morsel::print(&r);
            let json = exp::morsel::to_json(&r);
            std::fs::write("BENCH_query.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_query.json: {e}")));
            println!("\nwrote BENCH_query.json");
        }
        "bench-scan-pruning" => {
            let (rows, sources) = match scale {
                Scale::Small => (50_000, 300),
                Scale::Medium => (1_000_000, 2_000),
                Scale::Paper => (4_000_000, 5_000),
            };
            let r = exp::scan_pruning::run(rows, sources);
            exp::scan_pruning::print(&r);
            let json = exp::scan_pruning::to_json(&r);
            std::fs::write("BENCH_scan_pruning.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_scan_pruning.json: {e}")));
            println!("\nwrote BENCH_scan_pruning.json");
            // The zero-IO liveness gate: CI's bench-smoke job runs this
            // arm, so a dead model-pruning tier fails the build.
            if !exp::scan_pruning::model_tier_pruned(&r) {
                die("model tier pruned no pages (pages_pruned_model == 0)");
            }
        }
        "bench-agg" => {
            let rows = match scale {
                Scale::Small => 200_000,
                Scale::Medium => 1_000_000,
                Scale::Paper => 4_000_000,
            };
            let r = exp::agg::run(rows);
            exp::agg::print(&r);
            let json = exp::agg::to_json(&r);
            std::fs::write("BENCH_agg.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_agg.json: {e}")));
            println!("\nwrote BENCH_agg.json");
            // Structural gate: the AcceptAll-heavy workload must answer
            // entirely from zone partials, never touching a base page.
            if !exp::agg::full_workload_zero_io(&r) {
                die("full workload read base pages or pushed no zones");
            }
            // Speedup gate: answering from partials must beat the
            // row-scan path by at least the advertised factor.
            let min = exp::agg::full_workload_min_speedup(&r);
            if min < exp::agg::FULL_WORKLOAD_GATE {
                die(&format!(
                    "full-workload speedup {min:.2}x is under the {:.0}x gate",
                    exp::agg::FULL_WORKLOAD_GATE
                ));
            }
        }
        "bench-resilience" => {
            let scales: &[usize] = match scale {
                Scale::Small => &[100_000],
                Scale::Medium => &[100_000, 1_000_000],
                Scale::Paper => &[100_000, 1_000_000, 4_000_000],
            };
            let r = exp::resilience::run(scales);
            exp::resilience::print(&r);
            let json = exp::resilience::to_json(&r);
            std::fs::write("BENCH_resilience.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_resilience.json: {e}")));
            println!("\nwrote BENCH_resilience.json");
            if !r.within_target() {
                // Advisory, not fatal: best-of-N keeps this stable, but
                // a shared CI box can still blow through 5% on noise.
                println!(
                    "WARNING: governor overhead {:.2}% exceeds the {}% target",
                    r.max_overhead_pct(),
                    exp::resilience::TARGET_PCT
                );
            }
        }
        "bench-obs" => {
            let scales: &[usize] = match scale {
                Scale::Small => &[100_000],
                Scale::Medium => &[100_000, 1_000_000],
                Scale::Paper => &[100_000, 1_000_000, 4_000_000],
            };
            let r = exp::obs::run(scales);
            exp::obs::print(&r);
            let json = exp::obs::to_json(&r);
            std::fs::write("BENCH_obs.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_obs.json: {e}")));
            println!("\nwrote BENCH_obs.json");
            // Hard gate: the analytic bound is noise-free, so a failure
            // means instrumentation genuinely got heavier.
            if !r.within_no_subscriber_gate() {
                die(&format!(
                    "no-subscriber overhead bound {:.3}% exceeds the {}% gate",
                    r.max_no_subscriber_pct(),
                    exp::obs::NO_SUBSCRIBER_GATE_PCT
                ));
            }
            if !r.within_instrumented_gate() {
                // Advisory: a shared CI box can blow through this on noise.
                println!(
                    "WARNING: instrumented overhead {:.2}% exceeds the {}% target",
                    r.max_instrumented_pct(),
                    exp::obs::INSTRUMENTED_GATE_PCT
                );
            }
            // Hard gate: distributed tracing must stay invisible on the
            // healthy scatter-gather path. The interleaved p50 pair
            // cancels drift the same way the cluster failover gate does.
            if !r.within_cluster_trace_gate() {
                die(&format!(
                    "cluster tracing overhead {:.2}% exceeds the {}% gate",
                    r.max_cluster_trace_pct(),
                    exp::obs::CLUSTER_TRACE_GATE_PCT
                ));
            }
        }
        "bench-optimizer" => {
            let (kernel_rows, sources, rounds) = match scale {
                Scale::Small => (200_000, 500, 200),
                Scale::Medium => (1_000_000, 2_000, 400),
                Scale::Paper => (4_000_000, 5_000, 800),
            };
            let r = exp::optimizer::run(kernel_rows, sources, rounds);
            exp::optimizer::print(&r);
            let json = exp::optimizer::to_json(&r);
            std::fs::write("BENCH_optimizer.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_optimizer.json: {e}")));
            println!("\nwrote BENCH_optimizer.json");
            // The adaptive-choice smoke gate: losing more than
            // GATE_PCT% (geomean) to the best static policy means the
            // cost model is steering queries the wrong way.
            if !r.within_gate() {
                die(&format!(
                    "adaptive geomean {:.1}us loses more than {}% to the best static \
                     policy (exact {:.1}us, model {:.1}us)",
                    r.geomean_adaptive_us(),
                    exp::optimizer::GATE_PCT,
                    r.geomean_exact_us(),
                    r.geomean_model_us()
                ));
            }
        }
        "bench-server" => {
            let (rows, per_client) = match scale {
                Scale::Small => (100_000, 24),
                Scale::Medium => (500_000, 32),
                Scale::Paper => (1_000_000, 48),
            };
            let r = exp::server::run(rows, per_client);
            exp::server::print(&r);
            let json = exp::server::to_json(&r);
            std::fs::write("BENCH_server.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_server.json: {e}")));
            println!("\nwrote BENCH_server.json");
            // The admission-control latency gate: service p50 at 8
            // concurrent clients must stay within 2x of the
            // single-client p50 — queue wait, not service time, is
            // where contention is allowed to show up.
            if !r.within_p50_gate {
                die(&format!(
                    "8-client service p50 is {:.3}x the single-client p50 (gate: 2.0x)",
                    r.p50_ratio
                ));
            }
        }
        "bench-cluster" => {
            let (rows, iters) = match scale {
                Scale::Small => (50_000, 20),
                Scale::Medium => (200_000, 30),
                Scale::Paper => (1_000_000, 40),
            };
            let r = exp::cluster::run(rows, iters);
            exp::cluster::print(&r);
            let json = exp::cluster::to_json(&r);
            std::fs::write("BENCH_cluster.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_cluster.json: {e}")));
            println!("\nwrote BENCH_cluster.json");
            // Steady-state failover must be nearly free: once the
            // health tracker marks a replica Down, selection skips it,
            // so the half-dead p50 stays within 10% of healthy.
            if !r.within_failover_gate {
                die(&format!(
                    "steady-state failover p50 is {:.3}x the healthy p50 (gate: 1.10x)",
                    r.worst_overhead
                ));
            }
        }
        "bench-durability" => {
            let scales: &[usize] = match scale {
                Scale::Small => &[20_000, 100_000],
                Scale::Medium => &[20_000, 100_000, 500_000],
                Scale::Paper => &[20_000, 100_000, 500_000, 2_000_000],
            };
            let r = exp::durability::run(scales);
            exp::durability::print(&r);
            let json = exp::durability::to_json(&r);
            std::fs::write("BENCH_durability.json", &json)
                .unwrap_or_else(|e| die(&format!("writing BENCH_durability.json: {e}")));
            println!("\nwrote BENCH_durability.json");
        }
        other => die(&format!("unknown experiment {other:?}")),
    };

    if which == "all" {
        for name in
            ["table1", "figure1", "figure2", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11"]
        {
            run_one(name);
            println!();
        }
    } else {
        run_one(&which);
    }
}

fn usage() {
    println!(
        "usage: report [all|table1|figure1|figure2|e4|e5|e6|e7|e8|e9|e10|e11|bench-query|\
         bench-scan-pruning|bench-agg|bench-resilience|bench-durability|bench-obs|\
         bench-optimizer|bench-server|bench-cluster] \
         [--scale small|medium|paper]"
    );
    println!("  bench-query: morsel-executor throughput sweep; writes BENCH_query.json");
    println!(
        "  bench-resilience: governor overhead, budgeted vs unbudgeted execution; \
         writes BENCH_resilience.json"
    );
    println!(
        "  bench-scan-pruning: zone-map/model pruning sweep; writes BENCH_scan_pruning.json \
         (fails if the model tier prunes nothing)"
    );
    println!(
        "  bench-agg: aggregate-pushdown selectivity sweep over an interleaved \
         (pruning-proof) fixture; writes BENCH_agg.json (fails if the no-WHERE workload \
         reads base pages or lands under the 5x speedup gate)"
    );
    println!("  bench-durability: WAL overhead per device profile; writes BENCH_durability.json");
    println!(
        "  bench-obs: tracing/profiling overhead sweep, single-engine and cluster \
         scatter-gather paths; writes BENCH_obs.json (fails if the no-subscriber bound \
         or the cluster tracing p50 overhead exceeds its gate)"
    );
    println!(
        "  bench-optimizer: comparison-kernel microbench + adaptive plan-choice sweep vs \
         static policies; writes BENCH_optimizer.json (fails if the optimizer loses >5% \
         geomean to the best static policy)"
    );
    println!(
        "  bench-server: concurrent-session sweep (1/2/4/8 clients) through the wire \
         protocol and admission control; writes BENCH_server.json (fails if the 8-client \
         service p50 exceeds 2x the single-client p50)"
    );
    println!(
        "  bench-cluster: sharded scatter-gather sweep (shards x replicas x failure rate); \
         writes BENCH_cluster.json (fails if steady-state failover p50 exceeds 1.10x the \
         healthy p50)"
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage();
    std::process::exit(2)
}
