//! Metrics exposition and `EXPLAIN ANALYZE` from the command line.
//!
//! ```text
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- prom
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- json
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- plan \
//!     "SELECT y FROM t WHERE x >= 15000 AND y <= 32000"
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- explain \
//!     "SELECT y FROM t WHERE x >= 15000 AND y <= 32000"
//! ```
//!
//! Each subcommand spins up a demo engine — `t(x, y = 2x)` with a
//! captured linear law, so zone-map *and* model pruning both have
//! something to do — runs a short mixed workload through the resilient
//! path, and renders the asked-for view: the engine's metrics registry
//! as Prometheus text (`prom`) or JSON (`json`), the cost-based
//! physical plan with estimated rows/cost per node (`plan`), or the
//! per-query profile tree for one statement (`explain`). The same
//! views are available programmatically via `LawsDb::stats_prometheus`,
//! `LawsDb::stats_json`, `LawsDb::explain`, and
//! `Session::explain_analyze`.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme, ReplicaState};
use lawsdb_core::LawsDb;
use lawsdb_fit::FitOptions;
use lawsdb_obs::{MetricsRegistry, MockClock, RecorderConfig};
use lawsdb_query::{ExecOptions, ResourceBudget};
use lawsdb_server::{Client, QueryMode, Server, ServerConfig};
use lawsdb_storage::{Table, TableBuilder};
use std::sync::Arc;

const ROWS: usize = 20_000;

/// The demo engine every subcommand runs against.
fn demo_engine() -> LawsDb {
    let mut b = TableBuilder::new("t");
    b.add_f64("x", (0..ROWS).map(|i| i as f64).collect());
    b.add_f64("y", (0..ROWS).map(|i| 2.0 * i as f64).collect());
    let db = LawsDb::new().with_exec_options(ExecOptions {
        budget: ResourceBudget {
            max_rows: Some(10 * ROWS),
            ..ResourceBudget::default()
        },
        ..ExecOptions::default()
    });
    db.register_table(b.build().expect("demo table builds")).expect("registers");
    db.capture_model("t", "y ~ a + b * x", None, &FitOptions::default())
        .expect("perfect linear law passes the quality gate");
    db
}

/// A short mixed workload so the exposition has non-zero counters:
/// a model-pruned range scan and an aggregate.
fn warm(db: &LawsDb) {
    for sql in [
        "SELECT y FROM t WHERE x >= 15000 AND y <= 32000",
        "SELECT COUNT(*) AS n, MAX(y) AS hi FROM t WHERE y > 30000",
    ] {
        db.query_resilient(sql).expect("demo workload runs");
    }
}

/// The demo cluster: a law-structured table (`intensity = p * nu^alpha`
/// per source) hash-sharded on `source` across 3 shards × 2 replicas,
/// with one captured model per shard so total shard loss can degrade.
/// Walks the failure ladder — healthy, one replica dead (failover),
/// whole shard dead (model fallback) — then renders per-shard health
/// and the `lawsdb_cluster_*` metrics.
fn demo_measurements() -> Table {
    let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
    let nus = [0.12, 0.15, 0.16, 0.18];
    let mut source = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for (s, &(p, alpha)) in laws.iter().enumerate() {
        for i in 0..50 {
            source.push(s as i64);
            let x: f64 = nus[i % nus.len()];
            nu.push(x);
            intensity.push(p * x.powf(alpha));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", source);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let mut t = b.build().expect("demo table builds");
    t.rebuild_synopsis_with(16);
    t
}

fn demo_cluster() {
    let table = demo_measurements();
    let registry = MetricsRegistry::new();
    let cluster = Cluster::new(
        &table,
        ClusterConfig {
            shards: 3,
            replicas: 2,
            scheme: PartitionScheme::Hash { key: "source".to_string() },
            ..ClusterConfig::default()
        },
        &registry,
    )
    .expect("demo cluster builds");
    cluster
        .capture_models("intensity ~ p * nu ^ alpha", "source", &FitOptions::default(), 1)
        .expect("perfect power law passes the quality gate");

    let sql = "SELECT source, AVG(intensity) AS m FROM measurements \
               GROUP BY source ORDER BY source";
    let opts = ExecOptions { threads: 1, ..ExecOptions::default() };
    let show = |label: &str, a: &lawsdb_cluster::ClusterAnswer| {
        println!("-- {label}: {} rows, approximate={}", a.table.row_count(), a.approximate);
        for d in &a.degraded {
            println!("   degraded: {}", d.name());
        }
    };

    let healthy = cluster.query(sql, &opts).expect("healthy query");
    show("healthy", &healthy);
    cluster.kill_replica(0, 0);
    let failover = cluster.query(sql, &opts).expect("failover query");
    show("replica 0.0 dead (failover)", &failover);
    cluster.kill_shard(1);
    // Twice: the second crossing of `fail_threshold` marks shard 1's
    // replicas Down, so the health table below shows the transition.
    cluster.query(sql, &opts).expect("model fallback query");
    let degraded = cluster.query(sql, &opts).expect("model fallback query");
    show("shard 1 fully dead (model fallback)", &degraded);

    println!("\nper-shard health:");
    for s in 0..cluster.config().shards {
        let states: Vec<String> = (0..cluster.config().replicas)
            .map(|r| match cluster.replica_state(s, r) {
                ReplicaState::Up => format!("r{r}=up"),
                ReplicaState::Down => format!("r{r}=down"),
            })
            .collect();
        println!(
            "  shard {s}: {} rows, {}/{} replicas up  [{}]",
            cluster.shard_rows(s),
            cluster.replicas_up(s),
            cluster.config().replicas,
            states.join(" ")
        );
    }

    println!("\ncluster metrics:");
    for line in registry.snapshot().render_prometheus().lines() {
        if line.starts_with("lawsdb_cluster_") {
            println!("  {line}");
        }
    }
}

/// The slow-query flight recorder, end to end: a server over the demo
/// cluster, timed by a `MockClock` so every duration is deterministic,
/// with one replica dead (in-trace failover) and one shard fully dead
/// (in-trace model fallback). Runs a traced cluster query and a plain
/// exact query, then prints the recorder's worst entries with their
/// per-layer attribution and full trace trees — exactly what
/// `Client::slowlog` returns over the wire.
fn demo_slowlog() {
    let table = demo_measurements();
    let db = LawsDb::new();
    db.register_table(table.clone()).expect("registers");
    let cluster = Arc::new(
        Cluster::new(
            &table,
            ClusterConfig {
                shards: 3,
                replicas: 2,
                scheme: PartitionScheme::Hash { key: "source".to_string() },
                morsel_rows: 32,
                fail_threshold: 1,
                probe_after: 1,
                max_abs_residual: 1e-6,
            },
            db.metrics(),
        )
        .expect("demo cluster builds"),
    );
    cluster
        .capture_models("intensity ~ p * nu ^ alpha", "source", &FitOptions::default(), 2)
        .expect("perfect power law passes the quality gate");
    let server = Server::new(
        Arc::new(db),
        ServerConfig {
            clock: Arc::new(MockClock::new(3)),
            recorder: RecorderConfig::default(),
            ..ServerConfig::default()
        },
    );
    server.attach_cluster(Arc::clone(&cluster));

    // Pick two populated shards deterministically: the first loses one
    // replica (failover inside the trace), the second loses both
    // (model fallback inside the trace).
    let populated: Vec<usize> =
        (0..cluster.config().shards).filter(|&s| cluster.shard_rows(s) > 0).collect();
    cluster.kill_replica(populated[0], 0);
    cluster.kill_shard(populated[1]);

    let sql = "SELECT source, AVG(intensity) AS m FROM measurements \
               GROUP BY source ORDER BY source";
    let mut c = Client::connect(server.connect()).expect("connects");
    c.query_traced(QueryMode::Cluster, sql).expect("traced cluster query");
    c.query_exact("SELECT COUNT(*) AS n FROM measurements").expect("exact query");
    let entries = c.slowlog(8).expect("slowlog");

    println!("slow queries (worst first):");
    for (i, e) in entries.iter().enumerate() {
        let status = e.error.as_deref().unwrap_or("ok");
        println!();
        println!(
            "#{} query {}  mode={}  total={} us  status={}",
            i + 1,
            e.query_id,
            e.mode,
            e.total_us,
            status
        );
        println!("  {}", e.sql);
        let layers: Vec<String> =
            e.layers.iter().map(|(l, us)| format!("{l}={us}")).collect();
        println!(
            "  layers: {}  dominant={} ({} us)",
            layers.join(" "),
            e.dominant_layer,
            e.dominant_us
        );
        if let Some(t) = &e.trace {
            for line in t.render().lines() {
                println!("  {line}");
            }
        }
    }
    c.close().expect("close");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prom") => {
            let db = demo_engine();
            warm(&db);
            print!("{}", db.stats_prometheus());
        }
        Some("json") => {
            let db = demo_engine();
            warm(&db);
            println!("{}", db.stats_json());
        }
        Some("plan") => {
            let sql = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("SELECT y FROM t WHERE x >= 15000 AND y <= 32000");
            let db = demo_engine();
            match db.explain(sql) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2)
                }
            }
        }
        Some("explain") => {
            let sql = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("SELECT y FROM t WHERE x >= 15000 AND y <= 32000");
            let db = demo_engine();
            let r = db.query_resilient_profiled(sql).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2)
            });
            match r.profile {
                Some(p) => print!("{}", p.render()),
                None => eprintln!("no profile attached"),
            }
        }
        Some("cluster") => demo_cluster(),
        Some("slowlog") => demo_slowlog(),
        _ => {
            eprintln!(
                "usage: lawsdb-stats <prom|json|plan [SQL]|explain [SQL]|cluster|slowlog>\n\
                 \x20 prom     render the demo engine's metrics as Prometheus text\n\
                 \x20 json     render the demo engine's metrics as JSON\n\
                 \x20 plan     print one statement's cost-based EXPLAIN (estimates, no run)\n\
                 \x20 explain  run one statement and print its EXPLAIN ANALYZE tree\n\
                 \x20 cluster  walk the demo cluster's failure ladder; print shard health \
                 and lawsdb_cluster_* metrics\n\
                 \x20 slowlog  run traced queries against a faulted demo cluster and print \
                 the flight recorder's worst entries"
            );
            std::process::exit(2)
        }
    }
}
