//! Metrics exposition and `EXPLAIN ANALYZE` from the command line.
//!
//! ```text
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- prom
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- json
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- plan \
//!     "SELECT y FROM t WHERE x >= 15000 AND y <= 32000"
//! cargo run --release -p lawsdb-bench --bin lawsdb-stats -- explain \
//!     "SELECT y FROM t WHERE x >= 15000 AND y <= 32000"
//! ```
//!
//! Each subcommand spins up a demo engine — `t(x, y = 2x)` with a
//! captured linear law, so zone-map *and* model pruning both have
//! something to do — runs a short mixed workload through the resilient
//! path, and renders the asked-for view: the engine's metrics registry
//! as Prometheus text (`prom`) or JSON (`json`), the cost-based
//! physical plan with estimated rows/cost per node (`plan`), or the
//! per-query profile tree for one statement (`explain`). The same
//! views are available programmatically via `LawsDb::stats_prometheus`,
//! `LawsDb::stats_json`, `LawsDb::explain`, and
//! `Session::explain_analyze`.

use lawsdb_core::LawsDb;
use lawsdb_fit::FitOptions;
use lawsdb_query::{ExecOptions, ResourceBudget};
use lawsdb_storage::TableBuilder;

const ROWS: usize = 20_000;

/// The demo engine every subcommand runs against.
fn demo_engine() -> LawsDb {
    let mut b = TableBuilder::new("t");
    b.add_f64("x", (0..ROWS).map(|i| i as f64).collect());
    b.add_f64("y", (0..ROWS).map(|i| 2.0 * i as f64).collect());
    let db = LawsDb::new().with_exec_options(ExecOptions {
        budget: ResourceBudget {
            max_rows: Some(10 * ROWS),
            ..ResourceBudget::default()
        },
        ..ExecOptions::default()
    });
    db.register_table(b.build().expect("demo table builds")).expect("registers");
    db.capture_model("t", "y ~ a + b * x", None, &FitOptions::default())
        .expect("perfect linear law passes the quality gate");
    db
}

/// A short mixed workload so the exposition has non-zero counters:
/// a model-pruned range scan and an aggregate.
fn warm(db: &LawsDb) {
    for sql in [
        "SELECT y FROM t WHERE x >= 15000 AND y <= 32000",
        "SELECT COUNT(*) AS n, MAX(y) AS hi FROM t WHERE y > 30000",
    ] {
        db.query_resilient(sql).expect("demo workload runs");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("prom") => {
            let db = demo_engine();
            warm(&db);
            print!("{}", db.stats_prometheus());
        }
        Some("json") => {
            let db = demo_engine();
            warm(&db);
            println!("{}", db.stats_json());
        }
        Some("plan") => {
            let sql = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("SELECT y FROM t WHERE x >= 15000 AND y <= 32000");
            let db = demo_engine();
            match db.explain(sql) {
                Ok(text) => print!("{text}"),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2)
                }
            }
        }
        Some("explain") => {
            let sql = args
                .get(1)
                .map(String::as_str)
                .unwrap_or("SELECT y FROM t WHERE x >= 15000 AND y <= 32000");
            let db = demo_engine();
            let r = db.query_resilient_profiled(sql).unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(2)
            });
            match r.profile {
                Some(p) => print!("{}", p.render()),
                None => eprintln!("no profile attached"),
            }
        }
        _ => {
            eprintln!(
                "usage: lawsdb-stats <prom|json|plan [SQL]|explain [SQL]>\n\
                 \x20 prom     render the demo engine's metrics as Prometheus text\n\
                 \x20 json     render the demo engine's metrics as JSON\n\
                 \x20 plan     print one statement's cost-based EXPLAIN (estimates, no run)\n\
                 \x20 explain  run one statement and print its EXPLAIN ANALYZE tree"
            );
            std::process::exit(2)
        }
    }
}
