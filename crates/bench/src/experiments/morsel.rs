//! Morsel-driven executor throughput (the PR's tentpole measurement):
//! scan→filter, global aggregate and group-by aggregate pipelines at
//! several row scales × worker counts. Every thread count is verified
//! to produce the identical result before its timing is recorded, and
//! the numbers are exported machine-readably as `BENCH_query.json` by
//! the `report` binary (`report -- bench-query`).

use lawsdb_query::{execute_with, ExecOptions};
use lawsdb_storage::{Catalog, TableBuilder};

/// The benchmarked pipeline shapes, as `(label, SQL)`.
pub const QUERIES: &[(&str, &str)] = &[
    ("filter_scan", "SELECT v FROM points WHERE v > 1.5 AND w < 0.25"),
    (
        "global_agg",
        "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(w) AS a, MIN(v) AS lo, MAX(v) AS hi \
         FROM points WHERE v > 0.2",
    ),
    ("group_agg", "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM points GROUP BY g"),
];

/// One measured `(query, rows, threads)` cell.
#[derive(Debug, Clone)]
pub struct MorselPoint {
    /// Query label (see [`QUERIES`]).
    pub query: String,
    /// Base-table rows.
    pub rows: usize,
    /// Worker threads.
    pub threads: usize,
    /// Best-of-3 wall time (µs).
    pub best_us: f64,
    /// Base rows scanned per second at that time.
    pub rows_per_sec: f64,
    /// Speedup over the 1-thread run of the same query/scale.
    pub speedup: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct MorselReport {
    /// `available_parallelism()` of the measuring machine.
    pub machine_threads: usize,
    /// Rows per morsel used throughout.
    pub morsel_rows: usize,
    /// All measured cells.
    pub points: Vec<MorselPoint>,
}

/// Deterministic synthetic table: `g` (64 groups), `v`, `w`.
pub fn dataset(rows: usize) -> Catalog {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut g = Vec::with_capacity(rows);
    let mut v = Vec::with_capacity(rows);
    let mut w = Vec::with_capacity(rows);
    for i in 0..rows {
        g.push((i % 64) as i64);
        v.push(next() * 2.0);
        w.push(next());
    }
    let mut b = TableBuilder::new("points");
    b.add_i64("g", g);
    b.add_f64("v", v);
    b.add_f64("w", w);
    let c = Catalog::new();
    c.register(b.build().expect("build")).expect("register");
    c
}

/// Thread counts to sweep: 1, 2 and the machine's full parallelism,
/// deduplicated (on a 1-core box this collapses to `[1, 2]` — 2 still
/// exercises the scoped-pool path, just without physical speedup).
pub fn thread_counts(machine: usize) -> Vec<usize> {
    let mut t = vec![1, 2, machine];
    t.sort_unstable();
    t.dedup();
    t
}

/// Run the sweep at the given row scales.
pub fn run(row_scales: &[usize]) -> MorselReport {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let morsel_rows = 64 * 1024;
    let mut points = Vec::new();
    for &rows in row_scales {
        let catalog = dataset(rows);
        for (label, sql) in QUERIES {
            let mut base_us = f64::NAN;
            let reference = execute_with(&catalog, sql, &ExecOptions::serial()).expect("ref");
            for &threads in &thread_counts(machine) {
                let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
                // Identical-result check before any timing counts.
                let got = execute_with(&catalog, sql, &opts).expect("query");
                assert_eq!(got.rows_scanned, reference.rows_scanned, "{label}");
                assert_eq!(got.table.row_count(), reference.table.row_count(), "{label}");
                let mut best = f64::INFINITY;
                for _ in 0..3 {
                    let (_, us) = crate::time_us(|| execute_with(&catalog, sql, &opts));
                    best = best.min(us);
                }
                if threads == 1 {
                    base_us = best;
                }
                points.push(MorselPoint {
                    query: label.to_string(),
                    rows,
                    threads,
                    best_us: best,
                    rows_per_sec: rows as f64 / (best / 1e6),
                    speedup: base_us / best,
                });
            }
        }
    }
    MorselReport { machine_threads: machine, morsel_rows, points }
}

/// Print the report as a paper-style table.
pub fn print(r: &MorselReport) {
    println!("=== morsel-driven executor throughput ===");
    println!(
        "machine threads: {}   morsel size: {} rows",
        r.machine_threads, r.morsel_rows
    );
    println!("query         rows      threads       time       rows/s   speedup");
    for p in &r.points {
        println!(
            "{:<12} {:>9} {:>8}  {:>12} {:>12.3e} {:>8.2}x",
            p.query,
            p.rows,
            p.threads,
            crate::fmt_us(p.best_us),
            p.rows_per_sec,
            p.speedup
        );
    }
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &MorselReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"query_morsel_throughput\",\n");
    out.push_str(&format!("  \"machine_threads\": {},\n", r.machine_threads));
    out.push_str(&format!("  \"morsel_rows\": {},\n", r.morsel_rows));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"rows\": {}, \"threads\": {}, \
             \"best_us\": {:.1}, \"rows_per_sec\": {:.0}, \"speedup\": {:.3}}}{}\n",
            p.query,
            p.rows,
            p.threads,
            p.best_us,
            p.rows_per_sec,
            p.speedup,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_reports_sane_numbers() {
        let r = run(&[10_000]);
        assert_eq!(r.points.len(), QUERIES.len() * thread_counts(r.machine_threads).len());
        for p in &r.points {
            assert!(p.best_us > 0.0 && p.rows_per_sec > 0.0, "{p:?}");
            assert!(p.speedup.is_finite() && p.speedup > 0.0);
        }
        let json = to_json(&r);
        assert!(json.contains("\"query_morsel_throughput\""));
        assert!(json.contains("\"filter_scan\""));
    }

    #[test]
    fn thread_counts_deduplicate() {
        assert_eq!(thread_counts(1), vec![1, 2]);
        assert_eq!(thread_counts(2), vec![1, 2]);
        assert_eq!(thread_counts(8), vec![1, 2, 8]);
    }
}
