//! Aggregate pushdown over materialized zone synopses: the
//! selectivity×aggregate sweep for ISSUE 8.
//!
//! The fixture is deliberately **pruning-proof on the payload**: `v`
//! interleaves the same residue cycle into every zone, so zone maps on
//! `v` can never refute or accept anything and the only shortcut
//! available to the pushed path is substituting materialized `ZoneAgg`
//! partials for accepted zones. The sorted key `k` drives selectivity:
//! interior zones of a `k` range are accepted wholesale by their bounds
//! (the interval proof), boundary zones run the fused filter+aggregate
//! kernel, refuted zones vanish.
//!
//! Two workload families, each timed best-of-3 after a bit-identity
//! check against the unpruned scan:
//!
//! * **full** — no WHERE: every zone answers from its partial with zero
//!   pages planned (`pages_total == 0`, the paper's zero-IO claim
//!   extended to aggregation). This is the AcceptAll-heavy workload the
//!   CI gate holds to ≥5× over the row-scan path.
//! * **range** — `k < threshold` at several selectivities × aggregate
//!   shapes, showing the pushed/fused split as selectivity grows.
//!
//! The `report` binary exports this as `BENCH_agg.json`
//! (`report -- bench-agg`) and fails hard if the full workload read any
//! base pages, pushed no zones, or fell under the speedup gate.

use lawsdb_query::{execute_with, ExecOptions, QueryResult, ScanStats};
use lawsdb_storage::{Catalog, TableBuilder};

/// The CI speedup gate for the AcceptAll-heavy (no-WHERE) workload.
pub const FULL_WORKLOAD_GATE: f64 = 5.0;

/// One measured `(workload, selectivity, aggregate)` cell.
#[derive(Debug, Clone)]
pub struct AggPoint {
    /// Workload label: `full` or `range`.
    pub workload: String,
    /// Base-table rows.
    pub rows: usize,
    /// Fraction of rows the predicate keeps (1.0 for `full`).
    pub selectivity: f64,
    /// Aggregate shape label (`count`, `sum`, `minmax`, `mixed`).
    pub aggregate: String,
    /// The benchmarked SQL.
    pub sql: String,
    /// Best-of-3 wall time with pushdown (µs).
    pub pushed_us: f64,
    /// Best-of-3 wall time on the row-scan path (µs).
    pub scan_us: f64,
    /// `scan_us / pushed_us`.
    pub speedup: f64,
    /// Scan counters from the pushed run.
    pub stats: ScanStats,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct AggReport {
    /// Zone granularity in rows (the storage default).
    pub zone_rows: usize,
    /// All measured cells.
    pub points: Vec<AggPoint>,
}

/// Sorted key `k` = 0..rows; payload `v` cycles the same 1009 residues
/// through every zone (1009 is prime to the zone size, so each zone
/// sees the full cycle): min/max are identical across zones and no
/// predicate on `v` can ever decide a zone from its bounds.
pub fn interleaved_dataset(rows: usize) -> Catalog {
    let k: Vec<i64> = (0..rows as i64).collect();
    let v: Vec<f64> = (0..rows).map(|i| (i % 1009) as f64 - 504.0).collect();
    let mut b = TableBuilder::new("agg");
    b.add_i64("k", k);
    b.add_f64("v", v);
    let c = Catalog::new();
    c.register(b.build().expect("build")).expect("register");
    c
}

fn best_of_3(catalog: &Catalog, sql: &str, opts: &ExecOptions) -> (f64, QueryResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let (r, us) = crate::time_us(|| execute_with(catalog, sql, opts).expect("query"));
        if us < best {
            best = us;
            result = Some(r);
        }
    }
    (best, result.expect("three runs"))
}

fn measure(
    catalog: &Catalog,
    workload: &str,
    rows: usize,
    selectivity: f64,
    aggregate: &str,
    sql: &str,
) -> AggPoint {
    let pushed_opts = ExecOptions::default();
    let scan_opts = ExecOptions::unpruned();
    // Bit-identity check before any timing counts: substituting zone
    // partials must not change a single bit of the answer.
    let p = execute_with(catalog, sql, &pushed_opts).expect("pushed");
    let u = execute_with(catalog, sql, &scan_opts).expect("scan");
    assert_eq!(p.table.row_count(), u.table.row_count(), "{sql}");
    for i in 0..p.table.row_count() {
        assert_eq!(
            format!("{:?}", p.table.row(i).expect("row")),
            format!("{:?}", u.table.row(i).expect("row")),
            "{sql} row {i}"
        );
    }
    let (pushed_us, pushed_result) = best_of_3(catalog, sql, &pushed_opts);
    let (scan_us, _) = best_of_3(catalog, sql, &scan_opts);
    AggPoint {
        workload: workload.to_string(),
        rows,
        selectivity,
        aggregate: aggregate.to_string(),
        sql: sql.to_string(),
        pushed_us,
        scan_us,
        speedup: scan_us / pushed_us,
        stats: pushed_result.scan_stats,
    }
}

/// Run the sweep over a `rows`-row interleaved fixture.
pub fn run(rows: usize) -> AggReport {
    let catalog = interleaved_dataset(rows);
    let mut points = Vec::new();

    // AcceptAll-heavy workload: no WHERE, every zone pushes.
    // COUNT(v), not COUNT(*): the star-count's row-scan baseline does
    // no per-row value work either, so a speedup gate on it would only
    // measure slice overhead. Null-counting reads the column for real.
    let aggs: [(&str, &str); 4] = [
        ("count", "COUNT(v) AS n"),
        ("sum", "SUM(v) AS s"),
        ("minmax", "MIN(v) AS lo, MAX(v) AS hi"),
        ("mixed", "COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m, MIN(v) AS lo, MAX(v) AS hi"),
    ];
    for (label, exprs) in aggs {
        let sql = format!("SELECT {exprs} FROM agg");
        points.push(measure(&catalog, "full", rows, 1.0, label, &sql));
    }

    // Selectivity sweep on the sorted key: interior zones push,
    // boundary zones run the fused kernel.
    for frac in [0.001, 0.01, 0.1, 0.5] {
        let threshold = (rows as f64 * frac) as i64;
        for (label, exprs) in [aggs[1], aggs[3]] {
            let sql = format!("SELECT {exprs} FROM agg WHERE k < {threshold}");
            points.push(measure(&catalog, "range", rows, frac, label, &sql));
        }
    }

    AggReport { zone_rows: lawsdb_storage::DEFAULT_ZONE_ROWS, points }
}

/// True when every `full` point answered entirely from the synopsis:
/// zones pushed, zero pages planned or read. The structural half of the
/// CI gate (the other half is the speedup threshold).
pub fn full_workload_zero_io(r: &AggReport) -> bool {
    let full: Vec<&AggPoint> = r.points.iter().filter(|p| p.workload == "full").collect();
    !full.is_empty()
        && full
            .iter()
            .all(|p| p.stats.zones_agg_synopsis > 0 && p.stats.pages_total == 0)
}

/// Worst speedup across the `full` workload — what the ≥5× gate holds.
pub fn full_workload_min_speedup(r: &AggReport) -> f64 {
    r.points
        .iter()
        .filter(|p| p.workload == "full")
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min)
}

/// Print the report as a paper-style table.
pub fn print(r: &AggReport) {
    println!("=== aggregate pushdown over zone synopses ===");
    println!("zone granularity: {} rows", r.zone_rows);
    println!(
        "workload  rows      sel%    agg        pushed     scan   speedup  zones_agg  pages"
    );
    for p in &r.points {
        println!(
            "{:<7} {:>8} {:>7.2} {:<8} {:>9} {:>9} {:>7.2}x {:>9} {:>6}",
            p.workload,
            p.rows,
            p.selectivity * 100.0,
            p.aggregate,
            crate::fmt_us(p.pushed_us),
            crate::fmt_us(p.scan_us),
            p.speedup,
            p.stats.zones_agg_synopsis,
            p.stats.pages_total,
        );
    }
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &AggReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"agg\",\n");
    out.push_str(&format!("  \"zone_rows\": {},\n", r.zone_rows));
    out.push_str(&format!(
        "  \"full_workload_min_speedup\": {:.3},\n",
        full_workload_min_speedup(r)
    ));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"selectivity\": {:.5}, \
             \"aggregate\": \"{}\", \"pushed_us\": {:.1}, \"scan_us\": {:.1}, \
             \"speedup\": {:.3}, \"zones_agg_synopsis\": {}, \"pages_total\": {}, \
             \"pages_pruned_zonemap\": {}}}{}\n",
            p.workload,
            p.rows,
            p.selectivity,
            p.aggregate,
            p.pushed_us,
            p.scan_us,
            p.speedup,
            p.stats.zones_agg_synopsis,
            p.stats.pages_total,
            p.stats.pages_pruned_zonemap,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_the_full_workload_is_zero_io() {
        let r = run(50_000);
        assert_eq!(r.points.len(), 12);
        for p in &r.points {
            assert!(p.pushed_us > 0.0 && p.scan_us > 0.0, "{p:?}");
        }
        // Every no-WHERE point answered from partials without planning
        // a single page — the structural CI gate.
        assert!(full_workload_zero_io(&r), "{r:?}");
        // Range points push interior zones and still count their pages.
        let range = r.points.iter().find(|p| p.workload == "range").expect("range points");
        assert!(range.stats.pages_total > 0, "{range:?}");
        let json = to_json(&r);
        assert!(json.contains("\"agg\""));
        assert!(json.contains("\"zones_agg_synopsis\""));
        assert!(json.contains("\"full_workload_min_speedup\""));
    }
}
