//! **E4** — "true" semantic compression vs generic codecs (Section 4.1,
//! SPARTAN-style comparison).
//!
//! The paper: "Compression algorithms perform best if the underlying
//! mathematical model closely approximates the data … If we use the
//! user-supplied model as a compression model, we can expect high
//! compression rates", and notes that SPARTAN's fixed model class "is
//! only barely able to outperform standard gzip compression". We
//! compress the LOFAR intensity column with:
//!
//! * the generic LZSS+Huffman pipeline (gzip stand-in) on the raw bytes,
//! * the generic XOR-previous float codec,
//! * the **semantic residual codec** (lossless and ε-quantized),
//!
//! and report bytes, ratio and (de)compression throughput. The semantic
//! numbers include the model-parameter bytes, so the comparison is fair.

use crate::Scale;
use lawsdb_core::storage_mgr::{compress_column, decompress_column, CompressionMode};
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;
use lawsdb_storage::compress::{float, generic_compress, generic_decompress};

/// One codec's measured result.
#[derive(Debug, Clone)]
pub struct CodecResult {
    /// Codec label.
    pub name: &'static str,
    /// Compressed bytes (including model parameters where applicable).
    pub bytes: usize,
    /// Ratio vs raw column bytes.
    pub ratio: f64,
    /// Compression time (µs).
    pub encode_us: f64,
    /// Decompression time (µs).
    pub decode_us: f64,
    /// True when reconstruction was verified bit-exact.
    pub lossless: bool,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E4Report {
    /// Raw bytes of the compressed column.
    pub raw_bytes: usize,
    /// Model-parameter bytes included in the semantic codecs' totals.
    pub model_param_bytes: usize,
    /// Per-codec results.
    pub codecs: Vec<CodecResult>,
}

impl E4Report {
    /// Result by codec name.
    pub fn codec(&self, name: &str) -> Option<&CodecResult> {
        self.codecs.iter().find(|c| c.name == name)
    }
}

/// Run the compression shoot-out on the LOFAR intensity column.
pub fn run(scale: Scale) -> E4Report {
    let cfg = LofarConfig {
        noise_rel: 0.02, // interference, but a good model
        anomaly_fraction: 0.005,
        ..LofarConfig::with_sources(scale.lofar_sources())
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table.clone()).expect("fresh catalog");
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("capture fits");

    let table = db.table("measurements").expect("registered");
    let col = table.column("intensity").expect("col");
    let values = col.f64_data().expect("f64").to_vec();
    let raw_bytes = col.byte_size();
    let raw_le: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut codecs = Vec::new();

    // Generic LZ (gzip stand-in) over the raw little-endian bytes.
    {
        let (enc, encode_us) = crate::time_us(|| generic_compress(&raw_le));
        let (dec, decode_us) = crate::time_us(|| generic_decompress(&enc).expect("roundtrip"));
        codecs.push(CodecResult {
            name: "lzss+huffman",
            bytes: enc.len(),
            ratio: enc.len() as f64 / raw_bytes as f64,
            encode_us,
            decode_us,
            lossless: dec == raw_le,
        });
    }
    // Generic float XOR-previous codec.
    {
        let (enc, encode_us) = crate::time_us(|| float::encode(&values));
        let (dec, decode_us) = crate::time_us(|| float::decode(&enc).expect("roundtrip"));
        codecs.push(CodecResult {
            name: "float-xor",
            bytes: enc.len(),
            ratio: enc.len() as f64 / raw_bytes as f64,
            encode_us,
            decode_us,
            lossless: dec
                .iter()
                .zip(&values)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
        });
    }
    // Semantic residual codec, lossless.
    {
        let (enc, encode_us) =
            crate::time_us(|| compress_column(&model, &table, CompressionMode::Lossless)
                .expect("compress"));
        let (dec, decode_us) =
            crate::time_us(|| decompress_column(&enc, &model, &table).expect("decompress"));
        let bytes = enc.compressed_bytes() + model.params.byte_size();
        codecs.push(CodecResult {
            name: "semantic-lossless",
            bytes,
            ratio: bytes as f64 / raw_bytes as f64,
            encode_us,
            decode_us,
            lossless: dec
                .iter()
                .zip(&values)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
        });
    }
    // Semantic residual codec, quantized to the noise floor.
    {
        let eps = 1e-4;
        let (enc, encode_us) = crate::time_us(|| {
            compress_column(&model, &table, CompressionMode::Quantized { eps })
                .expect("compress")
        });
        let (dec, decode_us) =
            crate::time_us(|| decompress_column(&enc, &model, &table).expect("decompress"));
        let bytes = enc.compressed_bytes() + model.params.byte_size();
        let within_bound = dec
            .iter()
            .zip(&values)
            .all(|(a, b)| (a - b).abs() <= eps / 2.0 + 1e-12 || a.to_bits() == b.to_bits());
        assert!(within_bound, "quantized codec violated its bound");
        codecs.push(CodecResult {
            name: "semantic-quantized",
            bytes,
            ratio: bytes as f64 / raw_bytes as f64,
            encode_us,
            decode_us,
            lossless: false,
        });
    }

    E4Report { raw_bytes, model_param_bytes: model.params.byte_size(), codecs }
}

/// Print the comparison table.
pub fn print(r: &E4Report) {
    println!("=== E4: semantic compression vs generic codecs (LOFAR intensity) ===");
    println!(
        "raw column: {} (semantic totals include {} of model parameters)",
        crate::fmt_bytes(r.raw_bytes),
        crate::fmt_bytes(r.model_param_bytes)
    );
    println!();
    println!("codec               bytes        ratio    encode      decode      lossless");
    for c in &r.codecs {
        println!(
            "{:<18}  {:>10}  {:>6.1}%  {:>9}  {:>9}  {}",
            c.name,
            crate::fmt_bytes(c.bytes),
            c.ratio * 100.0,
            crate::fmt_us(c.encode_us),
            crate::fmt_us(c.decode_us),
            c.lossless
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semantic_beats_generic_codecs() {
        let r = run(Scale::Small);
        let lz = r.codec("lzss+huffman").unwrap();
        let xor = r.codec("float-xor").unwrap();
        let sem = r.codec("semantic-lossless").unwrap();
        let quant = r.codec("semantic-quantized").unwrap();
        assert!(lz.lossless && xor.lossless && sem.lossless);
        // The paper's shape: semantic < generic; quantized < lossless.
        assert!(
            sem.bytes < lz.bytes,
            "semantic {} should beat LZ {}",
            sem.bytes,
            lz.bytes
        );
        // Residual payload alone (the marginal cost once the model is
        // captured anyway) beats the best generic float codec; at small
        // scales the parameter table is not yet amortized.
        let sem_payload = sem.bytes - r.model_param_bytes;
        assert!(
            sem_payload < xor.bytes,
            "semantic payload {sem_payload} vs xor {}",
            xor.bytes
        );
        assert!(quant.bytes < sem.bytes);
        // And the quantized ratio lands in the few-percent band the
        // paper reports for the parameter-table replacement.
        assert!(quant.ratio < 0.35, "ratio {}", quant.ratio);
    }
}
