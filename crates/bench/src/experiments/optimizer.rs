//! Cost-based adaptive optimizer: kernel throughput and plan choice.
//!
//! Two measurements, exported together as `BENCH_optimizer.json`
//! (`report -- bench-optimizer`):
//!
//! * **kernel** — throughput of the branch-free word-at-a-time
//!   comparison kernel (`ScalarExpr::eval_mask` over a dense and a
//!   NULL-laden column), the hot loop every filter and fused aggregate
//!   runs through.
//! * **policy** — a query sweep over a LOFAR-shaped database with a
//!   captured per-source power law, timing three policies per query:
//!   `always-exact` (base-table scan), `always-model` (model
//!   reconstruction, falling back to exact when no model covers the
//!   query), and the engine's cost-based `adaptive` choice
//!   ([`lawsdb_core::LawsDb::query_adaptive`]). The report carries a
//!   win rate and a geomean latency per static policy; the CI smoke
//!   gate is [`OptimizerReport::within_gate`] — the optimizer must not
//!   lose more than [`GATE_PCT`]% (geomean) to the *best* static
//!   policy, i.e. adapting must cost at most noise.

use lawsdb_core::{Answer, LawsDb};
use lawsdb_expr::ast::CmpOp;
use lawsdb_fit::FitOptions;
use lawsdb_query::ScalarExpr;
use lawsdb_storage::TableBuilder;

/// Maximum geomean regression (percent) of the adaptive policy against
/// the best static policy before `bench-optimizer` fails the build.
pub const GATE_PCT: f64 = 5.0;

/// One kernel microbench cell.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Comparison operator benched.
    pub op: String,
    /// `dense` (no NULLs) or `nullable` (1/8 NULL lanes).
    pub lanes: String,
    /// Rows evaluated per call.
    pub rows: usize,
    /// Best-of-5 wall time per `eval_mask` call (µs).
    pub best_us: f64,
    /// Throughput in millions of rows per second.
    pub mrows_per_s: f64,
}

/// One plan-choice cell: the same query under all three policies.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Query shape label.
    pub kind: String,
    /// The benchmarked SQL.
    pub sql: String,
    /// Best-of-5 wall time, cost-based adaptive choice (µs).
    pub adaptive_us: f64,
    /// Best-of-5 wall time, always-exact policy (µs).
    pub exact_us: f64,
    /// Best-of-5 wall time, always-model policy (µs; includes the
    /// exact fallback when no model covers the query).
    pub model_us: f64,
    /// Which path the adaptive policy picked.
    pub chose_model: bool,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct OptimizerReport {
    /// Base-table rows in the policy sweep.
    pub rows: usize,
    /// Kernel microbench cells.
    pub kernel: Vec<KernelPoint>,
    /// Plan-choice cells.
    pub policy: Vec<PolicyPoint>,
}

fn geomean(xs: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = xs.fold((0.0, 0usize), |(s, n), x| (s + x.max(1e-9).ln(), n + 1));
    if n == 0 { 0.0 } else { (sum / n as f64).exp() }
}

impl OptimizerReport {
    /// Fraction of queries where adaptive at least ties always-exact
    /// (within [`GATE_PCT`]% noise allowance).
    pub fn win_rate_vs_exact(&self) -> f64 {
        win_rate(self.policy.iter().map(|p| (p.adaptive_us, p.exact_us)))
    }

    /// Fraction of queries where adaptive at least ties always-model.
    pub fn win_rate_vs_model(&self) -> f64 {
        win_rate(self.policy.iter().map(|p| (p.adaptive_us, p.model_us)))
    }

    /// Geomean latency (µs) of the adaptive policy.
    pub fn geomean_adaptive_us(&self) -> f64 {
        geomean(self.policy.iter().map(|p| p.adaptive_us))
    }

    /// Geomean latency (µs) of the always-exact policy.
    pub fn geomean_exact_us(&self) -> f64 {
        geomean(self.policy.iter().map(|p| p.exact_us))
    }

    /// Geomean latency (µs) of the always-model policy.
    pub fn geomean_model_us(&self) -> f64 {
        geomean(self.policy.iter().map(|p| p.model_us))
    }

    /// The smoke gate: adaptive geomean latency must be within
    /// [`GATE_PCT`]% of the best static policy's.
    pub fn within_gate(&self) -> bool {
        let best = self.geomean_exact_us().min(self.geomean_model_us());
        self.geomean_adaptive_us() <= best * (1.0 + GATE_PCT / 100.0)
    }
}

fn win_rate(pairs: impl Iterator<Item = (f64, f64)>) -> f64 {
    let (wins, n) = pairs.fold((0usize, 0usize), |(w, n), (a, b)| {
        (w + usize::from(a <= b * (1.0 + GATE_PCT / 100.0)), n + 1)
    });
    if n == 0 { 0.0 } else { wins as f64 / n as f64 }
}

fn best_of_5(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let ((), us) = crate::time_us(&mut f);
        best = best.min(us);
    }
    best
}

/// Kernel microbench: `eval_mask` over `rows` f64 lanes, per operator,
/// dense and with 1/8 NULL lanes.
fn kernel_sweep(rows: usize) -> Vec<KernelPoint> {
    let mut b = TableBuilder::new("lanes");
    b.add_f64("dense", (0..rows).map(|i| (i % 1000) as f64).collect());
    b.add_f64_opt(
        "nullable",
        (0..rows)
            .map(|i| if i % 8 == 0 { None } else { Some((i % 1000) as f64) })
            .collect(),
    );
    let t = b.build().expect("build");
    let mut out = Vec::new();
    for (op, name) in [(CmpOp::Lt, "<"), (CmpOp::Eq, "="), (CmpOp::Ge, ">=")] {
        for lanes in ["dense", "nullable"] {
            let expr = ScalarExpr::Cmp(
                op,
                Box::new(ScalarExpr::Column(lanes.to_string())),
                Box::new(ScalarExpr::Number(500.0)),
            );
            // Warm once (identity/NaN handling is covered by unit
            // tests; here only the steady state matters).
            let mask = expr.eval_mask(&t).expect("eval");
            assert!(mask.len() == rows);
            let best_us = best_of_5(|| {
                std::hint::black_box(expr.eval_mask(&t).expect("eval"));
            });
            out.push(KernelPoint {
                op: name.to_string(),
                lanes: lanes.to_string(),
                rows,
                best_us,
                mrows_per_s: rows as f64 / best_us,
            });
        }
    }
    out
}

/// LOFAR-shaped database with sources interleaved round-robin — the
/// adversarial layout for zone maps (every zone spans the full key
/// range, so nothing prunes) and therefore the regime where the model
/// path's zero-IO answer can actually beat the vectorized scan. A
/// per-source power law over `intensity` is captured.
pub fn interleaved_dataset(sources: usize, rounds: usize) -> LawsDb {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for i in 0..sources * rounds {
        let s = i % sources;
        let f = freqs[(i / sources) % 4];
        let p = 0.5 + 4.5 * (s as f64 / sources.max(1) as f64);
        src.push(s as i64);
        nu.push(f);
        intensity.push(p * f.powf(-0.7));
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let db = LawsDb::new();
    db.register_table(b.build().expect("build")).expect("register");
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default(),
    )
    .expect("capture");
    db
}

/// The policy-sweep query set over the `measurements` fixture.
fn sweep_queries(sources: usize) -> Vec<(String, String)> {
    let mid = (sources / 2).max(1);
    vec![
        // Point lookups: the model path reconstructs one tuple with
        // zero IO; exact scans the source's observations.
        ("point".into(), format!(
            "SELECT intensity FROM measurements WHERE source = {mid} AND nu = 0.15"
        )),
        ("point".into(), "SELECT intensity FROM measurements \
             WHERE source = 1 AND nu = 0.18".into()),
        // Aggregates: no model covers them, so always-model pays a
        // failed attempt before scanning anyway.
        ("agg".into(), "SELECT COUNT(*) AS n, AVG(intensity) AS m \
             FROM measurements WHERE nu = 0.15".into()),
        ("agg".into(), "SELECT COUNT(*) AS n FROM measurements \
             WHERE intensity > 1000".into()),
        // Selective tail scan over model-backed zones.
        ("tail".into(), "SELECT source, intensity FROM measurements \
             WHERE intensity > 20 AND nu = 0.12".into()),
        // LIMIT 0: the planner elides the scan entirely.
        ("limit0".into(), "SELECT source, intensity FROM measurements \
             WHERE nu = 0.15 LIMIT 0".into()),
    ]
}

/// Run the sweep: kernel microbench at `kernel_rows` lanes, plan-choice
/// sweep over a `sources × rounds`-row model-covered database.
pub fn run(kernel_rows: usize, sources: usize, rounds: usize) -> OptimizerReport {
    let kernel = kernel_sweep(kernel_rows);

    let obs = rounds;
    let db = interleaved_dataset(sources, rounds);
    let mut policy = Vec::new();
    for (kind, sql) in sweep_queries(sources) {
        // Warm the plan cache so every policy sees steady state.
        let a = db.query_adaptive(&sql).expect("adaptive");
        let chose_model = matches!(a, Answer::Approx(_));
        let adaptive_us = best_of_5(|| {
            std::hint::black_box(db.query_adaptive(&sql).expect("adaptive"));
        });
        let exact_us = best_of_5(|| {
            std::hint::black_box(db.query(&sql).expect("exact"));
        });
        let model_us = best_of_5(|| match db.query_approx(&sql) {
            Ok(ans) => {
                std::hint::black_box(ans);
            }
            // A forced-model policy's only recourse: scan after all.
            Err(_) => {
                std::hint::black_box(db.query(&sql).expect("exact fallback"));
            }
        });
        policy.push(PolicyPoint { kind, sql, adaptive_us, exact_us, model_us, chose_model });
    }

    OptimizerReport { rows: sources * obs, kernel, policy }
}

/// Print the report as a paper-style table.
pub fn print(r: &OptimizerReport) {
    println!("=== cost-based adaptive optimizer ===");
    println!("-- comparison kernel ({} rows/call) --", r.kernel.first().map_or(0, |k| k.rows));
    println!("op  lanes       best      Mrows/s");
    for k in &r.kernel {
        println!(
            "{:<3} {:<9} {:>9} {:>9.0}",
            k.op,
            k.lanes,
            crate::fmt_us(k.best_us),
            k.mrows_per_s
        );
    }
    println!("-- plan choice ({} rows) --", r.rows);
    println!("kind     adaptive      exact      model  chose");
    for p in &r.policy {
        println!(
            "{:<7} {:>9} {:>10} {:>10}  {}",
            p.kind,
            crate::fmt_us(p.adaptive_us),
            crate::fmt_us(p.exact_us),
            crate::fmt_us(p.model_us),
            if p.chose_model { "model" } else { "exact" },
        );
    }
    println!(
        "win rate vs always-exact: {:.0}%   vs always-model: {:.0}%",
        r.win_rate_vs_exact() * 100.0,
        r.win_rate_vs_model() * 100.0
    );
    println!(
        "geomean latency: adaptive {} | exact {} | model {}",
        crate::fmt_us(r.geomean_adaptive_us()),
        crate::fmt_us(r.geomean_exact_us()),
        crate::fmt_us(r.geomean_model_us())
    );
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &OptimizerReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"optimizer\",\n");
    out.push_str(&format!("  \"rows\": {},\n", r.rows));
    out.push_str(&format!("  \"win_rate_vs_exact\": {:.4},\n", r.win_rate_vs_exact()));
    out.push_str(&format!("  \"win_rate_vs_model\": {:.4},\n", r.win_rate_vs_model()));
    out.push_str(&format!("  \"geomean_adaptive_us\": {:.2},\n", r.geomean_adaptive_us()));
    out.push_str(&format!("  \"geomean_exact_us\": {:.2},\n", r.geomean_exact_us()));
    out.push_str(&format!("  \"geomean_model_us\": {:.2},\n", r.geomean_model_us()));
    out.push_str("  \"kernel\": [\n");
    for (i, k) in r.kernel.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"op\": \"{}\", \"lanes\": \"{}\", \"rows\": {}, \
             \"best_us\": {:.2}, \"mrows_per_s\": {:.1}}}{}\n",
            k.op,
            k.lanes,
            k.rows,
            k.best_us,
            k.mrows_per_s,
            if i + 1 == r.kernel.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"policy\": [\n");
    for (i, p) in r.policy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"adaptive_us\": {:.1}, \"exact_us\": {:.1}, \
             \"model_us\": {:.1}, \"chose_model\": {}}}{}\n",
            p.kind,
            p.adaptive_us,
            p.exact_us,
            p.model_us,
            p.chose_model,
            if i + 1 == r.policy.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_the_optimizer_adapts() {
        let r = run(100_000, 200, 200);
        assert_eq!(r.kernel.len(), 6);
        for k in &r.kernel {
            assert!(k.best_us > 0.0 && k.mrows_per_s > 0.0, "{k:?}");
        }
        assert_eq!(r.policy.len(), 6);
        for p in &r.policy {
            assert!(p.adaptive_us > 0.0 && p.exact_us > 0.0 && p.model_us > 0.0, "{p:?}");
        }
        // The optimizer must actually use both paths across the sweep:
        // model for point lookups, exact where no model applies.
        assert!(r.policy.iter().any(|p| p.chose_model), "never chose the model path");
        assert!(r.policy.iter().any(|p| !p.chose_model), "never chose the exact path");
        let json = to_json(&r);
        assert!(json.contains("\"win_rate_vs_exact\""));
        assert!(json.contains("\"geomean_adaptive_us\""));
    }
}
