//! **E7** — analytic solutions for linear models (Section 4.2).
//!
//! Per-sensor linear laws over enumerable integer timestamps: the
//! analytic path answers MIN/MAX/AVG/SUM/COUNT in closed form (O(groups)
//! work, nothing materialized), compared against the exact scan and
//! against enumeration-based reconstruction. Also carries the
//! QR-vs-normal-equations solver ablation from DESIGN.md §5.

use lawsdb_approx::Strategy;
use lawsdb_core::LawsDb;
use lawsdb_data::timeseries::{TimeSeriesConfig, TimeSeriesDataset};
use lawsdb_fit::{FitOptions, LinearSolver};

/// One aggregate's three-way comparison.
#[derive(Debug, Clone)]
pub struct AggPoint {
    /// Aggregate label.
    pub agg: &'static str,
    /// Exact value (full scan).
    pub exact: f64,
    /// Analytic value.
    pub analytic: f64,
    /// Exact-path time (µs).
    pub exact_us: f64,
    /// Analytic-path time (µs).
    pub analytic_us: f64,
    /// Relative error of the analytic answer.
    pub rel_error: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E7Report {
    /// Rows scanned by the exact path.
    pub rows: usize,
    /// Per-aggregate comparisons.
    pub aggregates: Vec<AggPoint>,
    /// Solver ablation: (QR capture µs, normal-equations capture µs).
    pub solver_ablation_us: (f64, f64),
    /// Max parameter difference between the two solvers.
    pub solver_max_diff: f64,
}

/// Run the analytic-aggregates experiment.
pub fn run() -> E7Report {
    let cfg = TimeSeriesConfig { sensors: 100, ticks: 1000, noise_sd: 0.05, ..Default::default() };
    let data = TimeSeriesDataset::generate(&cfg);
    let rows = data.table.row_count();

    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table.clone()).expect("fresh catalog");
    db.capture_model("readings", "value ~ a + b * ts", Some("sensor"), &FitOptions::default())
        .expect("capture fits");

    let mut aggregates = Vec::new();
    for (agg, sql_agg) in
        [("COUNT", "COUNT(value)"), ("SUM", "SUM(value)"), ("AVG", "AVG(value)"), ("MIN", "MIN(value)"), ("MAX", "MAX(value)")]
    {
        let sql = format!("SELECT {sql_agg} AS v FROM readings");
        let (exact, exact_us) = crate::time_us(|| {
            db.query(&sql)
                .expect("exact")
                .table
                .column("v")
                .expect("col")
                .to_f64_lossy()
                .expect("numeric")[0]
        });
        let (answer, analytic_us) =
            crate::time_us(|| db.query_approx(&sql).expect("analytic answers"));
        assert_eq!(answer.strategy, Strategy::AnalyticAggregate, "{agg} not analytic");
        let analytic = answer.table.column("value").expect("col").f64_data().expect("f64")[0];
        let rel_error = if exact != 0.0 { ((analytic - exact) / exact).abs() } else { 0.0 };
        aggregates.push(AggPoint { agg, exact, analytic, exact_us, analytic_us, rel_error });
    }

    // Solver ablation: same grouped linear capture with QR vs normal
    // equations.
    let qr_opts = FitOptions { linear_solver: LinearSolver::Qr, ..Default::default() };
    let ne_opts =
        FitOptions { linear_solver: LinearSolver::NormalEquations, ..Default::default() };
    let (m_qr, qr_us) = crate::time_us(|| {
        lawsdb_models::bridge::fit_table_grouped(&data.table, "value ~ a + b * ts", "sensor", &qr_opts, 1)
            .expect("qr fit")
            .0
    });
    let (m_ne, ne_us) = crate::time_us(|| {
        lawsdb_models::bridge::fit_table_grouped(&data.table, "value ~ a + b * ts", "sensor", &ne_opts, 1)
            .expect("ne fit")
            .0
    });
    let mut max_diff = 0.0f64;
    if let (
        lawsdb_models::ModelParams::Grouped { groups: ga, .. },
        lawsdb_models::ModelParams::Grouped { groups: gb, .. },
    ) = (&m_qr.params, &m_ne.params)
    {
        for (k, a) in ga {
            if let Some(b) = gb.get(k) {
                for (x, y) in a.values.iter().zip(&b.values) {
                    max_diff = max_diff.max((x - y).abs());
                }
            }
        }
    }

    E7Report { rows, aggregates, solver_ablation_us: (qr_us, ne_us), solver_max_diff: max_diff }
}

/// Print the comparison.
pub fn print(r: &E7Report) {
    println!("=== E7: analytic aggregates for linear models ===");
    println!("base table: {} rows; analytic path materializes nothing", r.rows);
    println!();
    println!("agg    exact          analytic       err      exact time   analytic time");
    for a in &r.aggregates {
        println!(
            "{:<5}  {:>13.4}  {:>13.4}  {:>6.3}%  {:>10}  {:>12}",
            a.agg,
            a.exact,
            a.analytic,
            a.rel_error * 100.0,
            crate::fmt_us(a.exact_us),
            crate::fmt_us(a.analytic_us)
        );
    }
    println!();
    println!(
        "solver ablation (grouped linear capture): QR {} vs normal equations {}; \
         max |Δparam| = {:.2e}",
        crate::fmt_us(r.solver_ablation_us.0),
        crate::fmt_us(r.solver_ablation_us.1),
        r.solver_max_diff
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_exact_within_noise() {
        let r = run();
        for a in &r.aggregates {
            // COUNT is exact; moments are within the noise envelope.
            let tol = if a.agg == "COUNT" { 1e-12 } else { 0.02 };
            assert!(a.rel_error <= tol, "{}: err {}", a.agg, a.rel_error);
        }
        // Solvers agree to numerical precision.
        assert!(r.solver_max_diff < 1e-6, "{}", r.solver_max_diff);
    }
}
