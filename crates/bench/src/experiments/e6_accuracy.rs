//! **E6** — accuracy of model-based answering vs the classical
//! approximate techniques.
//!
//! Section 1 positions the vision against sampling and synopses: "User
//! models can provide approximations in a similar way to the data
//! synopses discussed before, but with higher accuracy." This
//! experiment quantifies that on the LOFAR workload with matched
//! footprints: per-source mean-intensity queries answered by
//!
//! * the captured power-law model,
//! * uniform samples at 1/5/10%,
//! * equi-depth histograms at 32–1024 buckets (one per query band),
//!
//! scored by median relative error against the exact answer, with each
//! method's storage footprint reported.

use crate::Scale;
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;
use lawsdb_approx::histogram::Histogram;
use lawsdb_approx::sampling::{StratifiedSample, TableSample};

/// One method's accuracy/footprint point.
#[derive(Debug, Clone)]
pub struct MethodPoint {
    /// Method label.
    pub name: String,
    /// Auxiliary-structure bytes.
    pub footprint: usize,
    /// Median relative error over the query set.
    pub median_rel_error: f64,
    /// 90th-percentile relative error.
    pub p90_rel_error: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E6Report {
    /// Queries evaluated.
    pub queries: usize,
    /// Raw bytes of the base table (footprints are judged against it).
    pub raw_bytes: usize,
    /// Per-method results, model first.
    pub methods: Vec<MethodPoint>,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Run the accuracy comparison.
pub fn run(scale: Scale) -> E6Report {
    let cfg = LofarConfig {
        noise_rel: 0.10,
        anomaly_fraction: 0.0,
        ..LofarConfig::with_sources(scale.lofar_sources().min(2000))
    };
    let data = LofarDataset::generate(&cfg);
    let table = data.table.clone();
    let raw_bytes = table.byte_size();

    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("capture fits");

    // Query set: AVG intensity for each of ~100 sources at one band.
    let query_sources: Vec<i64> =
        (0..cfg.sources as i64).step_by((cfg.sources / 100).max(1)).collect();
    let queries: Vec<(i64, String)> = query_sources
        .iter()
        .map(|&s| {
            (
                s,
                format!(
                    "SELECT AVG(intensity) AS v FROM measurements \
                     WHERE source = {s} AND nu = 0.15"
                ),
            )
        })
        .collect();

    // Exact answers.
    let exact: Vec<f64> = queries
        .iter()
        .map(|(_, q)| {
            db.query(q).expect("exact").table.column("v").expect("col").f64_data().expect("f64")
                [0]
        })
        .collect();

    let rel_err = |answers: &[f64]| -> (f64, f64) {
        let mut errs: Vec<f64> = answers
            .iter()
            .zip(&exact)
            .filter(|(_, e)| e.is_finite() && **e != 0.0)
            .map(|(a, e)| ((a - e) / e).abs())
            .collect();
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        (percentile(&errs, 0.5), percentile(&errs, 0.9))
    };

    let mut methods = Vec::new();

    // Model-based answers.
    {
        let answers: Vec<f64> = queries
            .iter()
            .map(|(_, q)| {
                db.query_approx(q)
                    .expect("model answers")
                    .table
                    .column("v")
                    .expect("col")
                    .f64_data()
                    .expect("f64")[0]
            })
            .collect();
        let (median, p90) = rel_err(&answers);
        methods.push(MethodPoint {
            name: "captured model".to_string(),
            footprint: model.params.byte_size(),
            median_rel_error: median,
            p90_rel_error: p90,
        });
    }

    // Sampling at several fractions.
    for fraction in [0.01, 0.05, 0.10] {
        let sample = TableSample::uniform(&table, fraction, 99).expect("sample");
        let src = sample.sample.column("source").expect("col").i64_data().expect("i64");
        let nu = sample.sample.column("nu").expect("col").f64_data().expect("f64");
        let answers: Vec<f64> = queries
            .iter()
            .map(|(s, _)| {
                let keep: Vec<usize> = (0..sample.sample.row_count())
                    .filter(|&i| src[i] == *s && nu[i] == 0.15)
                    .collect();
                sample.estimate_avg("intensity", &keep, 0.95).expect("estimate").value
            })
            .collect();
        // NaN answers (no sampled row for the source) count as the worst
        // possible outcome: error 1.
        let patched: Vec<f64> = answers
            .iter()
            .zip(&exact)
            .map(|(a, e)| if a.is_finite() { *a } else { e * 2.0 })
            .collect();
        let (median, p90) = rel_err(&patched);
        methods.push(MethodPoint {
            name: format!("uniform sample {:.0}%", fraction * 100.0),
            footprint: (raw_bytes as f64 * fraction) as usize,
            median_rel_error: median,
            p90_rel_error: p90,
        });
    }

    // Stratified sampling (BlinkDB's actual design): guarantee per-group
    // coverage with a small cap. footprint ≈ groups × cap × row bytes.
    for per_group in [2usize, 4] {
        let strat = StratifiedSample::build(&table, "source", per_group, 7).expect("stratify");
        let answers: Vec<f64> = queries
            .iter()
            .map(|(s, _)| {
                // Per-group mean over the stratum (all bands — the cap is
                // too small to stratify per (source, band) too, which is
                // exactly the technique's limitation on fine queries).
                strat
                    .estimate_group_avg("intensity", "source", *s, 0.95)
                    .expect("estimate")
                    .value
            })
            .collect();
        let patched: Vec<f64> = answers
            .iter()
            .zip(&exact)
            .map(|(a, e)| if a.is_finite() { *a } else { e * 2.0 })
            .collect();
        let (median, p90) = rel_err(&patched);
        let row_bytes = raw_bytes / table.row_count().max(1);
        methods.push(MethodPoint {
            name: format!("stratified sample x{per_group}"),
            footprint: strat.sampled_rows() * row_bytes,
            median_rel_error: median,
            p90_rel_error: p90,
        });
    }

    // Histograms: per-source per-band means cannot be read off a single
    // global histogram; the honest synopsis answer for "AVG(intensity)
    // WHERE source = s" is the bucket mean at the source's typical
    // intensity — we give the synopsis its best shot by building one
    // equi-depth histogram over intensity per band and reconstructing
    // with it.
    for buckets in [32usize, 256, 1024] {
        let nu_col = table.column("nu").expect("col").f64_data().expect("f64");
        let int_col = table.column("intensity").expect("col").f64_data().expect("f64");
        let band_vals: Vec<f64> = (0..table.row_count())
            .filter(|&i| nu_col[i] == 0.15)
            .map(|i| int_col[i])
            .collect();
        let hist = Histogram::equi_depth(&band_vals, buckets).expect("histogram");
        let answers: Vec<f64> = exact.iter().map(|&e| hist.reconstruct(e)).collect();
        let (median, p90) = rel_err(&answers);
        methods.push(MethodPoint {
            name: format!("equi-depth hist {buckets}"),
            footprint: hist.byte_size(),
            median_rel_error: median,
            p90_rel_error: p90,
        });
    }

    E6Report { queries: queries.len(), raw_bytes, methods }
}

/// Print the comparison.
pub fn print(r: &E6Report) {
    println!("=== E6: accuracy vs sampling and synopses ===");
    println!(
        "{} per-source AVG queries; base table {}",
        r.queries,
        crate::fmt_bytes(r.raw_bytes)
    );
    println!();
    println!("method                 footprint     median err   p90 err");
    for m in &r.methods {
        println!(
            "{:<20}  {:>10}  {:>9.2}%  {:>8.2}%",
            m.name,
            crate::fmt_bytes(m.footprint),
            m.median_rel_error * 100.0,
            m.p90_rel_error * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_wins_on_accuracy_at_much_smaller_footprint() {
        let r = run(Scale::Small);
        let model = &r.methods[0];
        assert_eq!(model.name, "captured model");
        // Better than every sampling point.
        for m in r.methods.iter().filter(|m| m.name.starts_with("uniform")) {
            assert!(
                model.median_rel_error <= m.median_rel_error,
                "model {} vs {} {}",
                model.median_rel_error,
                m.name,
                m.median_rel_error
            );
        }
        // Footprint far below the 10% sample.
        let s10 = r.methods.iter().find(|m| m.name.contains("10%")).unwrap();
        assert!(model.footprint * 2 < s10.footprint);
        // Stratification fixes uniform sampling's missing-group failure…
        let strat = r.methods.iter().find(|m| m.name.contains("x4")).unwrap();
        let u5 = r.methods.iter().find(|m| m.name.contains("5%")).unwrap();
        assert!(strat.median_rel_error < u5.median_rel_error);
        // …but the model still answers the band-specific question better.
        assert!(model.median_rel_error <= strat.median_rel_error);
        // Model error itself is small.
        assert!(model.median_rel_error < 0.05, "{}", model.median_rel_error);
    }
}
