//! **E1 / Table 1** — "Example LOFAR observations and approximation".
//!
//! The paper: 1,452,824 measurement rows over 35,692 sources are
//! replaced by a per-source parameter table (spectral index α, constant
//! p, residual SE) — "ca. 11 MB of observations with 640 KB of model
//! parameters, ca. 5% of the original dataset size".

use crate::Scale;
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;

/// Measured Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Measurement rows generated.
    pub rows: usize,
    /// Sources generated.
    pub sources: usize,
    /// Sources successfully fitted.
    pub sources_fitted: usize,
    /// Raw bytes of the three-column measurements table.
    pub raw_bytes: usize,
    /// Bytes of the stored parameter table.
    pub param_bytes: usize,
    /// Pooled R² of the captured model.
    pub overall_r2: f64,
    /// First few parameter rows: (source, α, p, residual SE).
    pub sample_rows: Vec<(i64, f64, f64, f64)>,
    /// Wall-clock microseconds for the grouped capture.
    pub capture_us: f64,
}

impl Table1Report {
    /// `param_bytes / raw_bytes` — the paper reports ≈ 0.05.
    pub fn ratio(&self) -> f64 {
        self.param_bytes as f64 / self.raw_bytes as f64
    }
}

/// Run the Table 1 experiment.
pub fn run(scale: Scale) -> Table1Report {
    let cfg = match scale {
        Scale::Paper => LofarConfig::paper_scale(),
        other => LofarConfig::with_sources(other.lofar_sources()),
    };
    let data = LofarDataset::generate(&cfg);
    let rows = data.rows();
    let sources = cfg.sources;
    let raw_bytes = data.table.byte_size();

    let db = LawsDb::new();
    // Anomalous sources drag pooled R² — accept what the data gives.
    let db = {
        let mut db = db;
        db.quality.min_r2 = 0.0;
        db
    };
    db.register_table(data.table).expect("fresh catalog");
    let (model, capture_us) = crate::time_us(|| {
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("LOFAR capture fits")
    });

    let param_bytes = model.params.byte_size();
    let mut sample_rows = Vec::new();
    if let lawsdb_models::ModelParams::Grouped { names, groups, .. } = &model.params {
        let alpha_idx = names.iter().position(|n| n == "alpha").expect("alpha param");
        let p_idx = names.iter().position(|n| n == "p").expect("p param");
        let mut keys: Vec<i64> = groups.keys().copied().collect();
        keys.sort_unstable();
        for &k in keys.iter().take(3) {
            let g = &groups[&k];
            sample_rows.push((k, g.values[alpha_idx], g.values[p_idx], g.residual_se));
        }
        Table1Report {
            rows,
            sources,
            sources_fitted: groups.len(),
            raw_bytes,
            param_bytes,
            overall_r2: model.overall_r2,
            sample_rows,
            capture_us,
        }
    } else {
        unreachable!("grouped capture returns grouped params")
    }
}

/// Print the paper-style table.
pub fn print(r: &Table1Report) {
    println!("=== E1 / Table 1: LOFAR observations -> model parameters ===");
    println!(
        "observations: {} rows over {} sources ({} raw)",
        r.rows,
        r.sources,
        crate::fmt_bytes(r.raw_bytes)
    );
    println!("grouped fit: {} sources fitted in {}", r.sources_fitted, crate::fmt_us(r.capture_us));
    println!();
    println!("Source  Spectral Index α  Constant p    Residual SE");
    for (s, alpha, p, rse) in &r.sample_rows {
        println!("{s:>6}  {alpha:>16.7}  {p:>10.7}  {rse:>12.9}");
    }
    println!("[{} more rows]", r.sources_fitted.saturating_sub(r.sample_rows.len()));
    println!();
    println!(
        "parameter table: {} — {:.1}% of raw (paper: 640 KB / 11 MB ≈ 5.8%)",
        crate::fmt_bytes(r.param_bytes),
        r.ratio() * 100.0
    );
    println!("pooled R²: {:.4}", r.overall_r2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scale_reproduces_the_shape() {
        let r = run(Scale::Small);
        assert_eq!(r.sources, 500);
        assert!(r.rows > 10_000);
        // The headline: parameters are a small fraction of raw bytes.
        assert!(r.ratio() < 0.2, "ratio {}", r.ratio());
        // And most sources fit well.
        assert!(r.sources_fitted as f64 > 0.95 * r.sources as f64);
        assert!(r.overall_r2 > 0.35, "pooled R² {}", r.overall_r2);
        assert_eq!(r.sample_rows.len(), 3);
    }
}
