//! Synopsis-driven scan pruning: the zero-IO measurement for ISSUE 3.
//!
//! Two workloads, each timed with pruning on and off after a result
//! identity check:
//!
//! * **clustered** — a sorted key column where zone maps alone decide
//!   most zones: refuted zones are skipped (`pages_pruned_zonemap`),
//!   wholly-satisfied zones accept without per-row predicate work
//!   (`pages_compressed_eval`), and only the boundary zone is scanned.
//!   The selectivity sweep shows per-row work elimination, the lever
//!   named in the issue, turning into throughput.
//! * **model** — a LOFAR-shaped table whose response column is covered
//!   by a captured power law with a recorded max-abs-residual bound.
//!   Zones are pruned from `prediction ± bound` with *zero* base-page
//!   reads (`pages_pruned_model`), the paper's stored-model-as-synopsis
//!   claim made measurable.
//!
//! The `report` binary exports this as `BENCH_scan_pruning.json`
//! (`report -- bench-scan-pruning`) and fails hard if the model tier
//! pruned nothing, which is what the CI smoke job keys on.

use lawsdb_core::LawsDb;
use lawsdb_fit::FitOptions;
use lawsdb_query::{execute_with, ExecOptions, QueryResult, ScanStats};
use lawsdb_storage::{Catalog, TableBuilder};

/// One measured `(workload, selectivity)` cell.
#[derive(Debug, Clone)]
pub struct PruningPoint {
    /// Workload label: `clustered` or `model`.
    pub workload: String,
    /// Base-table rows.
    pub rows: usize,
    /// Fraction of rows the predicate keeps (measured, not nominal).
    pub selectivity: f64,
    /// The benchmarked SQL.
    pub sql: String,
    /// Best-of-3 wall time with pruning (µs).
    pub pruned_us: f64,
    /// Best-of-3 wall time without pruning (µs).
    pub unpruned_us: f64,
    /// `unpruned_us / pruned_us`.
    pub speedup: f64,
    /// Scan counters from the pruned run.
    pub stats: ScanStats,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct PruningReport {
    /// Zone granularity in rows (the storage default).
    pub zone_rows: usize,
    /// All measured cells.
    pub points: Vec<PruningPoint>,
}

/// Sorted-key table: `k` = 0..rows (so zones hold tight disjoint
/// ranges), `g` = the zone id (constant within every zone, so exact
/// predicates on it decide zones wholesale), `v` pseudorandom payload.
pub fn clustered_dataset(rows: usize) -> Catalog {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let k: Vec<i64> = (0..rows as i64).collect();
    let g: Vec<i64> =
        (0..rows).map(|i| (i / lawsdb_storage::DEFAULT_ZONE_ROWS) as i64).collect();
    let v: Vec<f64> = (0..rows).map(|_| next() * 2.0 - 1.0).collect();
    let mut b = TableBuilder::new("scan");
    b.add_i64("k", k);
    b.add_i64("g", g);
    b.add_f64("v", v);
    let c = Catalog::new();
    c.register(b.build().expect("build")).expect("register");
    c
}

/// LOFAR-shaped database with a captured per-source power law over the
/// response column. Sources are ordered by amplitude so zones hold
/// narrow prediction bands and threshold queries prune at zone level.
pub fn model_dataset(sources: usize, obs_per_source: usize) -> LawsDb {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for s in 0..sources {
        // Amplitude grows with the source id: the sort key of the file.
        let p = 0.5 + 4.5 * (s as f64 / sources.max(1) as f64);
        let alpha = -0.7;
        for i in 0..obs_per_source {
            src.push(s as i64);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(alpha));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    let db = LawsDb::new();
    db.register_table(b.build().expect("build")).expect("register");
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default(),
    )
    .expect("capture");
    db
}

fn best_of_3(catalog: &Catalog, sql: &str, opts: &ExecOptions) -> (f64, QueryResult) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..3 {
        let (r, us) = crate::time_us(|| execute_with(catalog, sql, opts).expect("query"));
        if us < best {
            best = us;
            result = Some(r);
        }
    }
    (best, result.expect("three runs"))
}

fn measure(
    catalog: &Catalog,
    workload: &str,
    rows: usize,
    sql: &str,
    result_rows: impl Fn(&QueryResult) -> usize,
) -> PruningPoint {
    let pruned_opts = ExecOptions::default();
    let unpruned_opts = ExecOptions::unpruned();
    // Identity check before any timing counts: pruning must not change
    // the answer.
    let p = execute_with(catalog, sql, &pruned_opts).expect("pruned");
    let u = execute_with(catalog, sql, &unpruned_opts).expect("unpruned");
    assert_eq!(p.table.row_count(), u.table.row_count(), "{sql}");
    for i in 0..p.table.row_count() {
        assert_eq!(
            format!("{:?}", p.table.row(i).expect("row")),
            format!("{:?}", u.table.row(i).expect("row")),
            "{sql} row {i}"
        );
    }
    let (pruned_us, pruned_result) = best_of_3(catalog, sql, &pruned_opts);
    let (unpruned_us, _) = best_of_3(catalog, sql, &unpruned_opts);
    PruningPoint {
        workload: workload.to_string(),
        rows,
        selectivity: result_rows(&pruned_result) as f64 / rows.max(1) as f64,
        sql: sql.to_string(),
        pruned_us,
        unpruned_us,
        speedup: unpruned_us / pruned_us,
        stats: pruned_result.scan_stats,
    }
}

/// Run the sweep. `clustered_rows` sizes the sorted-key table;
/// `sources` sizes the model workload (`× 40` observations).
pub fn run(clustered_rows: usize, sources: usize) -> PruningReport {
    let mut points = Vec::new();

    // Clustered workload: selectivity sweep on the sorted key. The
    // boundary zone is the only one ever scanned row-by-row.
    let catalog = clustered_dataset(clustered_rows);
    let count_of = |r: &QueryResult| match r.table.row(0).expect("agg row").first() {
        Some(lawsdb_storage::Value::Int(n)) => *n as usize,
        other => panic!("unexpected COUNT(*) value {other:?}"),
    };
    for frac in [0.001, 0.01, 0.1, 0.5] {
        let threshold = (clustered_rows as f64 * frac) as i64;
        let sql =
            format!("SELECT COUNT(*) AS n, SUM(v) AS s FROM scan WHERE k < {threshold}");
        points.push(measure(&catalog, "clustered", clustered_rows, &sql, count_of));
    }
    // Wholesale decision: `g` is constant per zone, so an exact
    // predicate on it decides every zone from the synopsis — accepted
    // zones aggregate with zero per-row predicate work
    // (`pages_compressed_eval`), refuted ones are skipped.
    let zones = clustered_rows.div_ceil(lawsdb_storage::DEFAULT_ZONE_ROWS);
    let half = (zones / 2) as i64;
    let sql = format!("SELECT COUNT(*) AS n, SUM(v) AS s FROM scan WHERE g < {half}");
    points.push(measure(&catalog, "clustered", clustered_rows, &sql, count_of));

    // Model workload: the response column's zones carry
    // `prediction ± max_abs_residual`; thresholds above a zone's band
    // refute it with zero base-page IO.
    let obs = 40;
    let db = model_dataset(sources, obs);
    let rows = sources * obs;
    // `intensity` spans ~[1.6, 22.4] on this fixture: one unsatisfiable
    // threshold (pure zero-IO refutation) and one selective tail.
    for threshold in ["1000", "20"] {
        let sql = format!(
            "SELECT COUNT(*) AS n FROM measurements WHERE intensity > {threshold}"
        );
        points.push(measure(db.tables(), "model", rows, &sql, count_of));
    }

    PruningReport { zone_rows: lawsdb_storage::DEFAULT_ZONE_ROWS, points }
}

/// True when the model tier pruned at least one page somewhere — the
/// zero-IO path's liveness signal (the CI smoke gate).
pub fn model_tier_pruned(r: &PruningReport) -> bool {
    r.points
        .iter()
        .any(|p| p.workload == "model" && p.stats.pages_pruned_model > 0)
}

/// Print the report as a paper-style table.
pub fn print(r: &PruningReport) {
    println!("=== synopsis-driven scan pruning ===");
    println!("zone granularity: {} rows", r.zone_rows);
    println!(
        "workload    rows      sel%     pruned   unpruned  speedup  pages  zmap  model  cmp"
    );
    for p in &r.points {
        println!(
            "{:<9} {:>8} {:>8.3} {:>10} {:>10} {:>7.2}x {:>6} {:>5} {:>6} {:>4}",
            p.workload,
            p.rows,
            p.selectivity * 100.0,
            crate::fmt_us(p.pruned_us),
            crate::fmt_us(p.unpruned_us),
            p.speedup,
            p.stats.pages_total,
            p.stats.pages_pruned_zonemap,
            p.stats.pages_pruned_model,
            p.stats.pages_compressed_eval,
        );
    }
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &PruningReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"scan_pruning\",\n");
    out.push_str(&format!("  \"zone_rows\": {},\n", r.zone_rows));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"workload\": \"{}\", \"rows\": {}, \"selectivity\": {:.5}, \
             \"pruned_us\": {:.1}, \"unpruned_us\": {:.1}, \"speedup\": {:.3}, \
             \"pages_total\": {}, \"pages_pruned_zonemap\": {}, \
             \"pages_pruned_model\": {}, \"pages_compressed_eval\": {}}}{}\n",
            p.workload,
            p.rows,
            p.selectivity,
            p.pruned_us,
            p.unpruned_us,
            p.speedup,
            p.stats.pages_total,
            p.stats.pages_pruned_zonemap,
            p.stats.pages_pruned_model,
            p.stats.pages_compressed_eval,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_every_tier_fires() {
        let r = run(50_000, 300);
        assert_eq!(r.points.len(), 7);
        for p in &r.points {
            assert!(p.pruned_us > 0.0 && p.unpruned_us > 0.0, "{p:?}");
            assert!(p.stats.pages_total > 0, "{p:?}");
        }
        // Zone-map tier: the 0.1% scan skips almost everything.
        let selective = &r.points[0];
        assert!(
            selective.stats.pages_pruned_zonemap > 0,
            "{:?}",
            selective.stats
        );
        // Wholesale-accept tier: the constant-zone query decides every
        // page from the synopsis, scanning none row-by-row.
        let wholesale = &r.points[4];
        assert!(wholesale.stats.pages_compressed_eval > 0, "{:?}", wholesale.stats);
        assert!(wholesale.stats.pages_pruned_zonemap > 0, "{:?}", wholesale.stats);
        // Model tier: the zero-IO liveness gate the CI job enforces.
        assert!(model_tier_pruned(&r), "{r:?}");
        let json = to_json(&r);
        assert!(json.contains("\"scan_pruning\""));
        assert!(json.contains("\"pages_pruned_model\""));
    }
}
