//! Multi-session server throughput: N concurrent clients over one
//! shared engine through the full wire path (encode → frame → admit →
//! execute → decode), swept at 1/2/4/8 clients.
//!
//! The headline gate: the **post-admission service p50** under 8
//! concurrent clients must stay within 2× of the single-client p50.
//! Admission serializes execution (`max_concurrent_queries = 1`, the
//! honest setting for the 1-CPU CI container), so contention shows up
//! as *queue* wait — which is reported separately — while service time
//! measures what admission control is supposed to protect. The
//! `report` binary exports this as `BENCH_server.json` and fails when
//! the gate is missed.

use lawsdb_core::LawsDb;
use lawsdb_server::{AdmissionConfig, Client, QueryMode, Server, ServerConfig};
use lawsdb_storage::TableBuilder;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-client query mix: exact filter, global aggregate, group-by.
pub const QUERIES: &[(&str, QueryMode, &str)] = &[
    ("filter_scan", QueryMode::Exact, "SELECT v FROM points WHERE v > 1.5 AND w < 0.25"),
    (
        "global_agg",
        QueryMode::Exact,
        "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(w) AS a FROM points WHERE v > 0.2",
    ),
    ("group_agg", QueryMode::Exact, "SELECT g, COUNT(*) AS n, SUM(v) AS s FROM points GROUP BY g"),
    ("resilient_agg", QueryMode::Resilient, "SELECT AVG(v) FROM points"),
];

/// One swept client count.
#[derive(Debug, Clone)]
pub struct ServerPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total queries completed across all clients.
    pub queries: usize,
    /// Post-admission service p50 / p95 (µs) — the gated quantity.
    pub service_p50_us: u64,
    /// Service p95 (µs).
    pub service_p95_us: u64,
    /// Admission queue wait p50 (µs).
    pub queue_p50_us: u64,
    /// Client-observed end-to-end p50 (µs), includes queueing.
    pub e2e_p50_us: u64,
    /// Wall-clock for the whole client fleet (ms).
    pub wall_ms: f64,
    /// Completed queries per second across the fleet.
    pub qps: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Base-table rows.
    pub rows: usize,
    /// Queries issued per client.
    pub per_client: usize,
    /// Swept points (clients = 1, 2, 4, 8).
    pub points: Vec<ServerPoint>,
    /// `service_p50(max clients) / service_p50(1 client)`.
    pub p50_ratio: f64,
    /// The CI gate: ratio within 2×.
    pub within_p50_gate: bool,
}

fn dataset(rows: usize) -> Arc<LawsDb> {
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut g = Vec::with_capacity(rows);
    let mut v = Vec::with_capacity(rows);
    let mut w = Vec::with_capacity(rows);
    for i in 0..rows {
        g.push((i % 64) as i64);
        v.push(next() * 2.0);
        w.push(next());
    }
    let mut b = TableBuilder::new("points");
    b.add_i64("g", g);
    b.add_f64("v", v);
    b.add_f64("w", w);
    let db = LawsDb::new();
    db.register_table(b.build().expect("build")).expect("register");
    Arc::new(db)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Run the sweep: `per_client` queries from each of 1/2/4/8 clients
/// against a `rows`-row table, one fresh server per point.
pub fn run(rows: usize, per_client: usize) -> ServerReport {
    let client_counts = [1usize, 2, 4, 8];
    let db = dataset(rows);
    let mut points = Vec::new();
    for &clients in &client_counts {
        // A fresh server per point so metrics and admission state are
        // point-local; the engine (pager cache, plan cache) is shared
        // across the whole sweep, as it would be in production.
        let server = Server::new(
            Arc::clone(&db),
            ServerConfig {
                admission: AdmissionConfig {
                    max_concurrent_queries: 1,
                    max_queued: 64,
                    queue_timeout: Duration::from_secs(60),
                    ..AdmissionConfig::default()
                },
                ..ServerConfig::default()
            },
        );
        let started = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|ci| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    let mut c = Client::connect(server.connect()).expect("connect");
                    let mut samples = Vec::with_capacity(per_client);
                    for qi in 0..per_client {
                        let (_, mode, sql) = QUERIES[(ci + qi) % QUERIES.len()];
                        let sent = Instant::now();
                        let r = c.query(mode, sql).expect("bench query");
                        samples.push((r.service_us, r.queue_us, sent.elapsed().as_micros() as u64));
                    }
                    c.close().expect("close");
                    samples
                })
            })
            .collect();
        let mut service = Vec::new();
        let mut queue = Vec::new();
        let mut e2e = Vec::new();
        for h in handles {
            for (s, q, e) in h.join().expect("client thread") {
                service.push(s);
                queue.push(q);
                e2e.push(e);
            }
        }
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        service.sort_unstable();
        queue.sort_unstable();
        e2e.sort_unstable();
        points.push(ServerPoint {
            clients,
            queries: service.len(),
            service_p50_us: percentile(&service, 0.50),
            service_p95_us: percentile(&service, 0.95),
            queue_p50_us: percentile(&queue, 0.50),
            e2e_p50_us: percentile(&e2e, 0.50),
            wall_ms,
            qps: service.len() as f64 / (wall_ms / 1e3),
        });
    }
    let base = points.first().map(|p| p.service_p50_us.max(1)).unwrap_or(1);
    let loaded = points.last().map(|p| p.service_p50_us).unwrap_or(0);
    let p50_ratio = loaded as f64 / base as f64;
    ServerReport { rows, per_client, points, p50_ratio, within_p50_gate: p50_ratio <= 2.0 }
}

/// Render the paper-style table.
pub fn print(r: &ServerReport) {
    println!("server concurrency sweep — {} rows, {} queries/client", r.rows, r.per_client);
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>13} {:>12} {:>10} {:>9}",
        "clients", "queries", "service_p50", "service_p95", "queue_p50", "e2e_p50", "wall_ms", "qps"
    );
    for p in &r.points {
        println!(
            "{:>8} {:>8} {:>12}µs {:>12}µs {:>11}µs {:>10}µs {:>10.1} {:>9.0}",
            p.clients,
            p.queries,
            p.service_p50_us,
            p.service_p95_us,
            p.queue_p50_us,
            p.e2e_p50_us,
            p.wall_ms,
            p.qps
        );
    }
    println!(
        "service p50 ratio (8 clients / 1 client): {:.3} — gate (≤ 2.0): {}",
        r.p50_ratio,
        if r.within_p50_gate { "PASS" } else { "FAIL" }
    );
}

/// Machine-readable export for `BENCH_server.json`.
pub fn to_json(r: &ServerReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"server_concurrent_sessions\",\n");
    out.push_str(&format!("  \"rows\": {},\n", r.rows));
    out.push_str(&format!("  \"per_client\": {},\n", r.per_client));
    out.push_str(&format!("  \"p50_ratio\": {:.3},\n", r.p50_ratio));
    out.push_str(&format!("  \"within_p50_gate\": {},\n", r.within_p50_gate));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"queries\": {}, \"service_p50_us\": {}, \
             \"service_p95_us\": {}, \"queue_p50_us\": {}, \"e2e_p50_us\": {}, \
             \"wall_ms\": {:.1}, \"qps\": {:.0}}}{}\n",
            p.clients,
            p.queries,
            p.service_p50_us,
            p.service_p95_us,
            p.queue_p50_us,
            p.e2e_p50_us,
            p.wall_ms,
            p.qps,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_completes_and_exports() {
        let r = run(5_000, 3);
        assert_eq!(r.points.len(), 4);
        assert_eq!(r.points[0].clients, 1);
        assert_eq!(r.points[3].clients, 8);
        for p in &r.points {
            assert_eq!(p.queries, p.clients * 3);
        }
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"server_concurrent_sessions\""));
        assert!(json.contains("\"within_p50_gate\""));
    }
}
