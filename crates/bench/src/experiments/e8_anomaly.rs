//! **E8** — data anomalies via goodness-of-fit (Section 4.2).
//!
//! The generator injects flat-spectrum and turn-over sources (the
//! pulsars and GRB afterglows the Transients project hunts); the
//! detector ranks sources by misfit. We score precision@k / recall@k /
//! average precision for the two scoring rules (raw residual SE vs
//! 1 − R²), the ablation DESIGN.md calls out.

use crate::Scale;
use lawsdb_approx::anomaly::{
    average_precision, precision_at_k, rank_anomalies, recall_at_k, MisfitScore,
};
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;

/// One scoring rule's results.
#[derive(Debug, Clone)]
pub struct ScoreResult {
    /// Scoring rule label.
    pub score: &'static str,
    /// Precision at k = |truth|.
    pub precision_at_truth: f64,
    /// Recall at k = |truth|.
    pub recall_at_truth: f64,
    /// Recall at 2·|truth|.
    pub recall_at_2truth: f64,
    /// Average precision over the full ranking.
    pub average_precision: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E8Report {
    /// Sources in the data set.
    pub sources: usize,
    /// Injected anomalies.
    pub true_anomalies: usize,
    /// Per-rule results.
    pub rules: Vec<ScoreResult>,
}

/// Run anomaly detection and score it.
pub fn run(scale: Scale) -> E8Report {
    let cfg = LofarConfig {
        anomaly_fraction: 0.03,
        noise_rel: 0.10,
        ..LofarConfig::with_sources(scale.lofar_sources())
    };
    let data = LofarDataset::generate(&cfg);
    let truth = data.anomalies.clone();
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("capture fits");

    let k = truth.len();
    let rules = [MisfitScore::ResidualSe, MisfitScore::OneMinusR2]
        .into_iter()
        .map(|rule| {
            let ranked = rank_anomalies(&model, rule);
            ScoreResult {
                score: match rule {
                    MisfitScore::ResidualSe => "residual SE",
                    MisfitScore::OneMinusR2 => "1 - R²",
                },
                precision_at_truth: precision_at_k(&ranked, &truth, k),
                recall_at_truth: recall_at_k(&ranked, &truth, k),
                recall_at_2truth: recall_at_k(&ranked, &truth, 2 * k),
                average_precision: average_precision(&ranked, &truth),
            }
        })
        .collect();

    E8Report { sources: cfg.sources, true_anomalies: k, rules }
}

/// Print the scores.
pub fn print(r: &E8Report) {
    println!("=== E8: anomaly detection from goodness-of-fit ===");
    println!(
        "{} sources, {} injected anomalies (flat spectra + turn-overs)",
        r.sources, r.true_anomalies
    );
    println!();
    println!("score         prec@k    recall@k   recall@2k   avg precision");
    for s in &r.rules {
        println!(
            "{:<12}  {:>7.3}  {:>9.3}  {:>10.3}  {:>13.3}",
            s.score,
            s.precision_at_truth,
            s.recall_at_truth,
            s.recall_at_2truth,
            s.average_precision
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misfit_ranking_finds_planted_anomalies() {
        let r = run(Scale::Small);
        assert!(r.true_anomalies > 0);
        // The scale-free rule should do well; demand solid performance.
        let r2_rule = r.rules.iter().find(|s| s.score == "1 - R²").unwrap();
        assert!(r2_rule.precision_at_truth > 0.5, "{:?}", r2_rule);
        assert!(r2_rule.recall_at_2truth > 0.7, "{:?}", r2_rule);
        assert!(r2_rule.average_precision > 0.5, "{:?}", r2_rule);
    }
}
