//! **E10** — data and model changes (Section 4.1).
//!
//! "Changing or added observations can change fit of the model
//! dramatically. This could also make a model with a previously poor fit
//! relevant again. A possible solution could be to check these measures
//! for all previous models and switch when appropriate."
//!
//! The experiment: capture a power-law model and semantically compress
//! against it; then append observations of *new* sources the model has
//! never seen; observe the stale marking, the degraded compression (the
//! uncovered rows ride as raw exceptions), the re-fit extending
//! coverage, the model switch (old version retired but kept) and the
//! recovered compression.

use crate::Scale;
use lawsdb_core::storage_mgr::{compress_column, CompressionMode};
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_data::rng;
use lawsdb_fit::FitOptions;
use lawsdb_models::ModelState;
use lawsdb_storage::Column;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E10Report {
    /// R² of the original capture.
    pub r2_before: f64,
    /// Compressed bytes before the change.
    pub bytes_before: usize,
    /// Stale model count after append.
    pub stale_after_append: usize,
    /// Compressed bytes using the stale model on the changed data.
    pub bytes_stale: usize,
    /// R² after the re-fit.
    pub r2_after: f64,
    /// Compressed bytes after re-fit + recompression.
    pub bytes_refit: usize,
    /// Model versions now in the catalog for the coverage.
    pub versions_kept: usize,
    /// Old model's state after the switch.
    pub old_state: ModelState,
}

/// Quantization step for the compression metric: the lossless XOR codec
/// saturates (any misprediction beyond ~0.1% costs the full mantissa),
/// while quantized bytes grow with log₂ of the residual magnitude —
/// exactly the sensitivity this lifecycle experiment needs.
const EPS: f64 = 1e-4;

/// Run the model-change lifecycle.
pub fn run(scale: Scale) -> E10Report {
    let cfg = LofarConfig {
        sources: scale.lofar_sources().min(1000),
        noise_rel: 0.005,
        anomaly_fraction: 0.0,
        ..LofarConfig::default()
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .expect("capture fits");
    let r2_before = model.overall_r2;
    let table = db.table("measurements").expect("registered");
    let bytes_before = compress_column(&model, &table, CompressionMode::Quantized { eps: EPS })
        .expect("compress")
        .compressed_bytes();

    // Append a batch of *new* sources — the transients the survey
    // exists to find. The stale model has no parameters for them, so
    // every new row rides as a raw exception until the re-fit extends
    // coverage ("added observations can change [the] fit … check these
    // measures … and switch when appropriate").
    let mut rng = StdRng::seed_from_u64(77);
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let base = cfg.sources as i64;
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for t in &data.truth {
        let new_source = base + t.source;
        let (p, alpha) = (t.p * 1.5, t.alpha - 0.3);
        for i in 0..40usize {
            let f = freqs[i % 4];
            src.push(new_source);
            nu.push(f);
            intensity.push(
                p * f.powf(alpha) * (1.0 + rng::normal(&mut rng, 0.0, 0.005)),
            );
        }
    }
    let stale = db
        .append_rows(
            "measurements",
            &[Column::from_i64(src), Column::from_f64(nu), Column::from_f64(intensity)],
        )
        .expect("append");

    // Stale model still *can* compress (allow_stale semantics), but
    // badly — measure it against the changed table.
    let changed = db.table("measurements").expect("registered");
    let bytes_stale = compress_column(&model, &changed, CompressionMode::Quantized { eps: EPS })
        .expect("compress with stale model")
        .compressed_bytes();

    // Re-fit: new version wins, old is retired but kept.
    let fresh = db.refit(model.id, &FitOptions::default()).expect("refit");
    let bytes_refit = compress_column(&fresh, &changed, CompressionMode::Quantized { eps: EPS })
        .expect("recompress")
        .compressed_bytes();

    let versions_kept = db.models().models_for("measurements", "intensity").len();
    let old_state = db.models().get(model.id).expect("kept").state;

    E10Report {
        r2_before,
        bytes_before,
        stale_after_append: stale.len(),
        bytes_stale,
        r2_after: fresh.overall_r2,
        bytes_refit,
        versions_kept,
        old_state,
    }
}

/// Print the lifecycle.
pub fn print(r: &E10Report) {
    println!("=== E10: data/model changes, re-fit and recompression ===");
    println!("capture:    R² = {:.4}, semantic column = {}", r.r2_before, crate::fmt_bytes(r.bytes_before));
    println!("append drift batch → {} model(s) marked stale", r.stale_after_append);
    println!("stale model on new data: column = {}", crate::fmt_bytes(r.bytes_stale));
    println!(
        "re-fit:     R² = {:.4}, column = {} (old version kept as {:?})",
        r.r2_after,
        crate::fmt_bytes(r.bytes_refit),
        r.old_state
    );
    println!("versions retained for coverage: {}", r.versions_kept);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_degrades_then_recovers() {
        let r = run(Scale::Small);
        assert!(r.r2_before > 0.95);
        assert_eq!(r.stale_after_append, 1);
        // Drifted data compresses worse under the stale model…
        assert!(
            r.bytes_stale > r.bytes_before,
            "stale {} vs before {}",
            r.bytes_stale,
            r.bytes_before
        );
        // …and recovers after the re-fit. The mixed regimes (old + new
        // law per source) fit worse than the clean original, so compare
        // against the stale bytes, not the originals.
        assert!(
            r.bytes_refit < r.bytes_stale,
            "refit {} vs stale {}",
            r.bytes_refit,
            r.bytes_stale
        );
        assert_eq!(r.versions_kept, 2);
        assert_eq!(r.old_state, ModelState::Retired);
    }
}
