//! Sharded scatter-gather under failure: shards × replicas × failure
//! rate, measuring the query-latency cost of steady-state replica
//! failover against the healthy path.
//!
//! "Steady state" is the operative word: the health tracker marks a
//! dead replica Down after `fail_threshold` consecutive failures, and
//! from then on selection skips it outright — so once the tracker has
//! settled, a query against a half-dead cluster should cost within
//! **10%** of the healthy path (the gate the `report` binary
//! enforces). The expensive part of failover — attempting the dead
//! replica and eating the device error — is paid only during the
//! detection window, which the warm-up absorbs exactly as a real
//! workload would.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme};
use lawsdb_obs::MetricsRegistry;
use lawsdb_query::ExecOptions;
use lawsdb_storage::{Table, TableBuilder};
use std::time::Instant;

/// The swept query: grouped aggregation over the shard key — the
/// scatter-gather fast path, where partial-aggregate merging (not raw
/// row movement) carries the answer.
pub const SQL: &str =
    "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m FROM points GROUP BY g ORDER BY g";

/// One swept configuration.
#[derive(Debug, Clone)]
pub struct ClusterPoint {
    /// Shard count.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Percent of shards whose replica 0 was killed before measuring.
    pub failure_pct: u32,
    /// Query latency p50 / p95 (µs) after the health tracker settled.
    pub p50_us: u64,
    /// Latency p95 (µs).
    pub p95_us: u64,
    /// Queries per second at steady state.
    pub qps: f64,
    /// Failovers recorded during warm-up + measurement.
    pub failovers: u64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Base-table rows.
    pub rows: usize,
    /// Timed queries per configuration.
    pub iters: usize,
    /// Swept points.
    pub points: Vec<ClusterPoint>,
    /// Worst `p50(all replica-0 dead) / p50(healthy)` across
    /// multi-replica configurations.
    pub worst_overhead: f64,
    /// The CI gate: steady-state failover within 1.10× of healthy.
    pub within_failover_gate: bool,
}

fn dataset(rows: usize) -> Table {
    let mut state = 0x51ed_270b_a35e_c1f3u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = TableBuilder::new("points");
    b.add_i64("g", (0..rows).map(|i| (i % 16) as i64).collect());
    b.add_f64("v", (0..rows).map(|_| next() * 100.0 - 50.0).collect());
    b.build().unwrap()
}

fn measure(cluster: &Cluster, iters: usize) -> (u64, u64, f64) {
    let opts = ExecOptions { threads: 1, ..ExecOptions::default() };
    let mut lat = Vec::with_capacity(iters);
    let start = Instant::now();
    for _ in 0..iters {
        let t0 = Instant::now();
        cluster.query(SQL, &opts).expect("swept query must succeed");
        lat.push(t0.elapsed().as_micros() as u64);
    }
    let wall = start.elapsed().as_secs_f64();
    lat.sort_unstable();
    let p50 = lat[lat.len() / 2];
    let p95 = lat[(lat.len() * 95 / 100).min(lat.len() - 1)];
    (p50, p95, iters as f64 / wall)
}

/// The gated comparison, run as an interleaved pair: one healthy
/// cluster and one with every shard's replica 0 dead, queried in
/// alternating rounds so environmental drift (CPU frequency, cache
/// pressure, a noisy CI neighbor) hits both sides equally. Sweeping
/// them sequentially instead makes the ratio hostage to whichever run
/// drew the slower minute.
fn steady_state_overhead(table: &Table, shards: usize, iters: usize) -> f64 {
    let build = || {
        let registry = MetricsRegistry::new();
        Cluster::new(
            table,
            ClusterConfig {
                shards,
                replicas: 2,
                scheme: PartitionScheme::Hash { key: "g".to_string() },
                ..ClusterConfig::default()
            },
            &registry,
        )
        .expect("cluster build")
    };
    let healthy = build();
    let dead = build();
    for s in 0..shards {
        dead.kill_replica(s, 0);
    }
    let opts = ExecOptions { threads: 1, ..ExecOptions::default() };
    for _ in 0..3 {
        healthy.query(SQL, &opts).expect("warm-up query");
        dead.query(SQL, &opts).expect("warm-up query");
    }
    let mut lat_h = Vec::with_capacity(iters);
    let mut lat_d = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        healthy.query(SQL, &opts).expect("healthy query");
        lat_h.push(t0.elapsed().as_micros() as u64);
        let t0 = Instant::now();
        dead.query(SQL, &opts).expect("failover query");
        lat_d.push(t0.elapsed().as_micros() as u64);
    }
    lat_h.sort_unstable();
    lat_d.sort_unstable();
    lat_d[iters / 2] as f64 / (lat_h[iters / 2] as f64).max(1.0)
}

/// Run the sweep: shards × replicas × failure rate.
pub fn run(rows: usize, iters: usize) -> ClusterReport {
    let table = dataset(rows);
    let mut points = Vec::new();
    let mut worst = 1.0f64;
    for &shards in &[2usize, 4] {
        for &replicas in &[1usize, 2] {
            for &failure_pct in &[0u32, 50, 100] {
                // A single-replica shard has nothing to fail over to.
                if replicas == 1 && failure_pct > 0 {
                    continue;
                }
                let registry = MetricsRegistry::new();
                let cluster = Cluster::new(
                    &table,
                    ClusterConfig {
                        shards,
                        replicas,
                        scheme: PartitionScheme::Hash { key: "g".to_string() },
                        ..ClusterConfig::default()
                    },
                    &registry,
                )
                .expect("cluster build");
                let dead = (shards * failure_pct as usize).div_ceil(100);
                for s in 0..dead {
                    cluster.kill_replica(s, 0);
                }
                // Warm-up: let the health tracker eat the detection
                // window (fail → threshold → Down) and the caches fill.
                let opts = ExecOptions { threads: 1, ..ExecOptions::default() };
                for _ in 0..3 {
                    cluster.query(SQL, &opts).expect("warm-up query");
                }
                let (p50, p95, qps) = measure(&cluster, iters);
                let failovers = registry.snapshot().counter("lawsdb_cluster_failovers");
                points.push(ClusterPoint {
                    shards,
                    replicas,
                    failure_pct,
                    p50_us: p50,
                    p95_us: p95,
                    qps,
                    failovers,
                });
            }
        }
    }
    // The gate: drift-cancelling interleaved comparison per shard count.
    for &shards in &[2usize, 4] {
        worst = worst.max(steady_state_overhead(&table, shards, iters));
    }
    ClusterReport {
        rows,
        iters,
        points,
        worst_overhead: worst,
        within_failover_gate: worst <= 1.10,
    }
}

/// Paper-style table.
pub fn print(r: &ClusterReport) {
    println!("cluster failover sweep — {} rows, {} timed queries/config", r.rows, r.iters);
    println!(
        "{:>7} {:>9} {:>9} {:>10} {:>10} {:>9} {:>10}",
        "shards", "replicas", "dead%", "p50", "p95", "qps", "failovers"
    );
    for p in &r.points {
        println!(
            "{:>7} {:>9} {:>9} {:>8}µs {:>8}µs {:>9.0} {:>10}",
            p.shards, p.replicas, p.failure_pct, p.p50_us, p.p95_us, p.qps, p.failovers
        );
    }
    println!(
        "worst steady-state failover overhead: {:.3}x — gate (≤ 1.10): {}",
        r.worst_overhead,
        if r.within_failover_gate { "PASS" } else { "FAIL" }
    );
}

/// Machine-readable export for `BENCH_cluster.json`.
pub fn to_json(r: &ClusterReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster_failover\",\n");
    out.push_str(&format!("  \"rows\": {},\n", r.rows));
    out.push_str(&format!("  \"iters\": {},\n", r.iters));
    out.push_str(&format!("  \"worst_overhead\": {:.3},\n", r.worst_overhead));
    out.push_str(&format!("  \"within_failover_gate\": {},\n", r.within_failover_gate));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"replicas\": {}, \"failure_pct\": {}, \"p50_us\": {}, \
             \"p95_us\": {}, \"qps\": {:.0}, \"failovers\": {}}}{}\n",
            p.shards,
            p.replicas,
            p.failure_pct,
            p.p50_us,
            p.p95_us,
            p.qps,
            p.failovers,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_completes_and_exports() {
        let r = run(4_000, 5);
        // 2 shard counts × (1 replica × 1 failure + 2 replicas × 3 failures).
        assert_eq!(r.points.len(), 8);
        assert!(r.points.iter().any(|p| p.failure_pct == 100 && p.failovers >= 1));
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"cluster_failover\""));
        assert!(json.contains("\"within_failover_gate\""));
    }
}
