//! **E5** — zero-IO scans (Section 4.1).
//!
//! "In the case of approximate queries, we do not even need to access
//! the stored data at all … This allows us to transform an IO-bound
//! problem (scanning a large table on disk) into a CPU-bound problem
//! (recalculating all the values from the model)."
//!
//! The measurements table is laid out on the simulated block device; the
//! exact path reads its pages through the pager (counted exactly), the
//! model path touches zero pages. We report page counts, measured CPU
//! time, and end-to-end time under three device profiles.

use crate::Scale;
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;
use lawsdb_storage::io::DeviceProfile;
use lawsdb_storage::pager::Pager;

/// One device profile's end-to-end comparison.
#[derive(Debug, Clone)]
pub struct DevicePoint {
    /// Profile label.
    pub device: &'static str,
    /// Exact path: simulated IO µs + measured CPU µs.
    pub exact_us: f64,
    /// Model path: measured CPU µs (zero IO by construction).
    pub approx_us: f64,
    /// Speedup.
    pub speedup: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E5Report {
    /// Pages the exact scan read.
    pub pages_read_exact: u64,
    /// Pages the model answer read (must be 0).
    pub pages_read_approx: u64,
    /// Measured CPU time of the exact scan (decode + filter), µs.
    pub exact_cpu_us: f64,
    /// Measured CPU time of the model reconstruction, µs.
    pub approx_cpu_us: f64,
    /// Relative error of the approximate aggregate vs exact.
    pub relative_error: f64,
    /// Per-device end-to-end comparison.
    pub devices: Vec<DevicePoint>,
}

/// Run the zero-IO experiment: `SELECT AVG(intensity) … WHERE nu = 0.15`.
pub fn run(scale: Scale) -> E5Report {
    let cfg = LofarConfig {
        noise_rel: 0.05,
        anomaly_fraction: 0.0,
        ..LofarConfig::with_sources(scale.lofar_sources())
    };
    let data = LofarDataset::generate(&cfg);

    // Lay the table out on the simulated device (8 KiB pages, cold
    // cache so every page is a device read).
    let mut pager = Pager::new(8192, 0);
    pager.store_table(&data.table).expect("store");

    // Model capture (in-memory engine for the approximate path).
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table.clone()).expect("fresh catalog");
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default().with_initial("alpha", -0.7),
    )
    .expect("capture fits");

    let sql = "SELECT AVG(intensity) AS v FROM measurements WHERE nu = 0.15";

    // Exact path: pull the needed pages through the pager, then execute.
    pager.reset();
    let (exact_value, exact_cpu_us) = crate::time_us(|| {
        let table = pager.read_table("measurements").expect("paged read");
        let catalog = lawsdb_storage::Catalog::new();
        catalog.register(table).expect("fresh");
        let r = lawsdb_query::execute(&catalog, sql).expect("exact query");
        r.table.column("v").expect("col").f64_data().expect("f64")[0]
    });
    let io = pager.stats();

    // Approximate path.
    let (answer, approx_cpu_us) = crate::time_us(|| db.query_approx(sql).expect("model answers"));
    let approx_value = answer.table.column("value").or_else(|_| answer.table.column("v"))
        .expect("col")
        .f64_data()
        .expect("f64")[0];

    let relative_error = ((approx_value - exact_value) / exact_value).abs();

    let devices = [
        ("spinning-disk", DeviceProfile::spinning_disk()),
        ("sata-ssd", DeviceProfile::sata_ssd()),
        ("nvme-ssd", DeviceProfile::nvme_ssd()),
    ]
    .into_iter()
    .map(|(name, profile)| {
        let io_us = profile.cost_us(io.pages_read, io.bytes_read);
        let exact_us = io_us + exact_cpu_us;
        DevicePoint {
            device: name,
            exact_us,
            approx_us: approx_cpu_us,
            speedup: exact_us / approx_cpu_us,
        }
    })
    .collect();

    E5Report {
        pages_read_exact: io.pages_read,
        pages_read_approx: answer.rows_scanned as u64, // 0 by construction
        exact_cpu_us,
        approx_cpu_us,
        relative_error,
        devices,
    }
}

/// Print the comparison.
pub fn print(r: &E5Report) {
    println!("=== E5: zero-IO scans (AVG over one band) ===");
    println!(
        "exact scan: {} pages read, {} CPU; model answer: {} pages, {} CPU",
        r.pages_read_exact,
        crate::fmt_us(r.exact_cpu_us),
        r.pages_read_approx,
        crate::fmt_us(r.approx_cpu_us)
    );
    println!("approximate relative error: {:.4}%", r.relative_error * 100.0);
    println!();
    println!("device          exact (IO+CPU)   model (CPU)   speedup");
    for d in &r.devices {
        println!(
            "{:<14}  {:>14}  {:>12}  {:>7.1}x",
            d.device,
            crate::fmt_us(d.exact_us),
            crate::fmt_us(d.approx_us),
            d.speedup
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_path_is_zero_io_and_accurate() {
        let r = run(Scale::Small);
        assert!(r.pages_read_exact > 0);
        assert_eq!(r.pages_read_approx, 0);
        assert!(r.relative_error < 0.05, "err {}", r.relative_error);
        // The slower the device, the bigger the win.
        assert!(r.devices[0].speedup >= r.devices[1].speedup);
        assert!(r.devices[1].speedup >= r.devices[2].speedup);
        // On spinning disk the model path must win clearly.
        assert!(r.devices[0].speedup > 1.0, "speedup {}", r.devices[0].speedup);
    }
}
