//! **E3 / Figure 2** — the model-interception protocol as a latency
//! experiment.
//!
//! Figure 2 is the paper's architectural diagram: fit offloaded into the
//! database (steps 1–3), later queries answered from the stored model
//! with error bounds (steps 4–5). The quantitative claim behind it is
//! the motivation from Section 3: "Transferring all data from the
//! database to the statistical environment is not necessary any more."
//!
//! This experiment executes all five steps against a synthetic LOFAR
//! table and sweeps the simulated client link bandwidth: in-database
//! fitting pays only the fit; the ship-to-client counterfactual pays
//! transfer + the same fit.

use crate::Scale;
use lawsdb_core::{FitOptions, LawsDb, TransferModel};
use lawsdb_data::lofar::{LofarConfig, LofarDataset};

/// One bandwidth point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// Link bandwidth (MB/s).
    pub bandwidth_mb_s: f64,
    /// Simulated ship-to-client cost (µs).
    pub ship_us: f64,
    /// Measured in-database fit cost (µs).
    pub fit_us: f64,
    /// end-to-end speedup of offloading: (ship + fit) / fit.
    pub speedup: f64,
}

/// The measured protocol run.
#[derive(Debug, Clone)]
pub struct Figure2Report {
    /// Rows in the frame.
    pub rows: usize,
    /// Bytes the strawman kept server-side.
    pub bytes: usize,
    /// Pooled R² returned at step 3.
    pub overall_r2: f64,
    /// Point-query answer at step 5 with its error bound.
    pub answer: (f64, f64),
    /// Zero rows scanned at step 5?
    pub zero_io: bool,
    /// The bandwidth sweep.
    pub sweep: Vec<SweepPoint>,
    /// Intercept-log length (should be 2: fit + query).
    pub log_events: usize,
}

/// Run the protocol.
pub fn run(scale: Scale) -> Figure2Report {
    let cfg = LofarConfig {
        anomaly_fraction: 0.0,
        noise_rel: 0.05,
        ..LofarConfig::with_sources(scale.lofar_sources())
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");

    let mut session = db.session();
    let frame = session.frame("measurements").expect("table registered");
    let ((report, fit_us), _) = crate::time_us(|| {
        crate::time_us(|| {
            session
                .fit(&frame, "intensity ~ p * nu ^ alpha", FitOptions::grouped_by("source"))
                .expect("capture fits")
        })
    });
    let answer = session
        .query_approx("SELECT intensity FROM measurements WHERE source = 7 AND nu = 0.15")
        .expect("model answers");
    let value = answer.table.column("intensity").expect("col").f64_data().expect("f64")[0];

    let sweep = [10.0, 50.0, 125.0, 500.0, 1000.0]
        .into_iter()
        .map(|bandwidth_mb_s| {
            let link = TransferModel { bandwidth_mb_s, latency_us: 500.0 };
            let ship_us = link.ship_us(frame.bytes);
            SweepPoint {
                bandwidth_mb_s,
                ship_us,
                fit_us,
                speedup: (ship_us + fit_us) / fit_us,
            }
        })
        .collect();

    Figure2Report {
        rows: frame.rows,
        bytes: frame.bytes,
        overall_r2: report.overall_r2,
        answer: (value, answer.error_bound.unwrap_or(f64::NAN)),
        zero_io: answer.rows_scanned == 0,
        sweep,
        log_events: session.log().len(),
    }
}

/// Print the protocol trace and sweep.
pub fn print(r: &Figure2Report) {
    println!("=== E3 / Figure 2: model interception protocol ===");
    println!("(1) strawman frame: {} rows, {}", r.rows, crate::fmt_bytes(r.bytes));
    println!("(2) fit offloaded into the engine");
    println!("(3) goodness of fit returned: R² = {:.4}", r.overall_r2);
    println!(
        "(4-5) approximate answer: I = {:.4} ± {:.4}, zero-IO = {}",
        r.answer.0, r.answer.1, r.zero_io
    );
    println!("intercept log: {} events", r.log_events);
    println!();
    println!("-- offload vs ship-to-client, by link bandwidth --");
    println!("bandwidth   ship-data     in-db fit    offload speedup");
    for p in &r.sweep {
        println!(
            "{:>6} MB/s  {:>10}  {:>10}  {:>8.2}x",
            p.bandwidth_mb_s,
            crate::fmt_us(p.ship_us),
            crate::fmt_us(p.fit_us),
            p.speedup
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_runs_and_offload_wins_at_low_bandwidth() {
        let r = run(Scale::Small);
        assert!(r.zero_io);
        assert!(r.overall_r2 > 0.8);
        assert_eq!(r.log_events, 2);
        assert!(r.answer.1.is_finite());
        // Speedups decrease with bandwidth and are > 1 everywhere.
        for w in r.sweep.windows(2) {
            assert!(w[0].speedup >= w[1].speedup);
        }
        assert!(r.sweep.iter().all(|p| p.speedup > 1.0));
    }
}
