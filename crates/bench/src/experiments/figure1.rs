//! **E2 / Figure 1** — "Raw data vs. Model: LOFAR".
//!
//! The paper's figure shows one source's noisy observations across the
//! four frequency bands and the fitted power-law curve; the text
//! predicts "a spectral index of -0.69 for this source, which indicates
//! … thermal emissions". We regenerate the figure's data series: the
//! scatter points, the fitted curve, and the fitted α.

use lawsdb_data::rng;
use lawsdb_fit::{fit_nonlinear, DataSet, FitOptions, JacobianMode};
use lawsdb_expr::parse_formula;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The regenerated Figure 1 data.
#[derive(Debug, Clone)]
pub struct Figure1Report {
    /// Scatter points (ν, I).
    pub observations: Vec<(f64, f64)>,
    /// Fitted curve samples (ν, Î) across the band range.
    pub curve: Vec<(f64, f64)>,
    /// Fitted spectral index (paper: −0.69).
    pub alpha: f64,
    /// Fitted proportionality constant.
    pub p: f64,
    /// Residual SE of the fit.
    pub residual_se: f64,
    /// R² of the fit.
    pub r2: f64,
    /// Iterations the optimizer took.
    pub iterations: usize,
    /// Same fit via finite differences (the Jacobian ablation).
    pub alpha_fd: f64,
}

/// Generate the showcased source and fit it.
///
/// True parameters mirror the figure: α = −0.69, intensities in the
/// 2–3.5 Jy band like the plot's y-axis, heavy scatter.
pub fn run() -> Figure1Report {
    let true_alpha = -0.69;
    let true_p = 2.35 * 0.15_f64.powf(0.69); // so I(0.15 GHz) ≈ 2.35 Jy
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut rng = StdRng::seed_from_u64(169);
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for i in 0..200 {
        let f = freqs[i % 4];
        let clean = true_p * f.powf(true_alpha);
        nu.push(f);
        intensity.push(clean * (1.0 + rng::normal(&mut rng, 0.0, 0.12)));
    }
    let formula = parse_formula("intensity ~ p * nu ^ alpha").expect("valid formula");
    let data =
        DataSet::new(vec![("nu", &nu[..]), ("intensity", &intensity[..])]).expect("columns");
    let fit = fit_nonlinear(&formula, &data, &FitOptions::default()).expect("fit converges");
    let fd = fit_nonlinear(
        &formula,
        &data,
        &FitOptions::default().with_jacobian(JacobianMode::FiniteDifference),
    )
    .expect("fd fit converges");

    let alpha = fit.param("alpha").expect("alpha fitted");
    let p = fit.param("p").expect("p fitted");
    let curve: Vec<(f64, f64)> = (0..=60)
        .map(|i| {
            let f = 0.10 + i as f64 * (0.20 - 0.10) / 60.0;
            (f, p * f.powf(alpha))
        })
        .collect();
    Figure1Report {
        observations: nu.into_iter().zip(intensity).collect(),
        curve,
        alpha,
        p,
        residual_se: fit.diagnostics.residual_se,
        r2: fit.diagnostics.r2,
        iterations: fit.iterations,
        alpha_fd: fd.param("alpha").expect("alpha fitted"),
    }
}

/// Print the figure's data series.
pub fn print(r: &Figure1Report) {
    println!("=== E2 / Figure 1: raw data vs. model (single LOFAR source) ===");
    println!(
        "fit: I = p * nu ^ alpha  ->  alpha = {:.3} (paper: -0.69), p = {:.4}",
        r.alpha, r.p
    );
    println!(
        "residual SE = {:.4}, R² = {:.4}, {} LM iterations; finite-difference alpha = {:.3}",
        r.residual_se, r.r2, r.iterations, r.alpha_fd
    );
    println!();
    println!("-- fitted curve (nu GHz, intensity Jy), every 6th sample --");
    for (f, i) in r.curve.iter().step_by(6) {
        println!("{f:.3}  {i:.3}");
    }
    println!();
    println!("-- observation scatter by band: mean ± sd --");
    for band in [0.12, 0.15, 0.16, 0.18] {
        let vals: Vec<f64> = r
            .observations
            .iter()
            .filter(|(f, _)| (*f - band).abs() < 1e-9)
            .map(|(_, i)| *i)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let sd = (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
            / (vals.len() - 1) as f64)
            .sqrt();
        println!("{band:.2} GHz: {:>3} obs, {mean:.3} ± {sd:.3} Jy", vals.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_the_papers_spectral_index() {
        let r = run();
        assert!((r.alpha + 0.69).abs() < 0.05, "alpha {}", r.alpha);
        assert!(r.r2 > 0.25, "r2 {}", r.r2);
        // Symbolic and finite-difference Jacobians agree.
        assert!((r.alpha - r.alpha_fd).abs() < 1e-4);
        // The curve spans the plotted x-range and decreases (α < 0).
        assert_eq!(r.curve.len(), 61);
        assert!(r.curve.first().unwrap().1 > r.curve.last().unwrap().1);
        // Intensities sit in the figure's 2–3.5 Jy window.
        let at_015 = r.p * 0.15_f64.powf(r.alpha);
        assert!((2.0..3.0).contains(&at_015), "{at_015}");
    }
}
