//! One module per experiment; each exposes `run(scale) -> …Report` (a
//! plain struct of the measured numbers) and `print(&report)` rendering
//! the paper-style table. The `report` binary and the Criterion benches
//! both call `run`.

pub mod agg;
pub mod cluster;
pub mod durability;
pub mod e10_model_change;
pub mod e11_model_classes;
pub mod e4_compression;
pub mod e5_zero_io;
pub mod e6_accuracy;
pub mod e7_analytic;
pub mod e8_anomaly;
pub mod e9_enumeration;
pub mod figure1;
pub mod morsel;
pub mod obs;
pub mod optimizer;
pub mod figure2;
pub mod resilience;
pub mod scan_pruning;
pub mod server;
pub mod table1;
