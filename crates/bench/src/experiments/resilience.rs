//! Governor overhead: what the resilient runtime's budget checks cost
//! on the morsel-executor workloads (`BENCH_query.json`'s query set).
//!
//! Two runs per `(query, rows)` cell, identical except for the
//! governor: *ungoverned* (unlimited budget, no cancel token — the
//! governor is never armed, by construction a zero-cost path) and
//! *governed* (a live cancel token plus generous deadline / memory /
//! row budgets, so every morsel boundary pays the real check without
//! any budget ever firing). The target is ≤ 5 % overhead; the measured
//! number is exported as `BENCH_resilience.json`.

use lawsdb_query::{execute_with, CancelToken, ExecOptions, ResourceBudget};
use std::time::Duration;

use super::morsel;

/// Overhead target, in percent, recorded alongside the measurement.
pub const TARGET_PCT: f64 = 5.0;

/// One measured `(query, rows)` cell.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Query label (see [`morsel::QUERIES`]).
    pub query: String,
    /// Base-table rows.
    pub rows: usize,
    /// Best ungoverned wall time (µs).
    pub ungoverned_us: f64,
    /// Best governed wall time (µs).
    pub governed_us: f64,
    /// `(governed − ungoverned) / ungoverned`, in percent (may be
    /// slightly negative: both sides carry run-to-run noise).
    pub overhead_pct: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Worker threads used throughout.
    pub threads: usize,
    /// Rows per morsel used throughout.
    pub morsel_rows: usize,
    /// Timed trials per side; the best is kept.
    pub trials: usize,
    /// All measured cells.
    pub points: Vec<OverheadPoint>,
}

impl ResilienceReport {
    /// Largest per-cell overhead.
    pub fn max_overhead_pct(&self) -> f64 {
        self.points.iter().map(|p| p.overhead_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean overhead across cells.
    pub fn mean_overhead_pct(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.overhead_pct).sum::<f64>() / self.points.len() as f64
    }

    /// Whether the sweep met [`TARGET_PCT`].
    pub fn within_target(&self) -> bool {
        self.max_overhead_pct() <= TARGET_PCT
    }
}

/// A budget generous enough that nothing ever fires, but every limit
/// is set — the governor arms and every morsel boundary pays the
/// full check (cancel flag, deadline clock, row/memory accounting).
fn generous_budget() -> ResourceBudget {
    ResourceBudget::unlimited()
        .with_deadline(Duration::from_secs(3600))
        .with_memory_bytes(usize::MAX / 4)
        .with_max_rows(usize::MAX / 4)
}

/// Run the overhead sweep at the given row scales.
pub fn run(row_scales: &[usize]) -> ResilienceReport {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let morsel_rows = 64 * 1024;
    let trials = 15;
    let mut points = Vec::new();
    for &rows in row_scales {
        let catalog = morsel::dataset(rows);
        for (label, sql) in morsel::QUERIES {
            let plain = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };
            let governed = ExecOptions {
                budget: generous_budget(),
                cancel: Some(CancelToken::new()),
                ..plain.clone()
            };
            // Same answer on both sides before any timing counts.
            let a = execute_with(&catalog, sql, &plain).expect("ungoverned");
            let b = execute_with(&catalog, sql, &governed).expect("governed");
            assert_eq!(a.table.row_count(), b.table.row_count(), "{label}");
            assert_eq!(a.rows_scanned, b.rows_scanned, "{label}");
            // Warm caches and the allocator before anything is timed.
            let _ = execute_with(&catalog, sql, &plain).expect("warmup");
            let _ = execute_with(&catalog, sql, &governed).expect("warmup");
            // Interleave the trials so drift (thermal, scheduler) hits
            // both sides alike; keep the best of each — on a shared
            // box the minimum is the least-disturbed observation.
            let (mut best_plain, mut best_gov) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..trials {
                let (_, us) = crate::time_us(|| execute_with(&catalog, sql, &plain));
                best_plain = best_plain.min(us);
                let (_, us) = crate::time_us(|| execute_with(&catalog, sql, &governed));
                best_gov = best_gov.min(us);
            }
            points.push(OverheadPoint {
                query: label.to_string(),
                rows,
                ungoverned_us: best_plain,
                governed_us: best_gov,
                overhead_pct: (best_gov - best_plain) / best_plain * 100.0,
            });
        }
    }
    ResilienceReport { threads, morsel_rows, trials, points }
}

/// Print the report as a paper-style table.
pub fn print(r: &ResilienceReport) {
    println!("=== governor overhead (budgeted vs unbudgeted execution) ===");
    println!(
        "threads: {}   morsel size: {} rows   best of {} trials   target: ≤{TARGET_PCT}%",
        r.threads, r.morsel_rows, r.trials
    );
    println!("query              rows   ungoverned     governed   overhead");
    for p in &r.points {
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>9.2}%",
            p.query,
            p.rows,
            crate::fmt_us(p.ungoverned_us),
            crate::fmt_us(p.governed_us),
            p.overhead_pct
        );
    }
    println!(
        "max overhead: {:.2}%   mean: {:.2}%   within ≤{TARGET_PCT}% target: {}",
        r.max_overhead_pct(),
        r.mean_overhead_pct(),
        r.within_target()
    );
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &ResilienceReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"governor_overhead\",\n");
    out.push_str(&format!("  \"threads\": {},\n", r.threads));
    out.push_str(&format!("  \"morsel_rows\": {},\n", r.morsel_rows));
    out.push_str(&format!("  \"trials\": {},\n", r.trials));
    out.push_str(&format!("  \"target_pct\": {TARGET_PCT},\n"));
    out.push_str(&format!("  \"max_overhead_pct\": {:.3},\n", r.max_overhead_pct()));
    out.push_str(&format!("  \"mean_overhead_pct\": {:.3},\n", r.mean_overhead_pct()));
    out.push_str(&format!("  \"within_target\": {},\n", r.within_target()));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"rows\": {}, \"ungoverned_us\": {:.1}, \
             \"governed_us\": {:.1}, \"overhead_pct\": {:.3}}}{}\n",
            p.query,
            p.rows,
            p.ungoverned_us,
            p.governed_us,
            p.overhead_pct,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
