//! Durability overhead: what does crash safety cost per device profile?
//!
//! The same logical workload — store a table, persist a catalog image,
//! append 5% of the rows and replace the table — runs twice: once
//! through the plain [`Pager`] (no durability: a crash mid-write loses
//! arbitrary state) and once through the WAL-backed
//! [`DurableStore`] (every step an atomic commit). Exact device
//! counters then price both runs under each [`DeviceProfile`], giving
//! the WAL's write amplification and simulated-time overhead. Exported
//! machine-readably as `BENCH_durability.json` by the `report` binary
//! (`report -- bench-durability`).

use lawsdb_storage::io::{DeviceProfile, IoStats, SimulatedDevice};
use lawsdb_storage::pager::Pager;
use lawsdb_storage::wal::DurableStore;
use lawsdb_storage::{Table, TableBuilder};

const PAGE_SIZE: usize = 4096;
const WAL_PAGES: usize = 8;

/// The swept device profiles, as `(label, profile)`.
pub fn profiles() -> Vec<(&'static str, DeviceProfile)> {
    vec![
        ("spinning_disk", DeviceProfile::spinning_disk()),
        ("sata_ssd", DeviceProfile::sata_ssd()),
        ("nvme_ssd", DeviceProfile::nvme_ssd()),
    ]
}

/// Simulated cost of one run under one profile.
#[derive(Debug, Clone)]
pub struct ProfileCost {
    /// Profile label.
    pub profile: String,
    /// Baseline (pager, no durability) simulated time, µs.
    pub baseline_us: f64,
    /// Durable (WAL + atomic commit) simulated time, µs.
    pub durable_us: f64,
    /// `durable_us / baseline_us`.
    pub overhead: f64,
}

/// One measured row scale.
#[derive(Debug, Clone)]
pub struct DurabilityPoint {
    /// Base-table rows.
    pub rows: usize,
    /// Commits the durable run performed.
    pub commits: u64,
    /// Device counters of the baseline run.
    pub baseline: IoStats,
    /// Device counters of the durable run.
    pub durable: IoStats,
    /// `durable.pages_written / baseline.pages_written`.
    pub write_amplification: f64,
    /// Per-profile simulated costs.
    pub costs: Vec<ProfileCost>,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Device page size used throughout.
    pub page_size: usize,
    /// WAL region size (pages).
    pub wal_pages: usize,
    /// All measured scales.
    pub points: Vec<DurabilityPoint>,
}

/// Deterministic measurement table (`source`, `nu`, `intensity`).
fn dataset(rows: usize) -> Table {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::with_capacity(rows);
    let mut nu = Vec::with_capacity(rows);
    let mut intensity = Vec::with_capacity(rows);
    for i in 0..rows {
        let s = (i / 40) as i64;
        let f = freqs[i % 4];
        src.push(s);
        nu.push(f);
        intensity.push((1.0 + s as f64 * 0.01) * f.powf(-0.7));
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    b.build().expect("build")
}

fn appended(table: &Table) -> Table {
    let extra = dataset(table.row_count() / 20); // +5% rows
    let mut t = table.clone();
    t.append_rows(extra.columns()).expect("append");
    t
}

/// A stand-in catalog image (~2 KB of checksummed model source).
fn catalog_image() -> Vec<u8> {
    (0..2048u32).map(|i| (i.wrapping_mul(31) >> 3) as u8).collect()
}

fn run_baseline(t1: &Table, t2: &Table) -> IoStats {
    let mut pager = Pager::new(PAGE_SIZE, 0);
    pager.store_table(t1).expect("store");
    pager.write_stream(&catalog_image()).expect("catalog blob");
    pager.replace_table(t2).expect("replace");
    pager.stats()
}

fn run_durable(t1: &Table, t2: &Table) -> (IoStats, u64) {
    let mut store = DurableStore::new(SimulatedDevice::new(PAGE_SIZE), WAL_PAGES);
    store.recover().expect("recover");
    store.reset_stats(); // formatting is a one-time cost, not workload IO
    store.store_table(t1).expect("store");
    store.put_catalog(&catalog_image()).expect("catalog");
    store.replace_table(t2).expect("replace");
    (store.stats(), store.seq())
}

/// Run the sweep at the given row scales.
pub fn run(row_scales: &[usize]) -> DurabilityReport {
    let mut points = Vec::new();
    for &rows in row_scales {
        let t1 = dataset(rows);
        let t2 = appended(&t1);
        let baseline = run_baseline(&t1, &t2);
        let (durable, commits) = run_durable(&t1, &t2);
        let costs = profiles()
            .into_iter()
            .map(|(label, p)| {
                let baseline_us = baseline.simulated_us(&p);
                let durable_us = durable.simulated_us(&p);
                ProfileCost {
                    profile: label.to_string(),
                    baseline_us,
                    durable_us,
                    overhead: durable_us / baseline_us,
                }
            })
            .collect();
        points.push(DurabilityPoint {
            rows,
            commits,
            write_amplification: durable.pages_written as f64
                / baseline.pages_written.max(1) as f64,
            baseline,
            durable,
            costs,
        });
    }
    DurabilityReport { page_size: PAGE_SIZE, wal_pages: WAL_PAGES, points }
}

/// Print the report as a paper-style table.
pub fn print(r: &DurabilityReport) {
    println!("=== durability overhead (WAL + atomic commit vs raw pager) ===");
    println!("page size: {} B   WAL region: {} pages", r.page_size, r.wal_pages);
    println!("rows      commits  pages(base)  pages(wal)  amplif.  profile        overhead");
    for p in &r.points {
        for (i, c) in p.costs.iter().enumerate() {
            if i == 0 {
                print!(
                    "{:<9} {:>7} {:>12} {:>11} {:>8.3}",
                    p.rows, p.commits, p.baseline.pages_written, p.durable.pages_written,
                    p.write_amplification
                );
            } else {
                print!("{:<9} {:>7} {:>12} {:>11} {:>8}", "", "", "", "", "");
            }
            println!("  {:<13} {:>7.3}x", c.profile, c.overhead);
        }
    }
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &DurabilityReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"durability_wal_overhead\",\n");
    out.push_str(&format!("  \"page_size\": {},\n", r.page_size));
    out.push_str(&format!("  \"wal_pages\": {},\n", r.wal_pages));
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"commits\": {}, \"baseline_pages_written\": {}, \
             \"durable_pages_written\": {}, \"write_amplification\": {:.4}, \"profiles\": [",
            p.rows, p.commits, p.baseline.pages_written, p.durable.pages_written,
            p.write_amplification
        ));
        for (j, c) in p.costs.iter().enumerate() {
            out.push_str(&format!(
                "{{\"profile\": \"{}\", \"baseline_us\": {:.1}, \"durable_us\": {:.1}, \
                 \"overhead\": {:.4}}}{}",
                c.profile,
                c.baseline_us,
                c.durable_us,
                c.overhead,
                if j + 1 == p.costs.len() { "" } else { ", " }
            ));
        }
        out.push_str(&format!("]}}{}\n", if i + 1 == r.points.len() { "" } else { "," }));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_sane_overheads() {
        let r = run(&[20_000, 100_000]);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert_eq!(p.commits, 3, "store + catalog + replace");
            assert!(
                p.write_amplification >= 1.0,
                "durability can only add writes: {}",
                p.write_amplification
            );
            for c in &p.costs {
                assert!(c.overhead >= 1.0 && c.overhead.is_finite(), "{c:?}");
            }
        }
        // Amplification shrinks as data grows: the WAL + superblock
        // cost per commit is constant while the data volume is not.
        assert!(
            r.points[1].write_amplification <= r.points[0].write_amplification,
            "{} then {}",
            r.points[0].write_amplification,
            r.points[1].write_amplification
        );
        let json = to_json(&r);
        assert!(json.contains("\"durability_wal_overhead\""));
        assert!(json.contains("\"spinning_disk\""));
    }
}
