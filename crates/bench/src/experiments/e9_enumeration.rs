//! **E9** — parameter-space enumeration and legal combinations
//! (Section 4.2).
//!
//! The paper's second query leaves the source unbound: answering it from
//! the model means enumerating *all* sources at the pinned frequency.
//! We measure that enumeration against the exact scan, and sweep the
//! legal-combination Bloom filter's bits-per-key against its measured
//! false-positive rate (its job: keep enumeration from inventing
//! never-observed tuples).

use crate::Scale;
use lawsdb_approx::legal::{build_legal_filter, combo_hash};
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;

/// One bits-per-key point of the Bloom sweep.
#[derive(Debug, Clone, Copy)]
pub struct BloomPoint {
    /// Bits per key.
    pub bits_per_key: usize,
    /// Filter size in bytes.
    pub bytes: usize,
    /// Measured false-positive rate on held-out absent combos.
    pub fp_rate: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E9Report {
    /// Base rows.
    pub rows: usize,
    /// Tuples the enumeration reconstructed.
    pub tuples_reconstructed: usize,
    /// Result rows both paths agreed on.
    pub result_rows: usize,
    /// Enumeration time (µs).
    pub enumerate_us: f64,
    /// Exact scan time (µs, CPU only — see E5 for the IO side).
    pub exact_us: f64,
    /// Symmetric difference between exact and enumerated source sets
    /// (should be 0 on clean data).
    pub result_disagreement: usize,
    /// Bloom sweep.
    pub bloom: Vec<BloomPoint>,
}

/// Run the enumeration experiment: the paper's query 2.
pub fn run(scale: Scale) -> E9Report {
    let cfg = LofarConfig {
        noise_rel: 0.005,
        anomaly_fraction: 0.0,
        ..LofarConfig::with_sources(scale.lofar_sources())
    };
    let data = LofarDataset::generate(&cfg);
    let rows = data.rows();
    let table = data.table.clone();
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).expect("fresh catalog");
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default().with_initial("alpha", -0.7),
    )
    .expect("capture fits");

    // Threshold chosen to select a minority of sources.
    let sql = "SELECT source, intensity FROM measurements \
               WHERE nu = 0.15 AND intensity > 0.5 ORDER BY source";
    let (exact, exact_us) = crate::time_us(|| db.query(sql).expect("exact"));
    let (approx, enumerate_us) = crate::time_us(|| db.query_approx(sql).expect("model"));

    // Compare the *source sets* (exact has one row per observation,
    // enumeration one per source).
    let exact_sources: std::collections::BTreeSet<i64> = exact
        .table
        .column("source")
        .expect("col")
        .i64_data()
        .expect("i64")
        .iter()
        .copied()
        .collect();
    let approx_sources: std::collections::BTreeSet<i64> = approx
        .table
        .column("source")
        .expect("col")
        .i64_data()
        .expect("i64")
        .iter()
        .copied()
        .collect();
    let result_disagreement = exact_sources.symmetric_difference(&approx_sources).count();

    // Bloom sweep: filter built over observed (source, nu) combos,
    // probed with held-out combos that never occur (shifted sources).
    let src = table.column("source").expect("col").i64_data().expect("i64");
    let nu = table.column("nu").expect("col").f64_data().expect("f64");
    let absent: Vec<u64> = (0..20_000)
        .map(|i| combo_hash(1_000_000 + i as i64, &[0.15]))
        .collect();
    let bloom = [4usize, 6, 8, 10, 12, 16]
        .into_iter()
        .map(|bits_per_key| {
            let bf = build_legal_filter(src, &[nu], bits_per_key);
            BloomPoint { bits_per_key, bytes: bf.byte_size(), fp_rate: bf.measure_fp_rate(&absent) }
        })
        .collect();

    E9Report {
        rows,
        tuples_reconstructed: approx.tuples_reconstructed,
        result_rows: approx.table.row_count(),
        enumerate_us,
        exact_us,
        result_disagreement,
        bloom,
    }
}

/// Print the report.
pub fn print(r: &E9Report) {
    println!("=== E9: parameter-space enumeration + legal combinations ===");
    println!(
        "query 2 (unbound source): enumeration reconstructed {} tuples in {} \
         (exact scan of {} rows: {})",
        r.tuples_reconstructed,
        crate::fmt_us(r.enumerate_us),
        r.rows,
        crate::fmt_us(r.exact_us)
    );
    println!(
        "qualifying sources: {} — disagreement with exact: {}",
        r.result_rows, r.result_disagreement
    );
    println!();
    println!("-- legal-combination Bloom filter sweep --");
    println!("bits/key   filter size   false-positive rate");
    for b in &r.bloom {
        println!(
            "{:>8}  {:>11}  {:>18.4}%",
            b.bits_per_key,
            crate::fmt_bytes(b.bytes),
            b.fp_rate * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumeration_matches_exact_source_set() {
        let r = run(Scale::Small);
        // Borderline sources whose noisy observations straddle the
        // threshold may flip; demand near-perfect agreement.
        assert!(
            r.result_disagreement <= r.result_rows / 20 + 2,
            "disagreement {} of {}",
            r.result_disagreement,
            r.result_rows
        );
        assert!(r.tuples_reconstructed > 0);
        assert!(r.tuples_reconstructed < r.rows, "enumeration is smaller than the data");
        // FP rate falls as bits/key rises.
        assert!(r.bloom.first().unwrap().fp_rate > r.bloom.last().unwrap().fp_rate);
        assert!(r.bloom.last().unwrap().fp_rate < 0.005);
    }
}
