//! **E11** — one model class is not enough (Sections 5–6).
//!
//! "We also suspect that focusing on a single class of models as
//! previous work has [MauveDB, FunctionDB, Zimmer et al.] is unlikely to
//! cover enough ground."
//!
//! We take one LOFAR source's power-law data and reconstruct it with
//! (a) the captured user model (2 parameters), (b) FunctionDB-style
//! piecewise polynomials at several segment counts, (c) a MauveDB-style
//! grid view at several resolutions — reporting RMSE against the clean
//! law and bytes stored. The user model should dominate the
//! accuracy-per-byte frontier because it *is* the data's law.

use lawsdb_expr::parse_formula;
use lawsdb_fit::{fit_nonlinear, DataSet, FitOptions};
use lawsdb_models::grid::GridView;
use lawsdb_models::piecewise::PiecewisePoly;

/// One model-class point.
#[derive(Debug, Clone)]
pub struct ClassPoint {
    /// Label.
    pub name: String,
    /// Stored bytes.
    pub bytes: usize,
    /// RMSE of reconstruction against the clean law on a dense grid.
    pub rmse: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct E11Report {
    /// Observations fitted.
    pub observations: usize,
    /// All class points, user model first.
    pub classes: Vec<ClassPoint>,
}

/// Run the model-class comparison.
pub fn run() -> E11Report {
    // One bright source observed densely across an extended band
    // (continuous ν here — the harder case for gridding).
    let (p, alpha) = (2.0, -0.7);
    let n = 2000usize;
    let nu: Vec<f64> = (0..n).map(|i| 0.05 + 0.30 * i as f64 / (n - 1) as f64).collect();
    let noisy: Vec<f64> = nu
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let clean = p * f.powf(alpha);
            let e = (((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64
                / (1u64 << 24) as f64
                - 0.5)
                * 0.05;
            clean * (1.0 + e)
        })
        .collect();

    // Dense evaluation grid against the clean law.
    let eval_nu: Vec<f64> = (0..500).map(|i| 0.05 + 0.30 * i as f64 / 499.0).collect();
    let clean: Vec<f64> = eval_nu.iter().map(|f| p * f.powf(alpha)).collect();
    let rmse = |pred: &[f64]| -> f64 {
        (pred.iter().zip(&clean).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            / clean.len() as f64)
            .sqrt()
    };

    let mut classes = Vec::new();

    // (a) the captured user model.
    {
        let formula = parse_formula("intensity ~ p * nu ^ alpha").expect("formula");
        let data =
            DataSet::new(vec![("nu", &nu[..]), ("intensity", &noisy[..])]).expect("columns");
        let fit = fit_nonlinear(&formula, &data, &FitOptions::default()).expect("fit");
        let fp = fit.param("p").expect("p");
        let fa = fit.param("alpha").expect("alpha");
        let pred: Vec<f64> = eval_nu.iter().map(|f| fp * f.powf(fa)).collect();
        classes.push(ClassPoint {
            name: "user model (power law)".to_string(),
            bytes: 2 * 8,
            rmse: rmse(&pred),
        });
    }
    // (b) FunctionDB: piecewise polynomials.
    for (segments, degree) in [(4usize, 1usize), (8, 1), (16, 2), (32, 2)] {
        let pw = PiecewisePoly::fit(&nu, &noisy, segments, degree).expect("piecewise fit");
        let pred = pw.eval_batch(&eval_nu);
        classes.push(ClassPoint {
            name: format!("piecewise poly s={segments} d={degree}"),
            bytes: pw.byte_size(),
            rmse: rmse(&pred),
        });
    }
    // (c) MauveDB: grid views.
    for cells in [16usize, 64, 256] {
        let g = GridView::fit_1d(&nu, &noisy, cells).expect("grid fit");
        let pred: Vec<f64> =
            eval_nu.iter().map(|&f| g.query(&[f]).expect("1-d query")).collect();
        classes.push(ClassPoint {
            name: format!("grid view {cells} cells"),
            bytes: g.byte_size(),
            rmse: rmse(&pred),
        });
    }

    E11Report { observations: n, classes }
}

/// Print the frontier.
pub fn print(r: &E11Report) {
    println!("=== E11: user model vs fixed model classes ===");
    println!("{} noisy power-law observations; RMSE vs the clean law", r.observations);
    println!();
    println!("model class                  bytes       RMSE");
    for c in &r.classes {
        println!("{:<26}  {:>8}  {:>9.5}", c.name, crate::fmt_bytes(c.bytes), c.rmse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_model_dominates_accuracy_per_byte() {
        let r = run();
        let user = &r.classes[0];
        assert_eq!(user.bytes, 16);
        for other in &r.classes[1..] {
            // Everything else stores more…
            assert!(other.bytes > user.bytes, "{}", other.name);
            // …and none reconstructs meaningfully better.
            assert!(
                user.rmse < other.rmse * 1.5,
                "user {} vs {} {}",
                user.rmse,
                other.name,
                other.rmse
            );
        }
        // Within a class, spending more bytes helps — the paper's point
        // is that it takes *many* more to approach the true law.
        let pw_small = r.classes.iter().find(|c| c.name.contains("s=4 ")).unwrap();
        let pw_big = r.classes.iter().find(|c| c.name.contains("s=32")).unwrap();
        assert!(pw_big.rmse < pw_small.rmse);
    }
}
