//! Observability overhead: what the tracing/profiling layer costs on
//! the morsel-executor workloads (`BENCH_query.json`'s query set).
//!
//! Two numbers per `(query, rows)` cell, exported as `BENCH_obs.json`:
//!
//! * **no-subscriber** — the cost of instrumentation when nothing is
//!   listening. A disabled `event!` site is one relaxed atomic load
//!   (the fields closure is never invoked), so the per-query cost is
//!   bounded analytically: `disabled_emit_ns × sites / query_ns`,
//!   where `sites` counts every record an instrumented run of the same
//!   query produces (profile tree lines + ring events). Gate: ≤ 2 %.
//! * **fully instrumented** — measured A/B: plain `execute_with` vs
//!   `execute_profiled` under an installed ring subscriber, best of
//!   interleaved trials. Gate: ≤ 8 % (advisory in the report; CI warns).
//!
//! The analytic bound is deliberately pessimistic — it charges every
//! *enabled*-run record as if it were a disabled site, although the
//! plain path skips profile points on a `None` check that is cheaper
//! than the atomic load being priced.

use lawsdb_cluster::{Cluster, ClusterConfig, PartitionScheme};
use lawsdb_obs::trace::tracer;
use lawsdb_obs::{MetricsRegistry, ProfileCollector};
use lawsdb_query::{execute_profiled, execute_with, ExecOptions};
use lawsdb_storage::TableBuilder;
use std::hint::black_box;

use super::morsel;

/// No-subscriber overhead gate, percent (hard gate in CI).
pub const NO_SUBSCRIBER_GATE_PCT: f64 = 2.0;
/// Fully-instrumented overhead gate, percent (advisory).
pub const INSTRUMENTED_GATE_PCT: f64 = 8.0;
/// Fully-instrumented distributed-tracing overhead gate on the healthy
/// scatter-gather p50, percent (hard gate in CI).
pub const CLUSTER_TRACE_GATE_PCT: f64 = 2.0;

/// One measured `(query, rows)` cell.
#[derive(Debug, Clone)]
pub struct ObsPoint {
    /// Query label (see [`morsel::QUERIES`]).
    pub query: String,
    /// Base-table rows.
    pub rows: usize,
    /// Best plain wall time (µs) — no subscriber, no profile.
    pub plain_us: f64,
    /// Best wall time (µs) with ring subscriber + profile collection.
    pub instrumented_us: f64,
    /// `(instrumented − plain) / plain`, percent.
    pub instrumented_pct: f64,
    /// Records an instrumented run produces (profile lines + events).
    pub sites: usize,
    /// Analytic no-subscriber bound: `disabled_emit_ns × sites`
    /// relative to the plain query time, percent.
    pub no_subscriber_pct: f64,
}

/// One cluster-path cell: healthy scatter-gather over hash shards,
/// untraced vs carrying a live profile context through every shard
/// phase (fetch / execute / gather / merge spans plus morsel leaves)
/// and building the finished trace tree.
#[derive(Debug, Clone)]
pub struct ClusterTracePoint {
    /// Shard count (2 replicas each, all healthy).
    pub shards: usize,
    /// Base-table rows.
    pub rows: usize,
    /// Untraced query latency p50, µs.
    pub plain_p50_us: f64,
    /// Fully-traced query latency p50, µs.
    pub traced_p50_us: f64,
    /// `(traced − plain) / plain`, percent.
    pub trace_pct: f64,
}

/// Experiment report.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Worker threads used throughout.
    pub threads: usize,
    /// Rows per morsel used throughout.
    pub morsel_rows: usize,
    /// Timed trials per side; the best is kept.
    pub trials: usize,
    /// Measured cost of one disabled `event!` site, nanoseconds.
    pub disabled_emit_ns: f64,
    /// All measured cells.
    pub points: Vec<ObsPoint>,
    /// Cluster-path distributed-tracing cells.
    pub cluster_points: Vec<ClusterTracePoint>,
}

impl ObsReport {
    /// Largest analytic no-subscriber bound across cells.
    pub fn max_no_subscriber_pct(&self) -> f64 {
        self.points.iter().map(|p| p.no_subscriber_pct).fold(0.0, f64::max)
    }

    /// Largest measured fully-instrumented overhead across cells.
    pub fn max_instrumented_pct(&self) -> f64 {
        self.points.iter().map(|p| p.instrumented_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether the hard gate held.
    pub fn within_no_subscriber_gate(&self) -> bool {
        self.max_no_subscriber_pct() <= NO_SUBSCRIBER_GATE_PCT
    }

    /// Whether the advisory gate held.
    pub fn within_instrumented_gate(&self) -> bool {
        self.max_instrumented_pct() <= INSTRUMENTED_GATE_PCT
    }

    /// Largest measured cluster-path tracing overhead across cells.
    pub fn max_cluster_trace_pct(&self) -> f64 {
        self.cluster_points.iter().map(|p| p.trace_pct).fold(f64::NEG_INFINITY, f64::max)
    }

    /// Whether the cluster-path tracing gate held.
    pub fn within_cluster_trace_gate(&self) -> bool {
        self.max_cluster_trace_pct() <= CLUSTER_TRACE_GATE_PCT
    }
}

/// Time `n` disabled `event!` emissions and return ns per site. The
/// tracer must be uninstalled; each iteration is the production
/// fast path — one relaxed load, fields never built.
fn measure_disabled_emit_ns(n: usize) -> f64 {
    assert!(!tracer().is_enabled(), "disabled-cost probe needs no subscriber");
    let (_, us) = crate::time_us(|| {
        for i in 0..n {
            lawsdb_obs::event!("bench.obs.probe", i = black_box(i as u64));
        }
    });
    us * 1000.0 / n as f64
}

/// The cluster-path swept query: grouped aggregation over the shard
/// key — the scatter-gather fast path (same shape as
/// `BENCH_cluster.json`'s sweep).
const CLUSTER_SQL: &str =
    "SELECT g, COUNT(*) AS n, SUM(v) AS s, AVG(v) AS m FROM points GROUP BY g ORDER BY g";

/// Measure distributed-tracing overhead on one healthy cluster:
/// alternate untraced and fully-traced queries against the *same*
/// cluster so environmental drift hits both sides alike (the
/// interleaving discipline `BENCH_cluster.json`'s failover gate uses),
/// and compare p50s. The traced side pays the whole bill: a fresh
/// collector, a live context threaded through every shard phase, and
/// the final tree build.
fn cluster_trace_point(rows: usize, shards: usize, iters: usize) -> ClusterTracePoint {
    let mut state = 0x51ed_270b_a35e_c1f3u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut b = TableBuilder::new("points");
    b.add_i64("g", (0..rows).map(|i| (i % 16) as i64).collect());
    b.add_f64("v", (0..rows).map(|_| next() * 100.0 - 50.0).collect());
    let table = b.build().expect("cluster bench table builds");
    let registry = MetricsRegistry::new();
    let cluster = Cluster::new(
        &table,
        ClusterConfig {
            shards,
            replicas: 2,
            scheme: PartitionScheme::Hash { key: "g".to_string() },
            ..ClusterConfig::default()
        },
        &registry,
    )
    .expect("cluster build");
    let plain_opts = ExecOptions { threads: 1, ..ExecOptions::default() };
    let traced_query = || {
        let collector = ProfileCollector::new();
        let opts = ExecOptions {
            threads: 1,
            profile: Some(collector.context()),
            ..ExecOptions::default()
        };
        cluster.query(CLUSTER_SQL, &opts).expect("traced query");
        black_box(collector.build("query"));
    };
    for _ in 0..3 {
        cluster.query(CLUSTER_SQL, &plain_opts).expect("warm-up query");
        traced_query();
    }
    let mut lat_plain = Vec::with_capacity(iters);
    let mut lat_traced = Vec::with_capacity(iters);
    for _ in 0..iters {
        let (_, us) = crate::time_us(|| cluster.query(CLUSTER_SQL, &plain_opts));
        lat_plain.push(us);
        let (_, us) = crate::time_us(traced_query);
        lat_traced.push(us);
    }
    lat_plain.sort_by(f64::total_cmp);
    lat_traced.sort_by(f64::total_cmp);
    let plain_p50_us = lat_plain[iters / 2];
    let traced_p50_us = lat_traced[iters / 2];
    ClusterTracePoint {
        shards,
        rows,
        plain_p50_us,
        traced_p50_us,
        trace_pct: (traced_p50_us - plain_p50_us) / plain_p50_us * 100.0,
    }
}

/// Run the overhead sweep at the given row scales.
pub fn run(row_scales: &[usize]) -> ObsReport {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let morsel_rows = 64 * 1024;
    let trials = 9;
    let disabled_emit_ns = measure_disabled_emit_ns(4_000_000);
    let mut points = Vec::new();
    for &rows in row_scales {
        let catalog = morsel::dataset(rows);
        for (label, sql) in morsel::QUERIES {
            let opts = ExecOptions { threads, morsel_rows, ..ExecOptions::default() };

            // Count what a fully instrumented run records: every
            // profile tree line plus every event the subscriber saw.
            let sink = tracer().install_ring(4096);
            let before = sink.cursor();
            let probe = execute_profiled(&catalog, sql, &opts).expect("instrumented");
            let events = (sink.cursor() - before) as usize;
            let sites = probe
                .profile
                .as_ref()
                .map(|p| p.render().lines().count())
                .unwrap_or(0)
                + events;
            tracer().uninstall();

            // Same answer on both sides before any timing counts.
            let a = execute_with(&catalog, sql, &opts).expect("plain");
            assert_eq!(a.table.row_count(), probe.table.row_count(), "{label}");
            assert_eq!(a.rows_scanned, probe.rows_scanned, "{label}");

            // Interleave the trials so drift (thermal, scheduler) hits
            // both sides alike; keep the best of each.
            let _ = tracer().install_ring(4096);
            let (mut best_plain, mut best_instr) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..trials {
                tracer().uninstall();
                let (_, us) = crate::time_us(|| execute_with(&catalog, sql, &opts));
                best_plain = best_plain.min(us);
                let _ = tracer().install_ring(4096);
                let (_, us) = crate::time_us(|| execute_profiled(&catalog, sql, &opts));
                best_instr = best_instr.min(us);
            }
            tracer().uninstall();

            points.push(ObsPoint {
                query: label.to_string(),
                rows,
                plain_us: best_plain,
                instrumented_us: best_instr,
                instrumented_pct: (best_instr - best_plain) / best_plain * 100.0,
                sites,
                no_subscriber_pct: disabled_emit_ns * sites as f64
                    / (best_plain * 1000.0)
                    * 100.0,
            });
        }
    }
    // Cluster path: the largest swept scale, both shard counts the
    // failover sweep uses.
    let cluster_rows = row_scales.iter().copied().max().unwrap_or(100_000);
    let cluster_points =
        [2usize, 4].iter().map(|&s| cluster_trace_point(cluster_rows, s, 31)).collect();
    ObsReport { threads, morsel_rows, trials, disabled_emit_ns, points, cluster_points }
}

/// Print the report as a paper-style table.
pub fn print(r: &ObsReport) {
    println!("=== observability overhead (tracing + per-query profiles) ===");
    println!(
        "threads: {}   morsel size: {} rows   best of {} trials   \
         disabled event!: {:.2} ns/site",
        r.threads, r.morsel_rows, r.trials, r.disabled_emit_ns
    );
    println!("query              rows        plain instrumented   overhead  sites  no-sub");
    for p in &r.points {
        println!(
            "{:<12} {:>10} {:>12} {:>12} {:>9.2}% {:>6} {:>6.3}%",
            p.query,
            p.rows,
            crate::fmt_us(p.plain_us),
            crate::fmt_us(p.instrumented_us),
            p.instrumented_pct,
            p.sites,
            p.no_subscriber_pct
        );
    }
    println!(
        "no-subscriber bound: {:.3}% (gate ≤{NO_SUBSCRIBER_GATE_PCT}%: {})   \
         instrumented: {:.2}% (gate ≤{INSTRUMENTED_GATE_PCT}%: {})",
        r.max_no_subscriber_pct(),
        r.within_no_subscriber_gate(),
        r.max_instrumented_pct(),
        r.within_instrumented_gate()
    );
    println!("\ncluster path (healthy scatter-gather, interleaved plain vs traced):");
    println!("shards        rows    plain p50   traced p50   overhead");
    for p in &r.cluster_points {
        println!(
            "{:<6} {:>11} {:>12} {:>12} {:>9.2}%",
            p.shards,
            p.rows,
            crate::fmt_us(p.plain_p50_us),
            crate::fmt_us(p.traced_p50_us),
            p.trace_pct
        );
    }
    println!(
        "cluster tracing overhead: {:.2}% (gate ≤{CLUSTER_TRACE_GATE_PCT}%: {})",
        r.max_cluster_trace_pct(),
        r.within_cluster_trace_gate()
    );
}

/// Render the report as JSON (hand-rolled: the workspace carries no
/// serialization dependency).
pub fn to_json(r: &ObsReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"observability_overhead\",\n");
    out.push_str(&format!("  \"threads\": {},\n", r.threads));
    out.push_str(&format!("  \"morsel_rows\": {},\n", r.morsel_rows));
    out.push_str(&format!("  \"trials\": {},\n", r.trials));
    out.push_str(&format!("  \"disabled_emit_ns\": {:.3},\n", r.disabled_emit_ns));
    out.push_str(&format!("  \"no_subscriber_gate_pct\": {NO_SUBSCRIBER_GATE_PCT},\n"));
    out.push_str(&format!("  \"instrumented_gate_pct\": {INSTRUMENTED_GATE_PCT},\n"));
    out.push_str(&format!("  \"max_no_subscriber_pct\": {:.4},\n", r.max_no_subscriber_pct()));
    out.push_str(&format!("  \"max_instrumented_pct\": {:.3},\n", r.max_instrumented_pct()));
    out.push_str(&format!(
        "  \"within_no_subscriber_gate\": {},\n",
        r.within_no_subscriber_gate()
    ));
    out.push_str(&format!(
        "  \"within_instrumented_gate\": {},\n",
        r.within_instrumented_gate()
    ));
    out.push_str(&format!("  \"cluster_trace_gate_pct\": {CLUSTER_TRACE_GATE_PCT},\n"));
    out.push_str(&format!(
        "  \"max_cluster_trace_pct\": {:.3},\n",
        r.max_cluster_trace_pct()
    ));
    out.push_str(&format!(
        "  \"within_cluster_trace_gate\": {},\n",
        r.within_cluster_trace_gate()
    ));
    out.push_str("  \"cluster_results\": [\n");
    for (i, p) in r.cluster_points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"rows\": {}, \"plain_p50_us\": {:.1}, \
             \"traced_p50_us\": {:.1}, \"trace_pct\": {:.3}}}{}\n",
            p.shards,
            p.rows,
            p.plain_p50_us,
            p.traced_p50_us,
            p.trace_pct,
            if i + 1 == r.cluster_points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"results\": [\n");
    for (i, p) in r.points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"query\": \"{}\", \"rows\": {}, \"plain_us\": {:.1}, \
             \"instrumented_us\": {:.1}, \"instrumented_pct\": {:.3}, \
             \"sites\": {}, \"no_subscriber_pct\": {:.4}}}{}\n",
            p.query,
            p.rows,
            p.plain_us,
            p.instrumented_us,
            p.instrumented_pct,
            p.sites,
            p.no_subscriber_pct,
            if i + 1 == r.points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
