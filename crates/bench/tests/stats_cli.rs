//! Pins the `lawsdb-stats` CLI output shape: the demo subcommands are
//! the repo's operator-facing documentation, so their structure (not
//! the wall-clock numbers) must stay stable. The `slowlog` subcommand
//! runs under a `MockClock`, so its output is pinned byte-identical
//! across invocations.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_lawsdb-stats"))
        .args(args)
        .output()
        .expect("lawsdb-stats runs")
}

fn stdout(args: &[&str]) -> String {
    let out = run(args);
    assert!(out.status.success(), "lawsdb-stats {args:?} failed: {out:?}");
    String::from_utf8(out.stdout).expect("utf-8 output")
}

#[test]
fn cluster_walks_the_failure_ladder_and_prints_health() {
    let text = stdout(&["cluster"]);
    for needle in [
        "-- healthy: 4 rows, approximate=false",
        "-- replica 0.0 dead (failover): 4 rows, approximate=false",
        "-- shard 1 fully dead (model fallback): 4 rows, approximate=true",
        "degraded: shard_model_fallback",
        "per-shard health:",
        "shard 1: 100 rows, 0/2 replicas up  [r0=down r1=down]",
        "lawsdb_cluster_failovers",
        "lawsdb_cluster_model_fallbacks 2",
    ] {
        assert!(text.contains(needle), "cluster output missing {needle:?}:\n{text}");
    }
}

#[test]
fn plan_prints_the_cost_annotated_tree() {
    let text = stdout(&["plan"]);
    for needle in ["Project [y AS y]", "est_rows=", "est_cost=", "Filter", "Scan t [x, y]"] {
        assert!(text.contains(needle), "plan output missing {needle:?}:\n{text}");
    }
}

#[test]
fn slowlog_prints_deterministic_flight_records_with_an_in_trace_failover() {
    let text = stdout(&["slowlog"]);
    for needle in [
        "slow queries (worst first):",
        // Worst first: the faulted cluster query outranks the exact one.
        "#1 query 1  mode=cluster",
        "#2 query 2  mode=exact",
        // Layer attribution with a canonical dominant layer.
        "layers: queue=",
        "dominant=execute",
        // The trace tree carries every layer plus both fault events.
        "server.admission",
        "server.decode",
        "server.encode",
        "cluster.fetch",
        "cluster.execute",
        "cluster.gather",
        "cluster.merge",
        "cluster.attempt.fail replica=0 error=replica killed",
        "cluster.failover replica=1",
        "cluster.model_fallback reason=shard_model_fallback",
        "morsel #",
    ] {
        assert!(text.contains(needle), "slowlog output missing {needle:?}:\n{text}");
    }
    // MockClock-timed: the whole transcript is reproducible bytes.
    assert_eq!(text, stdout(&["slowlog"]), "slowlog output must be byte-identical");
}

#[test]
fn unknown_subcommands_exit_with_usage() {
    let out = run(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).expect("utf-8 stderr");
    assert!(err.contains("usage: lawsdb-stats"), "missing usage text:\n{err}");
    assert!(err.contains("slowlog"), "usage must list the slowlog subcommand:\n{err}");
}
