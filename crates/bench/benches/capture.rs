//! Criterion benches for model capture (E1/Table 1, E2/Figure 1):
//! grouped LOFAR fitting, the linear analytic path, and the optimizer /
//! Jacobian ablations from DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_data::timeseries::{TimeSeriesConfig, TimeSeriesDataset};
use lawsdb_expr::parse_formula;
use lawsdb_fit::{
    fit_grouped, fit_nonlinear, Algorithm, DataSet, FitOptions, JacobianMode, LinearSolver,
};

fn lofar_columns(sources: usize) -> (Vec<i64>, Vec<f64>, Vec<f64>) {
    let cfg = LofarConfig { anomaly_fraction: 0.0, ..LofarConfig::with_sources(sources) };
    let d = LofarDataset::generate(&cfg);
    (
        d.table.column("source").unwrap().i64_data().unwrap().to_vec(),
        d.table.column("nu").unwrap().f64_data().unwrap().to_vec(),
        d.table.column("intensity").unwrap().f64_data().unwrap().to_vec(),
    )
}

/// E1: grouped power-law capture across source counts and thread counts.
fn bench_table1_lofar_capture(c: &mut Criterion) {
    let formula = parse_formula("intensity ~ p * nu ^ alpha").unwrap();
    let mut g = c.benchmark_group("table1_lofar_capture");
    g.sample_size(10);
    for sources in [100usize, 400] {
        let (keys, nu, intensity) = lofar_columns(sources);
        let data =
            DataSet::new(vec![("nu", &nu[..]), ("intensity", &intensity[..])]).unwrap();
        for threads in [1usize, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("sources_{sources}"), format!("threads_{threads}")),
                &threads,
                |b, &threads| {
                    b.iter(|| {
                        fit_grouped(&formula, &keys, &data, &FitOptions::default().with_initial("alpha", -0.7), threads)
                            .unwrap()
                            .success_count()
                    })
                },
            );
        }
    }
    g.finish();
}

/// E2 ablations: Gauss-Newton vs Levenberg-Marquardt, symbolic vs
/// finite-difference Jacobians, on the Figure 1 single-source fit.
fn bench_figure1_ablations(c: &mut Criterion) {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let n = 200;
    let nu: Vec<f64> = (0..n).map(|i| freqs[i % 4]).collect();
    let intensity: Vec<f64> = nu
        .iter()
        .enumerate()
        .map(|(i, f)| {
            2.35 * (f / 0.15).powf(-0.69) * (1.0 + ((i * 37) % 100) as f64 / 1000.0 - 0.05)
        })
        .collect();
    let formula = parse_formula("intensity ~ p * nu ^ alpha").unwrap();
    let data = DataSet::new(vec![("nu", &nu[..]), ("intensity", &intensity[..])]).unwrap();

    let mut g = c.benchmark_group("figure1_fit_ablation");
    for (label, algorithm, jacobian) in [
        ("lm_symbolic", Algorithm::LevenbergMarquardt, JacobianMode::Symbolic),
        ("lm_finite_diff", Algorithm::LevenbergMarquardt, JacobianMode::FiniteDifference),
        ("gn_symbolic", Algorithm::GaussNewton, JacobianMode::Symbolic),
    ] {
        let opts = FitOptions { algorithm, jacobian, ..Default::default() };
        g.bench_function(label, |b| {
            b.iter(|| fit_nonlinear(&formula, &data, &opts).unwrap().iterations)
        });
    }
    g.finish();
}

/// E7 ablation: QR vs normal equations on grouped linear fits.
fn bench_linear_solver_ablation(c: &mut Criterion) {
    let cfg = TimeSeriesConfig { sensors: 50, ticks: 200, ..Default::default() };
    let d = TimeSeriesDataset::generate(&cfg);
    let keys = d.table.column("sensor").unwrap().i64_data().unwrap().to_vec();
    let ts: Vec<f64> =
        d.table.column("ts").unwrap().i64_data().unwrap().iter().map(|&t| t as f64).collect();
    let value = d.table.column("value").unwrap().f64_data().unwrap().to_vec();
    let formula = parse_formula("value ~ a + b * ts").unwrap();
    let data = DataSet::new(vec![("ts", &ts[..]), ("value", &value[..])]).unwrap();

    let mut g = c.benchmark_group("linear_solver_ablation");
    for (label, solver) in
        [("qr", LinearSolver::Qr), ("normal_equations", LinearSolver::NormalEquations)]
    {
        let opts = FitOptions { linear_solver: solver, ..Default::default() };
        g.bench_function(label, |b| {
            b.iter(|| fit_grouped(&formula, &keys, &data, &opts, 1).unwrap().success_count())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table1_lofar_capture,
    bench_figure1_ablations,
    bench_linear_solver_ablation
);
criterion_main!(benches);
