//! Criterion benches for the compression codecs (E4) and the
//! model-change recompression path (E10).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lawsdb_core::storage_mgr::{compress_column, decompress_column, CompressionMode};
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_fit::FitOptions;
use lawsdb_storage::compress::{float, generic_compress, generic_decompress, residual};

fn setup() -> (LawsDb, std::sync::Arc<lawsdb_models::CapturedModel>) {
    let cfg = LofarConfig {
        anomaly_fraction: 0.0,
        noise_rel: 0.01,
        ..LofarConfig::with_sources(300)
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).unwrap();
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            // The paper: choosing starting parameters that converge is
            // the model author's job; a radio astronomer starts the
            // spectral index near the thermal value.
            &FitOptions::default().with_initial("alpha", -0.7),
        )
        .unwrap();
    (db, model)
}

/// E4: codec encode/decode throughput on the LOFAR intensity column.
fn bench_e4_codecs(c: &mut Criterion) {
    let (db, model) = setup();
    let table = db.table("measurements").unwrap();
    let values = table.column("intensity").unwrap().f64_data().unwrap().to_vec();
    let raw_le: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let predicted = lawsdb_models::bridge::predict_table(&model, &table).unwrap();

    let mut g = c.benchmark_group("e4_semantic_compression");
    g.throughput(Throughput::Bytes(raw_le.len() as u64));
    g.sample_size(10);
    g.bench_function("lzss_huffman_encode", |b| b.iter(|| generic_compress(&raw_le).len()));
    let lz = generic_compress(&raw_le);
    g.bench_function("lzss_huffman_decode", |b| {
        b.iter(|| generic_decompress(&lz).unwrap().len())
    });
    g.bench_function("float_xor_encode", |b| b.iter(|| float::encode(&values).len()));
    g.bench_function("residual_lossless_encode", |b| {
        b.iter(|| residual::encode_lossless(&values, &predicted).unwrap().len())
    });
    g.bench_function("residual_quantized_encode", |b| {
        b.iter(|| residual::encode_quantized(&values, &predicted, 1e-4).unwrap().len())
    });
    let enc = residual::encode_lossless(&values, &predicted).unwrap();
    g.bench_function("residual_lossless_decode", |b| {
        b.iter(|| residual::decode_lossless(&enc, &predicted).unwrap().len())
    });
    g.finish();
}

/// E10: the whole semantic (re)compression of a column through the
/// storage manager (predict + encode).
fn bench_e10_recompression(c: &mut Criterion) {
    let (db, model) = setup();
    let table = db.table("measurements").unwrap();
    let mut g = c.benchmark_group("e10_model_change");
    g.sample_size(10);
    g.bench_function("compress_column_lossless", |b| {
        b.iter(|| {
            compress_column(&model, &table, CompressionMode::Lossless)
                .unwrap()
                .compressed_bytes()
        })
    });
    let compressed = compress_column(&model, &table, CompressionMode::Lossless).unwrap();
    g.bench_function("decompress_column_lossless", |b| {
        b.iter(|| decompress_column(&compressed, &model, &table).unwrap().len())
    });
    g.finish();
}

criterion_group!(benches, bench_e4_codecs, bench_e10_recompression);
criterion_main!(benches);
