//! Criterion benches for query answering (E3, E5, E6, E7, E9): the
//! exact scan path vs the model-backed zero-IO paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lawsdb_bench::experiments::morsel;
use lawsdb_core::LawsDb;
use lawsdb_data::lofar::{LofarConfig, LofarDataset};
use lawsdb_data::timeseries::{TimeSeriesConfig, TimeSeriesDataset};
use lawsdb_fit::FitOptions;
use lawsdb_query::{execute_with, ExecOptions};
use std::time::Duration;

fn lofar_db(sources: usize) -> LawsDb {
    let cfg = LofarConfig {
        anomaly_fraction: 0.0,
        noise_rel: 0.05,
        ..LofarConfig::with_sources(sources)
    };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).unwrap();
    db.capture_model(
        "measurements",
        "intensity ~ p * nu ^ alpha",
        Some("source"),
        &FitOptions::default().with_initial("alpha", -0.7),
    )
    .unwrap();
    db
}

/// E5: point lookup and band aggregate — exact vs model.
fn bench_e5_zero_io(c: &mut Criterion) {
    let db = lofar_db(500);
    let point = "SELECT intensity FROM measurements WHERE source = 42 AND nu = 0.15";
    let agg = "SELECT AVG(intensity) AS v FROM measurements WHERE nu = 0.15";

    let mut g = c.benchmark_group("e5_zero_io");
    g.bench_function("point_exact_scan", |b| b.iter(|| db.query(point).unwrap().rows_scanned));
    g.bench_function("point_model_lookup", |b| {
        b.iter(|| db.query_approx(point).unwrap().rows_scanned)
    });
    g.bench_function("agg_exact_scan", |b| b.iter(|| db.query(agg).unwrap().rows_scanned));
    g.bench_function("agg_model_enumeration", |b| {
        b.iter(|| db.query_approx(agg).unwrap().tuples_reconstructed)
    });
    g.finish();
}

/// E9: the paper's query 2 — full parameter-space enumeration.
fn bench_e9_enumeration(c: &mut Criterion) {
    let db = lofar_db(1000);
    let sql = "SELECT source, intensity FROM measurements \
               WHERE nu = 0.15 AND intensity > 0.5";
    let mut g = c.benchmark_group("e9_enumeration");
    g.bench_function("exact_scan", |b| b.iter(|| db.query(sql).unwrap().table.row_count()));
    g.bench_function("model_enumeration", |b| {
        b.iter(|| db.query_approx(sql).unwrap().tuples_reconstructed)
    });
    g.finish();
}

/// E7: analytic aggregate vs exact scan on the time-series workload.
fn bench_e7_analytic(c: &mut Criterion) {
    let cfg = TimeSeriesConfig { sensors: 50, ticks: 500, ..Default::default() };
    let data = TimeSeriesDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).unwrap();
    db.capture_model("readings", "value ~ a + b * ts", Some("sensor"), &FitOptions::default())
        .unwrap();
    let sql = "SELECT MAX(value) AS v FROM readings";
    let mut g = c.benchmark_group("e7_analytic_agg");
    g.bench_function("exact_scan", |b| b.iter(|| db.query(sql).unwrap().rows_scanned));
    g.bench_function("analytic_closed_form", |b| {
        b.iter(|| db.query_approx(sql).unwrap().tuples_reconstructed)
    });
    g.finish();
}

/// E3: the intercepted fit itself (the in-database side of Figure 2).
fn bench_figure2_interception(c: &mut Criterion) {
    let cfg = LofarConfig {
        anomaly_fraction: 0.0,
        noise_rel: 0.05,
        ..LofarConfig::with_sources(200)
    };
    let data = LofarDataset::generate(&cfg);
    let mut g = c.benchmark_group("figure2_interception");
    g.sample_size(10);
    g.bench_function("session_fit_grouped", |b| {
        b.iter(|| {
            let mut db = LawsDb::new();
            db.quality.min_r2 = 0.0;
            db.register_table(data.table.clone()).unwrap();
            let mut session = db.session();
            let frame = session.frame("measurements").unwrap();
            session
                .fit(
                    &frame,
                    "intensity ~ p * nu ^ alpha",
                    lawsdb_core::FitOptions::grouped_by("source"),
                )
                .unwrap()
                .parameter_vectors
        })
    });
    g.finish();
}

/// Morsel-driven executor throughput: each pipeline shape at
/// 100k / 1M / 4M rows × 1 / 2 / N worker threads (N = the machine's
/// available parallelism). `BENCH_query.json` records the same sweep
/// via `report -- bench-query`.
fn bench_morsel_throughput(c: &mut Criterion) {
    let machine = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    for rows in [100_000usize, 1_000_000, 4_000_000] {
        let catalog = morsel::dataset(rows);
        let mut g = c.benchmark_group(format!("morsel_throughput_{rows}"));
        g.throughput(Throughput::Elements(rows as u64));
        g.sample_size(10);
        g.measurement_time(Duration::from_millis(500));
        for (label, sql) in morsel::QUERIES {
            for threads in morsel::thread_counts(machine) {
                let opts = ExecOptions { threads, ..ExecOptions::default() };
                g.bench_function(format!("{label}/t{threads}"), |b| {
                    b.iter(|| execute_with(&catalog, sql, &opts).unwrap().rows_scanned)
                });
            }
        }
        g.finish();
    }
}

criterion_group!(
    benches,
    bench_morsel_throughput,
    bench_e5_zero_io,
    bench_e9_enumeration,
    bench_e7_analytic,
    bench_figure2_interception
);
criterion_main!(benches);
