//! Criterion micro-benches for the substrates: expression evaluation
//! (tree-walk vs compiled bytecode), dense linear algebra, the SQL
//! front-end, Bloom-filter probes, and the anomaly ranking and model-
//! class baselines of E8/E11.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lawsdb_expr::{parse_expr, Bindings, CompiledExpr};
use lawsdb_linalg::{Cholesky, Matrix, Qr};
use lawsdb_models::grid::GridView;
use lawsdb_models::piecewise::PiecewisePoly;

/// Expression evaluation: per-row tree walk vs one compiled batch —
/// the zero-IO scan's CPU kernel.
fn bench_expr_eval(c: &mut Criterion) {
    let e = parse_expr("p * nu ^ alpha").unwrap();
    let compiled = CompiledExpr::compile(&e, &["nu"]).unwrap();
    let n = 100_000usize;
    let nus: Vec<f64> = (0..n).map(|i| 0.12 + (i % 4) as f64 * 0.02).collect();

    let mut g = c.benchmark_group("expr_eval_100k");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("tree_walk_per_row", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            let mut bind = Bindings::new();
            bind.set("p", 2.0);
            bind.set("alpha", -0.7);
            for &nu in &nus {
                bind.set("nu", nu);
                acc += e.eval(&bind).unwrap();
            }
            acc
        })
    });
    g.bench_function("compiled_batch", |b| {
        b.iter(|| {
            compiled
                .eval_batch(&[&nus], &[-0.7, 2.0])
                .unwrap()
                .iter()
                .sum::<f64>()
        })
    });
    g.finish();
}

/// Dense solves at fitting-relevant shapes.
fn bench_linalg(c: &mut Criterion) {
    let n_obs = 200;
    let p = 4;
    let x = Matrix::from_fn(n_obs, p, |r, cidx| ((r * 31 + cidx * 7) % 97) as f64 / 97.0 + 0.01);
    let y: Vec<f64> = (0..n_obs).map(|i| (i % 13) as f64).collect();

    let mut g = c.benchmark_group("linalg_least_squares_200x4");
    g.bench_function("qr", |b| {
        b.iter(|| Qr::new(&x).unwrap().solve_least_squares(&y).unwrap()[0])
    });
    g.bench_function("normal_equations_cholesky", |b| {
        b.iter(|| {
            let gram = x.gram();
            let rhs = x.tr_matvec(&y).unwrap();
            Cholesky::new(&gram).unwrap().solve(&rhs).unwrap()[0]
        })
    });
    g.finish();
}

/// SQL front-end: parse + plan + optimize.
fn bench_sql_frontend(c: &mut Criterion) {
    let sql = "SELECT source, AVG(intensity) AS mean_i FROM measurements \
               WHERE nu = 0.15 AND intensity > 3.0 GROUP BY source \
               ORDER BY mean_i DESC LIMIT 10";
    c.bench_function("sql_parse_plan_optimize", |b| {
        b.iter(|| {
            let stmt = lawsdb_query::parse_select(sql).unwrap();
            let plan = lawsdb_query::LogicalPlan::from_statement(&stmt).unwrap();
            lawsdb_query::optimize::optimize(&plan).referenced_columns().len()
        })
    });
}

/// E9 kernel: Bloom filter probes.
fn bench_bloom(c: &mut Criterion) {
    use lawsdb_approx::legal::{combo_hash, BloomFilter};
    let mut bf = BloomFilter::with_bits_per_key(100_000, 10);
    for i in 0..100_000u64 {
        bf.insert(combo_hash(i as i64, &[0.15]));
    }
    let mut g = c.benchmark_group("bloom_filter");
    g.throughput(Throughput::Elements(1));
    g.bench_function("probe_hit", |b| {
        b.iter(|| bf.contains(combo_hash(77, &[0.15])))
    });
    g.bench_function("probe_miss", |b| {
        b.iter(|| bf.contains(combo_hash(999_999_999, &[0.15])))
    });
    g.finish();
}

/// E11 kernels: reconstruction through the three model classes.
fn bench_model_classes(c: &mut Criterion) {
    let n = 2000;
    let xs: Vec<f64> = (0..n).map(|i| 0.05 + 0.30 * i as f64 / (n - 1) as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(-0.7)).collect();
    let pw = PiecewisePoly::fit(&xs, &ys, 16, 2).unwrap();
    let grid = GridView::fit_1d(&xs, &ys, 64).unwrap();
    let queries: Vec<f64> = (0..1000).map(|i| 0.06 + 0.28 * i as f64 / 999.0).collect();

    let mut g = c.benchmark_group("e11_model_classes_1k_queries");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("user_model_power_law", |b| {
        b.iter(|| queries.iter().map(|&x| 2.0 * x.powf(-0.7)).sum::<f64>())
    });
    g.bench_function("piecewise_poly", |b| {
        b.iter(|| queries.iter().map(|&x| pw.eval(x)).sum::<f64>())
    });
    g.bench_function("grid_view", |b| {
        b.iter(|| queries.iter().map(|&x| grid.query(&[x]).unwrap()).sum::<f64>())
    });
    g.finish();
}

/// E8 kernel: ranking a large grouped model.
fn bench_anomaly_ranking(c: &mut Criterion) {
    use lawsdb_core::LawsDb;
    use lawsdb_data::lofar::{LofarConfig, LofarDataset};
    let cfg = LofarConfig { anomaly_fraction: 0.03, ..LofarConfig::with_sources(500) };
    let data = LofarDataset::generate(&cfg);
    let mut db = LawsDb::new();
    db.quality.min_r2 = 0.0;
    db.register_table(data.table).unwrap();
    let model = db
        .capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &lawsdb_fit::FitOptions::default(),
        )
        .unwrap();
    c.bench_function("e8_rank_500_sources", |b| {
        b.iter(|| {
            lawsdb_approx::anomaly::rank_anomalies(
                &model,
                lawsdb_approx::anomaly::MisfitScore::OneMinusR2,
            )
            .len()
        })
    });
}

criterion_group!(
    benches,
    bench_expr_eval,
    bench_linalg,
    bench_sql_frontend,
    bench_bloom,
    bench_model_classes,
    bench_anomaly_ranking
);
criterion_main!(benches);
