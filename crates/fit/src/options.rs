//! Fitting options.

/// Which iterative optimizer to run for non-linear models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Plain Gauss-Newton — the paper's printed update rule. Fast near
    /// the optimum; can diverge from poor starts.
    GaussNewton,
    /// Levenberg-Marquardt — Gauss-Newton with adaptive damping; the
    /// default because the database fits *unattended* (the user is not
    /// there to pick a better start when a group misbehaves).
    LevenbergMarquardt,
}

/// How the Jacobian ∂r/∂β is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JacobianMode {
    /// Symbolic differentiation of the model body (default: exact and,
    /// per the E-ablation benchmark, faster than re-evaluating the model
    /// p+1 times per iteration).
    Symbolic,
    /// Central finite differences with step `h·(1+|βⱼ|)`.
    FiniteDifference,
}

/// Which solver the linear (analytic) path uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinearSolver {
    /// Householder QR of the design matrix — numerically safest.
    Qr,
    /// Cholesky of the normal equations `XᵀX β = Xᵀy` — fastest, used
    /// by grouped fitting where the same tiny system repeats thousands
    /// of times; squares the condition number.
    NormalEquations,
}

/// Options controlling a fit.
#[derive(Debug, Clone)]
pub struct FitOptions {
    /// Iterative algorithm for non-linear models.
    pub algorithm: Algorithm,
    /// Jacobian construction.
    pub jacobian: JacobianMode,
    /// Linear-path solver.
    pub linear_solver: LinearSolver,
    /// Initial parameter values, `(name, value)`; unnamed parameters
    /// start at [`FitOptions::default_start`].
    pub initial: Vec<(String, f64)>,
    /// Default starting value for parameters not listed in `initial`.
    pub default_start: f64,
    /// Maximum optimizer iterations.
    pub max_iterations: usize,
    /// Relative RSS-improvement convergence tolerance.
    pub tolerance: f64,
    /// Ridge penalty λ ≥ 0 on the linear path (0 = plain OLS).
    pub ridge_lambda: f64,
    /// Optional per-observation weights column name (weighted least
    /// squares); weights must be positive where finite.
    pub weights_column: Option<String>,
    /// Finite-difference step scale.
    pub fd_step: f64,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            algorithm: Algorithm::LevenbergMarquardt,
            jacobian: JacobianMode::Symbolic,
            linear_solver: LinearSolver::Qr,
            initial: Vec::new(),
            default_start: 1.0,
            max_iterations: 100,
            tolerance: 1e-10,
            ridge_lambda: 0.0,
            weights_column: None,
            fd_step: 1e-7,
        }
    }
}

impl FitOptions {
    /// Set a starting value for one parameter.
    pub fn with_initial(mut self, name: &str, value: f64) -> Self {
        if let Some(e) = self.initial.iter_mut().find(|(n, _)| n == name) {
            e.1 = value;
        } else {
            self.initial.push((name.to_string(), value));
        }
        self
    }

    /// Select the algorithm.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Select the Jacobian mode.
    pub fn with_jacobian(mut self, jacobian: JacobianMode) -> Self {
        self.jacobian = jacobian;
        self
    }

    /// Starting value for a named parameter.
    pub fn start_for(&self, name: &str) -> f64 {
        self.initial
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(self.default_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_style_updates() {
        let o = FitOptions::default()
            .with_initial("alpha", -1.0)
            .with_initial("alpha", -0.5)
            .with_algorithm(Algorithm::GaussNewton);
        assert_eq!(o.start_for("alpha"), -0.5);
        assert_eq!(o.start_for("p"), 1.0);
        assert_eq!(o.algorithm, Algorithm::GaussNewton);
    }
}
