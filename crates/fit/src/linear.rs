//! The analytic path: linearity detection and (weighted/ridge) ordinary
//! least squares.

use crate::data::DataSet;
use crate::diagnostics::FitDiagnostics;
use crate::error::{FitError, Result};
use crate::options::{FitOptions, LinearSolver};
use crate::FitResult;
use lawsdb_expr::deriv::differentiate;
use lawsdb_expr::parser::SymbolSplit;
use lawsdb_expr::simplify::simplify;
use lawsdb_expr::{CompiledExpr, Expr, Formula};
use lawsdb_linalg::{Cholesky, Matrix, Qr};

/// A model rewritten as `y = offset(x) + Σ βⱼ·basisⱼ(x)`.
///
/// Detection is symbolic: a formula is linear in its parameters exactly
/// when every ∂f/∂βⱼ is free of parameters; then that derivative *is*
/// the j-th design column and `f` at β = 0 is the offset.
#[derive(Debug, Clone)]
pub struct LinearForm {
    /// Response column name.
    pub response: String,
    /// Parameter names, sorted.
    pub params: Vec<String>,
    /// Data variables used.
    pub variables: Vec<String>,
    /// Design-column expressions, one per parameter.
    pub basis: Vec<Expr>,
    /// Parameter-free offset term.
    pub offset: Expr,
    /// The original formula source (for the model catalog).
    pub source: String,
}

/// Detect linearity of `formula` in its parameters. Returns `None` for
/// genuinely non-linear models (e.g. the power law `p * nu ^ alpha`).
pub fn detect_linear(formula: &Formula, split: &SymbolSplit) -> Option<LinearForm> {
    let mut basis = Vec::with_capacity(split.parameters.len());
    for p in &split.parameters {
        let d = differentiate(&formula.rhs, p).ok()?;
        // Linear ⟺ the derivative mentions no parameter at all.
        if split.parameters.iter().any(|q| d.contains_symbol(q)) {
            return None;
        }
        basis.push(d);
    }
    // Offset = f with every parameter set to zero.
    let mut offset = formula.rhs.clone();
    for p in &split.parameters {
        offset = offset.substitute(p, &Expr::Num(0.0));
    }
    let offset = simplify(&offset);
    Some(LinearForm {
        response: formula.response.clone(),
        params: split.parameters.clone(),
        variables: split.variables.clone(),
        basis,
        offset,
        source: formula.source.clone(),
    })
}

/// Fit a linear form by (weighted, optionally ridge-penalized) least
/// squares.
pub fn fit_linear(form: &LinearForm, data: &DataSet<'_>, options: &FitOptions) -> Result<FitResult> {
    let p = form.params.len();
    // Usable rows: response, every variable, and the weight column (if
    // any) must be finite.
    let mut needed: Vec<&str> = vec![form.response.as_str()];
    needed.extend(form.variables.iter().map(String::as_str));
    if let Some(w) = &options.weights_column {
        needed.push(w);
    }
    let rows = data.finite_rows(&needed)?;
    let n = rows.len();
    if n < p {
        return Err(FitError::TooFewObservations { observations: n, parameters: p });
    }

    let y = data.gather(&form.response, &rows)?;
    let var_names: Vec<&str> = form.variables.iter().map(String::as_str).collect();
    let var_cols: Vec<Vec<f64>> = form
        .variables
        .iter()
        .map(|v| data.gather(v, &rows))
        .collect::<Result<_>>()?;
    let var_slices: Vec<&[f64]> = var_cols.iter().map(Vec::as_slice).collect();

    // Evaluate an expression over the gathered variable columns,
    // passing only the columns the compiled program references and
    // broadcasting constant results to n rows.
    let eval_over = |e: &Expr| -> Result<Vec<f64>> {
        let ce = CompiledExpr::compile(e, &var_names)?;
        let cols: Vec<&[f64]> = ce
            .columns()
            .iter()
            .map(|c| {
                let idx = form
                    .variables
                    .iter()
                    .position(|v| v == c)
                    .expect("compiled columns come from form.variables");
                var_slices[idx]
            })
            .collect();
        let v = ce.eval_batch(&cols, &[])?;
        Ok(if v.len() == 1 && n != 1 { vec![v[0]; n] } else { v })
    };

    // Evaluate basis columns and offset, vectorized.
    let mut design_cols: Vec<Vec<f64>> = Vec::with_capacity(p);
    for b in &form.basis {
        design_cols.push(eval_over(b)?);
    }
    let offset = eval_over(&form.offset)?;

    // Adjusted response: y − offset.
    let mut y_adj: Vec<f64> = y.iter().zip(&offset).map(|(a, b)| a - b).collect();

    // Optional WLS: scale rows by √w.
    if let Some(wname) = &options.weights_column {
        let w = data.gather(wname, &rows)?;
        if w.iter().any(|&x| x <= 0.0) {
            return Err(FitError::BadData {
                detail: format!("weights column {wname:?} has non-positive entries"),
            });
        }
        for (i, &wi) in w.iter().enumerate() {
            let s = wi.sqrt();
            y_adj[i] *= s;
            for c in design_cols.iter_mut() {
                c[i] *= s;
            }
        }
    }

    let col_slices: Vec<&[f64]> = design_cols.iter().map(Vec::as_slice).collect();
    let x = Matrix::from_columns(&col_slices)?;
    if !x.all_finite() || y_adj.iter().any(|v| !v.is_finite()) {
        return Err(FitError::NumericalBreakdown {
            detail: "design matrix or response contains non-finite values".to_string(),
        });
    }

    // Ridge forces the normal-equation path (penalty lives on XᵀX).
    let use_normal =
        options.ridge_lambda > 0.0 || options.linear_solver == LinearSolver::NormalEquations;
    let (beta, xtx_inv) = if use_normal {
        let mut gram = x.gram();
        gram.add_diagonal(options.ridge_lambda);
        let rhs = x.tr_matvec(&y_adj)?;
        let ch = Cholesky::new(&gram)?;
        (ch.solve(&rhs)?, ch.inverse().ok())
    } else {
        let qr = Qr::new(&x)?;
        let beta = qr.solve_least_squares(&y_adj)?;
        let inv = qr.xtx_inverse().ok();
        (beta, inv)
    };

    // Residuals against the *unweighted* original response for R².
    let fitted_adj = x.matvec(&beta)?;
    let rss: f64 = y_adj
        .iter()
        .zip(&fitted_adj)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    let tss = lawsdb_linalg::ops::total_sum_of_squares(&y);

    let diagnostics =
        FitDiagnostics::compute(n, &form.params, &beta, rss, tss, xtx_inv.as_ref());
    Ok(FitResult {
        params: form.params.iter().cloned().zip(beta).collect(),
        diagnostics,
        iterations: 0,
        converged: true,
        used_linear_path: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_expr::parse_formula;

    fn split(f: &Formula, cols: &[&str]) -> SymbolSplit {
        f.split_symbols(cols)
    }

    #[test]
    fn detects_simple_line_as_linear() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        assert_eq!(form.params, vec!["a", "b"]);
        // Basis for a is 1, for b is x.
        assert_eq!(form.basis[0], Expr::Num(1.0));
        assert_eq!(form.basis[1], Expr::Sym("x".to_string()));
        assert_eq!(form.offset, Expr::Num(0.0));
    }

    #[test]
    fn detects_polynomial_and_transformed_bases() {
        let f = parse_formula("y ~ b0 + b1 * x + b2 * x ^ 2 + b3 * ln(x)").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        assert_eq!(form.params.len(), 4);
    }

    #[test]
    fn power_law_is_not_linear() {
        let f = parse_formula("y ~ p * x ^ alpha").unwrap();
        let s = split(&f, &["x", "y"]);
        assert!(detect_linear(&f, &s).is_none());
    }

    #[test]
    fn product_of_parameters_is_not_linear() {
        let f = parse_formula("y ~ a * b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        assert!(detect_linear(&f, &s).is_none());
    }

    #[test]
    fn offset_term_is_separated() {
        // y = sin(x) + a*x: the sin(x) has no parameter → offset.
        let f = parse_formula("y ~ sin(x) + a * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        assert_eq!(form.offset.to_string(), "sin(x)");
        // Fit: y = sin(x) + 2x exactly.
        let xs: Vec<f64> = (1..40).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.sin() + 2.0 * x).collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_linear(&form, &data, &FitOptions::default()).unwrap();
        assert!((r.param("a").unwrap() - 2.0).abs() < 1e-10);
        assert!(r.diagnostics.r2 > 0.999999);
    }

    #[test]
    fn recovers_noisy_line_with_good_diagnostics() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.05).collect();
        // Deterministic noise in [-0.05, 0.05].
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 - 0.5 * x + ((i * 37 % 100) as f64 / 1000.0 - 0.05))
            .collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_linear(&form, &data, &FitOptions::default()).unwrap();
        assert!((r.param("a").unwrap() - 1.0).abs() < 0.02);
        assert!((r.param("b").unwrap() + 0.5).abs() < 0.01);
        assert!(r.diagnostics.r2 > 0.99);
        assert!(r.diagnostics.param_stats[1].p_value < 1e-10);
    }

    #[test]
    fn nan_rows_are_dropped() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        let xs = [0.0, 1.0, f64::NAN, 2.0, 3.0];
        let ys = [1.0, 3.0, 100.0, f64::NAN, 7.0];
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_linear(&form, &data, &FitOptions::default()).unwrap();
        assert_eq!(r.diagnostics.n, 3);
        assert!((r.param("b").unwrap() - 2.0).abs() < 1e-10);
    }

    #[test]
    fn qr_and_normal_equations_agree() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + 0.25 * x + (x * 0.7).sin()).collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let rq = fit_linear(&form, &data, &FitOptions::default()).unwrap();
        let opts = FitOptions { linear_solver: LinearSolver::NormalEquations, ..Default::default() };
        let rn = fit_linear(&form, &data, &opts).unwrap();
        assert!((rq.param("a").unwrap() - rn.param("a").unwrap()).abs() < 1e-8);
        assert!((rq.param("b").unwrap() - rn.param("b").unwrap()).abs() < 1e-8);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 10.0 * x).collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let plain = fit_linear(&form, &data, &FitOptions::default()).unwrap();
        let opts = FitOptions { ridge_lambda: 100.0, ..Default::default() };
        let ridged = fit_linear(&form, &data, &opts).unwrap();
        assert!(ridged.param("b").unwrap().abs() < plain.param("b").unwrap().abs());
    }

    #[test]
    fn weighted_fit_prioritizes_heavy_rows() {
        let f = parse_formula("y ~ c").unwrap();
        // Model: y = c (constant). Two clusters; weights pick cluster 2.
        let ys = [1.0, 1.0, 5.0, 5.0];
        let w = [0.001, 0.001, 1000.0, 1000.0];
        let dummy = [0.0, 0.0, 0.0, 0.0];
        let data =
            DataSet::new(vec![("y", &ys[..]), ("w", &w[..]), ("x", &dummy[..])]).unwrap();
        let s = f.split_symbols(&["y", "w", "x"]);
        let form = detect_linear(&f, &s).unwrap();
        let opts = FitOptions { weights_column: Some("w".to_string()), ..Default::default() };
        let r = fit_linear(&form, &data, &opts).unwrap();
        assert!((r.param("c").unwrap() - 5.0).abs() < 0.01);
    }

    #[test]
    fn non_positive_weights_rejected() {
        let f = parse_formula("y ~ c").unwrap();
        let ys = [1.0, 2.0];
        let w = [1.0, 0.0];
        let data = DataSet::new(vec![("y", &ys[..]), ("w", &w[..])]).unwrap();
        let s = f.split_symbols(&["y", "w"]);
        let form = detect_linear(&f, &s).unwrap();
        let opts = FitOptions { weights_column: Some("w".to_string()), ..Default::default() };
        assert!(matches!(fit_linear(&form, &data, &opts), Err(FitError::BadData { .. })));
    }

    #[test]
    fn too_few_observations_rejected() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let s = split(&f, &["x", "y"]);
        let form = detect_linear(&f, &s).unwrap();
        let xs = [1.0];
        let ys = [1.0];
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        assert!(matches!(
            fit_linear(&form, &data, &FitOptions::default()),
            Err(FitError::TooFewObservations { .. })
        ));
    }
}
