//! Grouped fitting: one model fit per group key.
//!
//! The LOFAR example fits `I = p·ν^α` *per source* — 35,692 independent
//! two-parameter fits — and the paper's Table 1 is exactly the resulting
//! parameter table (source, α, p, residual SE). This module groups rows
//! by an integer key column, fits every group (in parallel across OS
//! threads), and assembles that table.

use crate::data::DataSet;
use crate::error::{FitError, Result};
use crate::options::FitOptions;
use crate::{fit_auto, FitResult};
use lawsdb_expr::Formula;
use std::collections::HashMap;

/// Outcome for one group.
#[derive(Debug, Clone)]
pub struct GroupFit {
    /// Group key value.
    pub key: i64,
    /// Rows in this group.
    pub rows: usize,
    /// The fit, or why it failed (groups with too few observations are
    /// the common case — the paper keeps them in the raw store).
    pub outcome: std::result::Result<FitResult, FitError>,
}

/// All per-group fits plus corpus-level summaries.
#[derive(Debug, Clone)]
pub struct GroupedFitResult {
    /// Parameter names in output order (sorted).
    pub param_names: Vec<String>,
    /// Per-group outcomes, ordered by key.
    pub fits: Vec<GroupFit>,
    /// Total observations fitted (successful groups only).
    pub observations_fitted: usize,
}

impl GroupedFitResult {
    /// Number of groups whose fit succeeded.
    pub fn success_count(&self) -> usize {
        self.fits.iter().filter(|g| g.outcome.is_ok()).count()
    }

    /// Number of groups whose fit failed.
    pub fn failure_count(&self) -> usize {
        self.fits.len() - self.success_count()
    }

    /// Pooled R² over all successful groups: `1 − ΣRSS/ΣTSS`.
    pub fn overall_r2(&self) -> f64 {
        let (mut rss, mut tss) = (0.0, 0.0);
        for g in &self.fits {
            if let Ok(r) = &g.outcome {
                rss += r.diagnostics.rss;
                tss += r.diagnostics.tss;
            }
        }
        if tss > 0.0 {
            1.0 - rss / tss
        } else {
            f64::NAN
        }
    }

    /// The paper's Table 1: one row per successfully fitted group —
    /// `(key, parameter values in param_names order, residual SE)`.
    pub fn parameter_table(&self) -> Vec<(i64, Vec<f64>, f64)> {
        self.fits
            .iter()
            .filter_map(|g| {
                g.outcome.as_ref().ok().map(|r| {
                    let values =
                        self.param_names.iter().map(|n| r.param(n).unwrap_or(f64::NAN)).collect();
                    (g.key, values, r.diagnostics.residual_se)
                })
            })
            .collect()
    }

    /// Storage footprint of the parameter table in bytes: key + each
    /// parameter + residual SE, 8 bytes each (how Table 1's "640 KB"
    /// is counted).
    pub fn parameter_table_bytes(&self) -> usize {
        self.success_count() * 8 * (2 + self.param_names.len())
    }

    /// Groups ranked worst-fit-first by residual SE — the paper's data
    /// anomalies: "observations that do not fit the model … will stand
    /// out in the fitting process by showing large residual errors."
    pub fn ranked_by_misfit(&self) -> Vec<(i64, f64)> {
        let mut v: Vec<(i64, f64)> = self
            .fits
            .iter()
            .filter_map(|g| {
                g.outcome
                    .as_ref()
                    .ok()
                    .map(|r| (g.key, r.diagnostics.residual_se))
            })
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        v
    }

    /// Fit for a specific group key.
    pub fn group(&self, key: i64) -> Option<&GroupFit> {
        self.fits.iter().find(|g| g.key == key)
    }
}

/// Fit `formula` independently within each group of `group_keys`.
///
/// `group_keys` must have one entry per data row. `threads` caps the
/// worker count (1 = sequential; grouped fitting is embarrassingly
/// parallel, so the default of available parallelism is usually right).
pub fn fit_grouped(
    formula: &Formula,
    group_keys: &[i64],
    data: &DataSet<'_>,
    options: &FitOptions,
    threads: usize,
) -> Result<GroupedFitResult> {
    if group_keys.len() != data.rows() {
        return Err(FitError::BadData {
            detail: format!(
                "group key column has {} rows, data has {}",
                group_keys.len(),
                data.rows()
            ),
        });
    }
    let split = formula.split_symbols(&data.names());
    if split.parameters.is_empty() {
        return Err(FitError::NoParameters { formula: formula.source.clone() });
    }

    // Group row indices by key.
    let mut groups: HashMap<i64, Vec<usize>> = HashMap::new();
    for (row, &k) in group_keys.iter().enumerate() {
        groups.entry(k).or_default().push(row);
    }
    let mut keys: Vec<i64> = groups.keys().copied().collect();
    keys.sort_unstable();

    // Gather the columns each fit needs (response + variables + weights)
    // once, then slice per group.
    let mut col_names: Vec<String> = vec![formula.response.clone()];
    col_names.extend(split.variables.iter().cloned());
    if let Some(w) = &options.weights_column {
        col_names.push(w.clone());
    }
    let full_cols: Vec<&[f64]> = col_names
        .iter()
        .map(|c| data.column(c))
        .collect::<Result<_>>()?;

    let threads = threads.max(1).min(keys.len().max(1));
    let fit_one = |key: i64| -> GroupFit {
        let rows = &groups[&key];
        let gathered: Vec<Vec<f64>> = full_cols
            .iter()
            .map(|c| rows.iter().map(|&r| c[r]).collect())
            .collect();
        let pairs: Vec<(&str, &[f64])> = col_names
            .iter()
            .map(String::as_str)
            .zip(gathered.iter().map(Vec::as_slice))
            .collect();
        let outcome = DataSet::new(pairs).and_then(|ds| fit_auto(formula, &ds, options));
        GroupFit { key, rows: rows.len(), outcome }
    };

    let fits: Vec<GroupFit> = if threads == 1 {
        keys.iter().map(|&k| fit_one(k)).collect()
    } else {
        // Static chunking over sorted keys; groups are similar in size
        // in the workloads we target, so work stays balanced.
        let chunk = keys.len().div_ceil(threads);
        let mut out: Vec<Vec<GroupFit>> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = keys
                .chunks(chunk)
                .map(|ks| s.spawn(|| ks.iter().map(|&k| fit_one(k)).collect::<Vec<_>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("fit worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    };

    let observations_fitted = fits
        .iter()
        .filter(|g| g.outcome.is_ok())
        .map(|g| g.rows)
        .sum();
    Ok(GroupedFitResult { param_names: split.parameters, fits, observations_fitted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_expr::parse_formula;

    /// Three sources with distinct power laws + one tiny group.
    fn dataset() -> (Vec<i64>, Vec<f64>, Vec<f64>) {
        let laws = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3)];
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut keys = Vec::new();
        let mut nu = Vec::new();
        let mut y = Vec::new();
        for (src, &(p, a)) in laws.iter().enumerate() {
            for i in 0..40 {
                let f = freqs[i % 4];
                keys.push(src as i64);
                nu.push(f);
                y.push(p * f.powf(a));
            }
        }
        // Group 99 has one observation — cannot fit two parameters.
        keys.push(99);
        nu.push(0.15);
        y.push(1.0);
        (keys, nu, y)
    }

    #[test]
    fn fits_each_group_independently() {
        let (keys, nu, y) = dataset();
        let f = parse_formula("y ~ p * nu ^ alpha").unwrap();
        let data = DataSet::new(vec![("nu", &nu[..]), ("y", &y[..])]).unwrap();
        let r = fit_grouped(&f, &keys, &data, &FitOptions::default(), 1).unwrap();
        assert_eq!(r.fits.len(), 4);
        assert_eq!(r.success_count(), 3);
        assert_eq!(r.failure_count(), 1);
        let g0 = r.group(0).unwrap().outcome.as_ref().unwrap();
        assert!((g0.param("alpha").unwrap() + 0.7).abs() < 1e-6);
        let g1 = r.group(1).unwrap().outcome.as_ref().unwrap();
        assert!((g1.param("alpha").unwrap() + 1.2).abs() < 1e-6);
        let g2 = r.group(2).unwrap().outcome.as_ref().unwrap();
        assert!((g2.param("alpha").unwrap() - 0.3).abs() < 1e-6);
        assert!(matches!(
            r.group(99).unwrap().outcome,
            Err(FitError::TooFewObservations { .. })
        ));
        assert!(r.overall_r2() > 0.999999);
        assert_eq!(r.observations_fitted, 120);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (keys, nu, y) = dataset();
        let f = parse_formula("y ~ p * nu ^ alpha").unwrap();
        let data = DataSet::new(vec![("nu", &nu[..]), ("y", &y[..])]).unwrap();
        let seq = fit_grouped(&f, &keys, &data, &FitOptions::default(), 1).unwrap();
        let par = fit_grouped(&f, &keys, &data, &FitOptions::default(), 4).unwrap();
        assert_eq!(seq.fits.len(), par.fits.len());
        for (a, b) in seq.fits.iter().zip(&par.fits) {
            assert_eq!(a.key, b.key);
            match (&a.outcome, &b.outcome) {
                (Ok(x), Ok(y)) => {
                    for ((_, xv), (_, yv)) in x.params.iter().zip(&y.params) {
                        assert!((xv - yv).abs() < 1e-12);
                    }
                }
                (Err(_), Err(_)) => {}
                other => panic!("outcome mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn parameter_table_shape_matches_paper() {
        let (keys, nu, y) = dataset();
        let f = parse_formula("y ~ p * nu ^ alpha").unwrap();
        let data = DataSet::new(vec![("nu", &nu[..]), ("y", &y[..])]).unwrap();
        let r = fit_grouped(&f, &keys, &data, &FitOptions::default(), 1).unwrap();
        let table = r.parameter_table();
        // (source, [alpha, p], residual SE) per fitted source.
        assert_eq!(table.len(), 3);
        assert_eq!(r.param_names, vec!["alpha", "p"]);
        assert_eq!(table[0].1.len(), 2);
        // 3 groups × (key + 2 params + rse) × 8 bytes.
        assert_eq!(r.parameter_table_bytes(), 3 * 4 * 8);
    }

    #[test]
    fn misfit_ranking_surfaces_anomalous_group() {
        // Two clean power-law groups, one group that is pure noise.
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut keys = Vec::new();
        let mut nu = Vec::new();
        let mut y = Vec::new();
        for src in 0..2i64 {
            for i in 0..40 {
                keys.push(src);
                nu.push(freqs[i % 4]);
                y.push(2.0 * freqs[i % 4].powf(-0.7));
            }
        }
        for i in 0..40 {
            keys.push(7);
            nu.push(freqs[i % 4]);
            // Signal unrelated to frequency.
            y.push(((i * 2654435761usize % 1000) as f64 / 100.0) - 5.0);
        }
        let f = parse_formula("y ~ p * nu ^ alpha").unwrap();
        let data = DataSet::new(vec![("nu", &nu[..]), ("y", &y[..])]).unwrap();
        let r = fit_grouped(&f, &keys, &data, &FitOptions::default(), 2).unwrap();
        let ranked = r.ranked_by_misfit();
        assert_eq!(ranked[0].0, 7, "noise group must rank first: {ranked:?}");
        assert!(ranked[0].1 > 10.0 * ranked[1].1.max(1e-12));
    }

    #[test]
    fn key_length_mismatch_rejected() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let xs = [1.0, 2.0];
        let ys = [1.0, 2.0];
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        assert!(matches!(
            fit_grouped(&f, &[1], &data, &FitOptions::default(), 1),
            Err(FitError::BadData { .. })
        ));
    }

    #[test]
    fn grouped_linear_model_uses_analytic_path() {
        let keys = vec![0, 0, 0, 1, 1, 1];
        let xs = [1.0, 2.0, 3.0, 1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0, 5.0, 8.0, 11.0];
        let f = parse_formula("y ~ a + b * x").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_grouped(&f, &keys, &data, &FitOptions::default(), 1).unwrap();
        let g0 = r.group(0).unwrap().outcome.as_ref().unwrap();
        assert!(g0.used_linear_path);
        assert!((g0.param("b").unwrap() - 2.0).abs() < 1e-10);
        let g1 = r.group(1).unwrap().outcome.as_ref().unwrap();
        assert!((g1.param("b").unwrap() - 3.0).abs() < 1e-10);
        assert!((g1.param("a").unwrap() - 2.0).abs() < 1e-10);
    }
}
