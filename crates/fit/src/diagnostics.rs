//! Goodness-of-fit judgment — step 2 of the paper's capture protocol
//! ("Judge the quality of the model") and the source of the error
//! bounds attached to approximate answers.

use lawsdb_linalg::dist::{f_p_value, t_two_sided_p};
use lawsdb_linalg::Matrix;

/// Per-parameter inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamStats {
    /// Parameter name.
    pub name: String,
    /// Fitted value.
    pub estimate: f64,
    /// Standard error `√(σ̂²·[(XᵀX)⁻¹]ⱼⱼ)` (Jacobian-based for NLLS).
    pub std_error: f64,
    /// t-statistic `estimate / std_error`.
    pub t_stat: f64,
    /// Two-sided p-value under t(n−p).
    pub p_value: f64,
}

/// Goodness-of-fit summary for one fitted model.
#[derive(Debug, Clone, PartialEq)]
pub struct FitDiagnostics {
    /// Usable observations.
    pub n: usize,
    /// Fitted parameters.
    pub p: usize,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares around the response mean.
    pub tss: f64,
    /// Coefficient of determination R² = 1 − RSS/TSS.
    pub r2: f64,
    /// Adjusted R².
    pub adj_r2: f64,
    /// Residual standard error `√(RSS/(n−p))` — the paper's Table 1
    /// "Residual SE" column.
    pub residual_se: f64,
    /// F statistic against the intercept-only model.
    pub f_stat: f64,
    /// Upper-tail p-value of `f_stat` under F(p−1, n−p).
    pub f_p_value: f64,
    /// Akaike information criterion (Gaussian likelihood).
    pub aic: f64,
    /// Bayesian information criterion.
    pub bic: f64,
    /// Per-parameter inference, in parameter order.
    pub param_stats: Vec<ParamStats>,
}

impl FitDiagnostics {
    /// Assemble diagnostics from the fit ingredients.
    ///
    /// `xtx_inv` is `(XᵀX)⁻¹` for linear fits or `(JᵀJ)⁻¹` at the
    /// optimum for non-linear fits; pass `None` when it is unavailable
    /// (singular at the optimum) and per-parameter inference will be
    /// NaN while the aggregate measures stay valid.
    pub fn compute(
        n: usize,
        param_names: &[String],
        estimates: &[f64],
        rss: f64,
        tss: f64,
        xtx_inv: Option<&Matrix>,
    ) -> FitDiagnostics {
        let p = param_names.len();
        let df_resid = n.saturating_sub(p);
        let r2 = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };
        let adj_r2 = if tss > 0.0 && df_resid > 0 && n > 1 {
            1.0 - (rss / df_resid as f64) / (tss / (n as f64 - 1.0))
        } else {
            f64::NAN
        };
        let sigma2 = if df_resid > 0 { rss / df_resid as f64 } else { f64::NAN };
        let residual_se = sigma2.sqrt();
        // F-test vs the intercept-only reduced model (the paper:
        // "the results of an F-test against a model with fewer
        // parameters").
        let (f_stat, f_p) = if p > 1 && df_resid > 0 && rss > 0.0 && tss > rss {
            let fstat =
                ((tss - rss) / (p as f64 - 1.0)) / (rss / df_resid as f64);
            (fstat, f_p_value(fstat, p as f64 - 1.0, df_resid as f64))
        } else if p > 1 && df_resid > 0 && rss == 0.0 {
            (f64::INFINITY, 0.0)
        } else {
            (f64::NAN, f64::NAN)
        };
        // Gaussian log-likelihood based criteria; the +1 counts σ².
        let k = p as f64 + 1.0;
        let (aic, bic) = if n > 0 && rss > 0.0 {
            let ll = -0.5
                * n as f64
                * ((2.0 * std::f64::consts::PI * rss / n as f64).ln() + 1.0);
            (2.0 * k - 2.0 * ll, k * (n as f64).ln() - 2.0 * ll)
        } else {
            (f64::NEG_INFINITY, f64::NEG_INFINITY)
        };
        let param_stats = param_names
            .iter()
            .zip(estimates)
            .enumerate()
            .map(|(j, (name, &estimate))| {
                let std_error = match xtx_inv {
                    Some(m) if df_resid > 0 => (sigma2 * m[(j, j)]).sqrt(),
                    _ => f64::NAN,
                };
                let t_stat = estimate / std_error;
                let p_value = if std_error.is_finite() && df_resid > 0 {
                    t_two_sided_p(t_stat, df_resid as f64)
                } else {
                    f64::NAN
                };
                ParamStats { name: name.clone(), estimate, std_error, t_stat, p_value }
            })
            .collect();
        // One structured event per judged fit: with a subscriber
        // installed, capture sweeps leave an audit trail of every
        // quality judgment (paper Table 1's columns); without one this
        // is a single relaxed atomic load.
        lawsdb_obs::event!("fit.diagnostics", n, p, r2, residual_se, f_stat);
        FitDiagnostics {
            n,
            p,
            rss,
            tss,
            r2,
            adj_r2,
            residual_se,
            f_stat,
            f_p_value: f_p,
            aic,
            bic,
            param_stats,
        }
    }

    /// The quality gate the capture layer applies: a model is worth
    /// storing when it explains at least `min_r2` of the variance and
    /// its F-test (when defined) is significant at `alpha`.
    pub fn is_acceptable(&self, min_r2: f64, alpha: f64) -> bool {
        if !(self.r2 >= min_r2) {
            return false;
        }
        if self.f_p_value.is_nan() {
            // Single-parameter models have no F-test; R² decides.
            return true;
        }
        self.f_p_value <= alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(ns: &[&str]) -> Vec<String> {
        ns.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn perfect_fit_has_r2_one() {
        let d = FitDiagnostics::compute(10, &names(&["a", "b"]), &[1.0, 2.0], 0.0, 100.0, None);
        assert_eq!(d.r2, 1.0);
        assert_eq!(d.residual_se, 0.0);
        assert_eq!(d.f_stat, f64::INFINITY);
        assert_eq!(d.f_p_value, 0.0);
        assert!(d.is_acceptable(0.9, 0.05));
    }

    #[test]
    fn useless_fit_has_r2_zero() {
        let d = FitDiagnostics::compute(10, &names(&["a", "b"]), &[0.0, 0.0], 100.0, 100.0, None);
        assert!((d.r2 - 0.0).abs() < 1e-12);
        assert!(!d.is_acceptable(0.5, 0.05));
    }

    #[test]
    fn known_simple_regression_values() {
        // y = x over x = 1..=5 with rss known: residuals all 0.1 off.
        // Construct: n=5, p=2, rss=0.05, tss=10.
        let d = FitDiagnostics::compute(5, &names(&["b0", "b1"]), &[0.0, 1.0], 0.05, 10.0, None);
        assert!((d.r2 - 0.995).abs() < 1e-12);
        // adj R² = 1 − (rss/3)/(tss/4) = 1 − (0.016667)/(2.5)
        assert!((d.adj_r2 - (1.0 - (0.05 / 3.0) / (10.0 / 4.0))).abs() < 1e-12);
        assert!((d.residual_se - (0.05f64 / 3.0).sqrt()).abs() < 1e-12);
        // F = ((10-0.05)/1)/(0.05/3) = 597
        assert!((d.f_stat - 597.0).abs() < 1e-9);
        assert!(d.f_p_value < 1e-3);
    }

    #[test]
    fn param_stats_use_covariance_diagonal() {
        let xtx_inv = Matrix::from_vec(2, 2, vec![0.5, 0.0, 0.0, 2.0]).unwrap();
        let d = FitDiagnostics::compute(
            12,
            &names(&["a", "b"]),
            &[4.0, 1.0],
            10.0,
            110.0,
            Some(&xtx_inv),
        );
        let sigma2: f64 = 10.0 / 10.0;
        assert!((d.param_stats[0].std_error - (sigma2 * 0.5f64).sqrt()).abs() < 1e-12);
        assert!((d.param_stats[1].std_error - (sigma2 * 2.0f64).sqrt()).abs() < 1e-12);
        assert!((d.param_stats[0].t_stat - 4.0 / (0.5f64).sqrt()).abs() < 1e-12);
        assert!(d.param_stats[0].p_value < 0.01);
    }

    #[test]
    fn aic_bic_prefer_better_fit_at_equal_complexity() {
        let good = FitDiagnostics::compute(50, &names(&["a", "b"]), &[0., 0.], 1.0, 100.0, None);
        let bad = FitDiagnostics::compute(50, &names(&["a", "b"]), &[0., 0.], 50.0, 100.0, None);
        assert!(good.aic < bad.aic);
        assert!(good.bic < bad.bic);
    }

    #[test]
    fn single_parameter_model_acceptable_by_r2_alone() {
        let d = FitDiagnostics::compute(10, &names(&["k"]), &[2.0], 1.0, 100.0, None);
        assert!(d.f_p_value.is_nan());
        assert!(d.is_acceptable(0.9, 0.05));
    }

    #[test]
    fn degenerate_shapes_do_not_panic() {
        // n == p: no residual degrees of freedom.
        let d = FitDiagnostics::compute(2, &names(&["a", "b"]), &[0., 0.], 0.0, 1.0, None);
        assert!(d.residual_se.is_nan());
        // Empty data.
        let d = FitDiagnostics::compute(0, &names(&["a"]), &[0.], 0.0, 0.0, None);
        assert!(d.r2.is_nan());
        assert!(!d.is_acceptable(0.5, 0.05));
    }
}
