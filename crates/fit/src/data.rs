//! Borrowed column views for fitting.
//!
//! The fit crate is independent of the storage engine; callers hand it
//! named `&[f64]` columns. `lawsdb-models` bridges `Table` → `DataSet`.

use crate::error::{FitError, Result};

/// A named collection of equal-length borrowed f64 columns.
#[derive(Debug, Clone)]
pub struct DataSet<'a> {
    names: Vec<String>,
    cols: Vec<&'a [f64]>,
    rows: usize,
}

impl<'a> DataSet<'a> {
    /// Build from `(name, column)` pairs; all columns must share one
    /// length and names must be unique.
    pub fn new(pairs: Vec<(&str, &'a [f64])>) -> Result<DataSet<'a>> {
        let rows = pairs.first().map_or(0, |(_, c)| c.len());
        let mut names = Vec::with_capacity(pairs.len());
        let mut cols = Vec::with_capacity(pairs.len());
        for (name, col) in pairs {
            if names.iter().any(|n| n == name) {
                return Err(FitError::BadData { detail: format!("duplicate column {name:?}") });
            }
            if col.len() != rows {
                return Err(FitError::BadData {
                    detail: format!(
                        "column {name:?} has {} rows, expected {rows}",
                        col.len()
                    ),
                });
            }
            names.push(name.to_string());
            cols.push(col);
        }
        Ok(DataSet { names, cols, rows })
    }

    /// Column names as borrowed strs.
    pub fn names(&self) -> Vec<&str> {
        self.names.iter().map(String::as_str).collect()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Look a column up by name.
    pub fn column(&self, name: &str) -> Result<&'a [f64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.cols[i])
            .ok_or_else(|| FitError::MissingColumn { name: name.to_string() })
    }

    /// Indices of rows where *all* the given columns are finite — the
    /// usable observations (NULLs arrive as NaN from the storage layer).
    pub fn finite_rows(&self, columns: &[&str]) -> Result<Vec<usize>> {
        let cols: Vec<&[f64]> = columns
            .iter()
            .map(|c| self.column(c))
            .collect::<Result<_>>()?;
        Ok((0..self.rows)
            .filter(|&r| cols.iter().all(|c| c[r].is_finite()))
            .collect())
    }

    /// Gather one column at the given row indices into a fresh vector.
    pub fn gather(&self, name: &str, rows: &[usize]) -> Result<Vec<f64>> {
        let col = self.column(name)?;
        Ok(rows.iter().map(|&r| col[r]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let d = DataSet::new(vec![("a", &a[..]), ("b", &b[..])]).unwrap();
        assert_eq!(d.rows(), 2);
        assert_eq!(d.column("b").unwrap(), &[3.0, 4.0]);
        assert!(matches!(d.column("c"), Err(FitError::MissingColumn { .. })));
    }

    #[test]
    fn ragged_and_duplicate_rejected() {
        let a = [1.0, 2.0];
        let b = [3.0];
        assert!(DataSet::new(vec![("a", &a[..]), ("b", &b[..])]).is_err());
        assert!(DataSet::new(vec![("a", &a[..]), ("a", &a[..])]).is_err());
    }

    #[test]
    fn finite_rows_drops_nan_in_any_column() {
        let a = [1.0, f64::NAN, 3.0, 4.0];
        let b = [1.0, 2.0, f64::INFINITY, 4.0];
        let d = DataSet::new(vec![("a", &a[..]), ("b", &b[..])]).unwrap();
        assert_eq!(d.finite_rows(&["a", "b"]).unwrap(), vec![0, 3]);
        assert_eq!(d.finite_rows(&["a"]).unwrap(), vec![0, 2, 3]);
    }

    #[test]
    fn gather_selects_rows() {
        let a = [10.0, 20.0, 30.0];
        let d = DataSet::new(vec![("a", &a[..])]).unwrap();
        assert_eq!(d.gather("a", &[2, 0]).unwrap(), vec![30.0, 10.0]);
    }
}
