//! Errors for the fitting layer.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FitError>;

/// Errors produced by model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// The formula references a data column the data set lacks.
    MissingColumn {
        /// The missing name.
        name: String,
    },
    /// The formula has no free parameters to fit.
    NoParameters {
        /// The formula source.
        formula: String,
    },
    /// Fewer usable observations than parameters ("we need more observed
    /// input/output pairs than model parameters", Section 3).
    TooFewObservations {
        /// Usable (finite) observations.
        observations: usize,
        /// Parameter count.
        parameters: usize,
    },
    /// The optimizer failed to converge within the iteration budget.
    DidNotConverge {
        /// Iterations performed.
        iterations: usize,
        /// Final residual sum of squares.
        rss: f64,
    },
    /// The model produced non-finite predictions at the current
    /// parameters and no recovery step helped.
    NumericalBreakdown {
        /// Explanation.
        detail: String,
    },
    /// Underlying linear-algebra failure (singular normal matrix, …).
    Linalg(lawsdb_linalg::LinalgError),
    /// Underlying expression failure (unbound symbol, …).
    Expr(lawsdb_expr::ExprError),
    /// Data-set construction problem (ragged columns, duplicate names).
    BadData {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::MissingColumn { name } => {
                write!(f, "data set has no column named {name:?}")
            }
            FitError::NoParameters { formula } => {
                write!(f, "formula {formula:?} has no free parameters")
            }
            FitError::TooFewObservations { observations, parameters } => write!(
                f,
                "{observations} usable observations cannot determine {parameters} parameters"
            ),
            FitError::DidNotConverge { iterations, rss } => {
                write!(f, "fit did not converge after {iterations} iterations (rss={rss:.6e})")
            }
            FitError::NumericalBreakdown { detail } => {
                write!(f, "numerical breakdown during fitting: {detail}")
            }
            FitError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            FitError::Expr(e) => write!(f, "expression error: {e}"),
            FitError::BadData { detail } => write!(f, "bad data set: {detail}"),
        }
    }
}

impl std::error::Error for FitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FitError::Linalg(e) => Some(e),
            FitError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lawsdb_linalg::LinalgError> for FitError {
    fn from(e: lawsdb_linalg::LinalgError) -> Self {
        FitError::Linalg(e)
    }
}

impl From<lawsdb_expr::ExprError> for FitError {
    fn from(e: lawsdb_expr::ExprError) -> Self {
        FitError::Expr(e)
    }
}
