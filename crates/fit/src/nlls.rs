//! Non-linear least squares: Gauss-Newton and Levenberg-Marquardt.
//!
//! The paper (Section 3) prints the Gauss-Newton update
//! `β⁽ˢ⁺¹⁾ = β⁽ˢ⁾ − (Jr ᵀ Jr)⁻¹ Jr ᵀ r(β⁽ˢ⁾)` and notes that
//! convergence "can be highly dependent on the choice of starting
//! parameters" and that the optimizer can be "trapped in local extrema"
//! — responsibilities it assigns to the user. We implement the printed
//! algorithm faithfully (with a backtracking safeguard so a bad step
//! degrades into an error instead of a NaN spiral) and add
//! Levenberg-Marquardt as the unattended-operation default.

use crate::data::DataSet;
use crate::diagnostics::FitDiagnostics;
use crate::error::{FitError, Result};
use crate::options::{Algorithm, FitOptions, JacobianMode};
use crate::FitResult;
use lawsdb_expr::compile::ExecStack;
use lawsdb_expr::deriv::differentiate;
use lawsdb_expr::{CompiledExpr, Formula};
use lawsdb_linalg::{Cholesky, Lu, Matrix};

/// Fit a (generally non-linear) formula by iterative least squares.
pub fn fit_nonlinear(
    formula: &Formula,
    data: &DataSet<'_>,
    options: &FitOptions,
) -> Result<FitResult> {
    let split = formula.split_symbols(&data.names());
    let params = split.parameters.clone();
    let p = params.len();
    if p == 0 {
        return Err(FitError::NoParameters { formula: formula.source.clone() });
    }

    // Usable rows.
    let mut needed: Vec<&str> = vec![formula.response.as_str()];
    needed.extend(split.variables.iter().map(String::as_str));
    if let Some(w) = &options.weights_column {
        needed.push(w);
    }
    let rows = data.finite_rows(&needed)?;
    let n = rows.len();
    if n <= p {
        return Err(FitError::TooFewObservations { observations: n, parameters: p });
    }

    let y = data.gather(&formula.response, &rows)?;
    let sqrt_w: Option<Vec<f64>> = match &options.weights_column {
        None => None,
        Some(wname) => {
            let w = data.gather(wname, &rows)?;
            if w.iter().any(|&x| x <= 0.0) {
                return Err(FitError::BadData {
                    detail: format!("weights column {wname:?} has non-positive entries"),
                });
            }
            Some(w.iter().map(|x| x.sqrt()).collect())
        }
    };
    let var_cols: Vec<Vec<f64>> = split
        .variables
        .iter()
        .map(|v| data.gather(v, &rows))
        .collect::<Result<_>>()?;

    let var_names: Vec<&str> = split.variables.iter().map(String::as_str).collect();
    let model = Compiled::new(&formula.rhs, &var_names, &params, &split.variables, &var_cols, n)?;

    // Symbolic Jacobian columns (None for finite differences).
    let jacobian: Option<Vec<Compiled>> = match options.jacobian {
        JacobianMode::Symbolic => {
            let mut cols = Vec::with_capacity(p);
            for prm in &params {
                let d = differentiate(&formula.rhs, prm)?;
                cols.push(Compiled::new(&d, &var_names, &params, &split.variables, &var_cols, n)?);
            }
            Some(cols)
        }
        JacobianMode::FiniteDifference => None,
    };

    let mut beta: Vec<f64> = params.iter().map(|prm| options.start_for(prm)).collect();
    let mut stack = ExecStack::default();

    let weighted_residuals = |beta: &[f64], stack: &mut ExecStack| -> Result<Vec<f64>> {
        let pred = model.eval(beta, stack)?;
        let mut r: Vec<f64> = y.iter().zip(&pred).map(|(yi, fi)| yi - fi).collect();
        if let Some(sw) = &sqrt_w {
            for (ri, swi) in r.iter_mut().zip(sw) {
                *ri *= swi;
            }
        }
        Ok(r)
    };
    let rss_of = |r: &[f64]| -> f64 { r.iter().map(|v| v * v).sum() };

    let mut r = weighted_residuals(&beta, &mut stack)?;
    let mut rss = rss_of(&r);
    if !rss.is_finite() {
        return Err(FitError::NumericalBreakdown {
            detail: "model is non-finite at the starting parameters".to_string(),
        });
    }

    let mut lambda = 1e-3; // LM damping
    let mut converged = false;
    let mut iterations = 0usize;
    let mut final_jtj: Option<Matrix> = None;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;
        // Jacobian of the *model* (∂f/∂β); the residual Jacobian is its
        // negation, which cancels in the normal equations.
        let j = match &jacobian {
            Some(cols) => {
                let mut m = Matrix::zeros(n, p);
                for (cidx, c) in cols.iter().enumerate() {
                    let col = c.eval(&beta, &mut stack)?;
                    for (ridx, v) in col.iter().enumerate() {
                        m[(ridx, cidx)] = *v;
                    }
                }
                m
            }
            None => finite_difference_jacobian(&model, &beta, n, options.fd_step, &mut stack)?,
        };
        let j = match &sqrt_w {
            None => j,
            Some(sw) => {
                let mut m = j;
                for ridx in 0..n {
                    let s = sw[ridx];
                    for cidx in 0..p {
                        m[(ridx, cidx)] *= s;
                    }
                }
                m
            }
        };
        if !j.all_finite() {
            return Err(FitError::NumericalBreakdown {
                detail: format!("non-finite Jacobian at iteration {iter}"),
            });
        }
        let jtj = j.gram();
        let jtr = j.tr_matvec(&r)?;
        final_jtj = Some(jtj.clone());

        let improved = match options.algorithm {
            Algorithm::GaussNewton => {
                let delta = solve_spd(&jtj, &jtr)?;
                // Backtracking: halve the step until RSS improves (or
                // give up after 12 halvings — the paper's "it is the
                // user's responsibility" case).
                let mut step = 1.0;
                let mut accepted = false;
                for _ in 0..12 {
                    let cand: Vec<f64> =
                        beta.iter().zip(&delta).map(|(b, d)| b + step * d).collect();
                    if let Ok(rc) = weighted_residuals(&cand, &mut stack) {
                        let rssc = rss_of(&rc);
                        if rssc.is_finite() && rssc < rss {
                            beta = cand;
                            r = rc;
                            let old = rss;
                            rss = rssc;
                            accepted = true;
                            if (old - rss).abs() <= options.tolerance * rss.max(1e-300) {
                                converged = true;
                            }
                            break;
                        }
                    }
                    step *= 0.5;
                }
                accepted
            }
            Algorithm::LevenbergMarquardt => {
                let mut accepted = false;
                for _ in 0..30 {
                    // (JᵀJ + λ·diag(JᵀJ))δ = Jᵀr
                    let mut damped = jtj.clone();
                    for d in 0..p {
                        let dd = jtj[(d, d)];
                        damped[(d, d)] = dd + lambda * dd.max(1e-12);
                    }
                    let delta = match solve_spd(&damped, &jtr) {
                        Ok(d) => d,
                        Err(_) => {
                            lambda *= 10.0;
                            continue;
                        }
                    };
                    let cand: Vec<f64> =
                        beta.iter().zip(&delta).map(|(b, d)| b + d).collect();
                    if let Ok(rc) = weighted_residuals(&cand, &mut stack) {
                        let rssc = rss_of(&rc);
                        if rssc.is_finite() && rssc < rss {
                            beta = cand;
                            r = rc;
                            let old = rss;
                            rss = rssc;
                            lambda = (lambda / 3.0).max(1e-12);
                            accepted = true;
                            if (old - rss).abs() <= options.tolerance * rss.max(1e-300)
                            {
                                converged = true;
                            }
                            break;
                        }
                    }
                    lambda *= 5.0;
                    if lambda > 1e12 {
                        break;
                    }
                }
                accepted
            }
        };

        if converged {
            break;
        }
        if !improved {
            // No direction improves: either converged to machine
            // precision or stuck; treat tiny gradients as convergence.
            let grad_norm = lawsdb_linalg::norm2(&jtr);
            if grad_norm <= 1e-10 * (1.0 + rss) {
                converged = true;
            }
            break;
        }
    }

    if !converged && iterations >= options.max_iterations {
        return Err(FitError::DidNotConverge { iterations, rss });
    }
    if !converged {
        // Stalled without meeting tolerance; still report if the fit is
        // usable — callers check `converged`.
    }

    let tss = lawsdb_linalg::ops::total_sum_of_squares(&y);
    let xtx_inv = final_jtj.and_then(|m| Cholesky::new(&m).ok().and_then(|c| c.inverse().ok()));
    let diagnostics = FitDiagnostics::compute(n, &params, &beta, rss, tss, xtx_inv.as_ref());
    Ok(FitResult {
        params: params.into_iter().zip(beta).collect(),
        diagnostics,
        iterations,
        converged,
        used_linear_path: false,
    })
}

/// Solve a symmetric positive-(semi)definite system, falling back to LU
/// when Cholesky rejects a semidefinite matrix.
fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    match Cholesky::new(a) {
        Ok(ch) => Ok(ch.solve(b)?),
        Err(_) => Ok(Lu::new(a)?.solve(b)?),
    }
}

/// A compiled expression plus the prepared column views for its batch
/// evaluation and the mapping from the full parameter vector to the
/// (possibly smaller) scalar slot list of this particular expression.
struct Compiled {
    ce: CompiledExpr,
    col_data: Vec<Vec<f64>>,
    scalar_index: Vec<usize>,
    n: usize,
}

impl Compiled {
    fn new(
        expr: &lawsdb_expr::Expr,
        var_names: &[&str],
        params: &[String],
        variables: &[String],
        var_cols: &[Vec<f64>],
        n: usize,
    ) -> Result<Compiled> {
        let ce = CompiledExpr::compile(expr, var_names)?;
        let col_data: Vec<Vec<f64>> = ce
            .columns()
            .iter()
            .map(|c| {
                let idx = variables
                    .iter()
                    .position(|v| v == c)
                    .expect("compiled columns are a subset of variables");
                var_cols[idx].clone()
            })
            .collect();
        let scalar_index: Vec<usize> = ce
            .scalars()
            .iter()
            .map(|s| {
                params
                    .iter()
                    .position(|prm| prm == s)
                    .expect("compiled scalars are a subset of parameters")
            })
            .collect();
        Ok(Compiled { ce, col_data, scalar_index, n })
    }

    fn eval(&self, beta: &[f64], stack: &mut ExecStack) -> Result<Vec<f64>> {
        let cols: Vec<&[f64]> = self.col_data.iter().map(Vec::as_slice).collect();
        let scalars: Vec<f64> = self.scalar_index.iter().map(|&i| beta[i]).collect();
        let v = self.ce.eval_batch_with(&cols, &scalars, stack)?;
        Ok(if v.len() == 1 && self.n != 1 { vec![v[0]; self.n] } else { v })
    }
}

/// Central-difference Jacobian of the model in the parameters.
fn finite_difference_jacobian(
    model: &Compiled,
    beta: &[f64],
    n: usize,
    step: f64,
    stack: &mut ExecStack,
) -> Result<Matrix> {
    let p = beta.len();
    let mut j = Matrix::zeros(n, p);
    let mut work = beta.to_vec();
    for cidx in 0..p {
        let h = step * (1.0 + beta[cidx].abs());
        work[cidx] = beta[cidx] + h;
        let hi = model.eval(&work, stack)?;
        work[cidx] = beta[cidx] - h;
        let lo = model.eval(&work, stack)?;
        work[cidx] = beta[cidx];
        for ridx in 0..n {
            j[(ridx, cidx)] = (hi[ridx] - lo[ridx]) / (2.0 * h);
        }
    }
    Ok(j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_expr::parse_formula;

    fn power_law_data(p: f64, alpha: f64, noise: f64) -> (Vec<f64>, Vec<f64>) {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut nu = Vec::new();
        let mut y = Vec::new();
        for i in 0..80 {
            let f = freqs[i % 4];
            let e = ((i * 2654435761usize % 1000) as f64 / 1000.0 - 0.5) * noise;
            nu.push(f);
            y.push(p * f.powf(alpha) + e);
        }
        (nu, y)
    }

    fn fit(formula: &str, nu: &[f64], y: &[f64], options: FitOptions) -> Result<FitResult> {
        let f = parse_formula(formula).unwrap();
        let data = DataSet::new(vec![("nu", nu), ("y", y)]).unwrap();
        fit_nonlinear(&f, &data, &options)
    }

    #[test]
    fn lm_recovers_exact_power_law() {
        let (nu, y) = power_law_data(2.0, -0.7, 0.0);
        let r = fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()).unwrap();
        assert!(r.converged);
        assert!((r.param("p").unwrap() - 2.0).abs() < 1e-8, "{:?}", r.params);
        assert!((r.param("alpha").unwrap() + 0.7).abs() < 1e-8);
        assert!(r.diagnostics.r2 > 0.999999);
    }

    #[test]
    fn lm_recovers_noisy_power_law() {
        let (nu, y) = power_law_data(0.0626, -0.718, 0.005);
        let r = fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()).unwrap();
        assert!((r.param("p").unwrap() - 0.0626).abs() < 0.01);
        assert!((r.param("alpha").unwrap() + 0.718).abs() < 0.15);
        assert!(r.diagnostics.residual_se < 0.01);
    }

    #[test]
    fn gauss_newton_matches_lm_on_well_behaved_problem() {
        let (nu, y) = power_law_data(2.0, -0.7, 0.001);
        let gn = fit(
            "y ~ p * nu ^ alpha",
            &nu,
            &y,
            FitOptions::default().with_algorithm(Algorithm::GaussNewton),
        )
        .unwrap();
        let lm = fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()).unwrap();
        assert!((gn.param("p").unwrap() - lm.param("p").unwrap()).abs() < 1e-5);
        assert!((gn.param("alpha").unwrap() - lm.param("alpha").unwrap()).abs() < 1e-5);
    }

    #[test]
    fn finite_difference_jacobian_agrees_with_symbolic() {
        let (nu, y) = power_law_data(1.5, -0.5, 0.002);
        let sym = fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()).unwrap();
        let fd = fit(
            "y ~ p * nu ^ alpha",
            &nu,
            &y,
            FitOptions::default().with_jacobian(JacobianMode::FiniteDifference),
        )
        .unwrap();
        assert!((sym.param("p").unwrap() - fd.param("p").unwrap()).abs() < 1e-5);
        assert!((sym.param("alpha").unwrap() - fd.param("alpha").unwrap()).abs() < 1e-5);
    }

    #[test]
    fn exponential_decay_fit() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 * (-0.8 * x).exp()).collect();
        let f = parse_formula("y ~ a * exp(b * x)").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let opts = FitOptions::default().with_initial("b", -0.1);
        let r = fit_nonlinear(&f, &data, &opts).unwrap();
        assert!((r.param("a").unwrap() - 5.0).abs() < 1e-6);
        assert!((r.param("b").unwrap() + 0.8).abs() < 1e-6);
    }

    #[test]
    fn sinusoid_fit_with_good_start() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * (1.5 * x).sin() + 0.5).collect();
        let f = parse_formula("y ~ amp * sin(freq * x) + off").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let opts = FitOptions::default().with_initial("freq", 1.4).with_initial("amp", 1.5);
        let r = fit_nonlinear(&f, &data, &opts).unwrap();
        assert!((r.param("freq").unwrap() - 1.5).abs() < 1e-6);
        assert!((r.param("amp").unwrap() - 2.0).abs() < 1e-6);
        assert!((r.param("off").unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn weighted_nlls_downweights_outliers() {
        let (nu, mut y) = power_law_data(2.0, -0.7, 0.0);
        // Poison two observations; give them negligible weight.
        y[0] = 100.0;
        y[1] = -50.0;
        let mut w = vec![1.0; y.len()];
        w[0] = 1e-9;
        w[1] = 1e-9;
        let f = parse_formula("y ~ p * nu ^ alpha").unwrap();
        let data = DataSet::new(vec![("nu", &nu[..]), ("y", &y[..]), ("w", &w[..])]).unwrap();
        let opts = FitOptions { weights_column: Some("w".to_string()), ..Default::default() };
        let r = fit_nonlinear(&f, &data, &opts).unwrap();
        assert!((r.param("p").unwrap() - 2.0).abs() < 1e-4);
        assert!((r.param("alpha").unwrap() + 0.7).abs() < 1e-3);
    }

    #[test]
    fn too_few_observations_rejected() {
        let nu = [0.12, 0.15];
        let y = [1.0, 2.0];
        assert!(matches!(
            fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()),
            Err(FitError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn non_finite_start_is_a_clean_error() {
        let (nu, y) = power_law_data(2.0, -0.7, 0.0);
        // ln of a negative start value → NaN predictions.
        let opts = FitOptions::default().with_initial("p", f64::NAN);
        assert!(matches!(
            fit("y ~ p * nu ^ alpha", &nu, &y, opts),
            Err(FitError::NumericalBreakdown { .. })
        ));
    }

    #[test]
    fn iteration_budget_exhaustion_is_reported() {
        let (nu, y) = power_law_data(2.0, -0.7, 0.01);
        let opts = FitOptions { max_iterations: 1, tolerance: 0.0, ..Default::default() };
        let res = fit("y ~ p * nu ^ alpha", &nu, &y, opts);
        // Either converged in one step (unlikely with tol 0) or a
        // DidNotConverge error; both are acceptable, a panic is not.
        if let Err(e) = res {
            assert!(matches!(e, FitError::DidNotConverge { .. }));
        }
    }

    #[test]
    fn nan_rows_are_dropped_before_fitting() {
        let (mut nu, mut y) = power_law_data(2.0, -0.7, 0.0);
        nu[3] = f64::NAN;
        y[7] = f64::NAN;
        let r = fit("y ~ p * nu ^ alpha", &nu, &y, FitOptions::default()).unwrap();
        assert_eq!(r.diagnostics.n, nu.len() - 2);
        assert!((r.param("alpha").unwrap() + 0.7).abs() < 1e-6);
    }
}
