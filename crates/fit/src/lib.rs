//! # lawsdb-fit
//!
//! Model fitting for LawsDB — the algorithmic core of Section 3 of
//! *"Capturing the Laws of (Data) Nature"*.
//!
//! The paper distinguishes exactly two classes:
//!
//! > "In the simpler case of linear models (y = Xβ + ε), we can use the
//! > ordinary least squares method to find an analytical solution …
//! > Contrary, in the general (non-linear) case, we have to fall back to
//! > optimization algorithms. For example, the Gauss-Newton algorithm…"
//!
//! and this crate implements both, plus the machinery around them:
//!
//! * [`linear`] — **linearity detection**: a formula is linear in its
//!   *parameters* iff every ∂f/∂βᵢ is parameter-free; the detector
//!   derives the design-matrix columns symbolically and dispatches to
//!   OLS (QR by default, normal equations + Cholesky as the fast
//!   ablation path), with weighted and ridge variants.
//! * [`nlls`] — **Gauss-Newton** exactly as printed in the paper
//!   (β⁽ˢ⁺¹⁾ = β⁽ˢ⁾ − (JᵀJ)⁻¹Jᵀr) and **Levenberg-Marquardt** damping
//!   for the ill-conditioned cases where plain Gauss-Newton diverges;
//!   Jacobians are symbolic by default with a finite-difference option
//!   (the ablation benchmark compares both).
//! * [`diagnostics`] — the quality judgment the interception layer
//!   applies before storing a model: R², adjusted R², residual standard
//!   error (the paper's Table 1 column), the F-test against the
//!   intercept-only model, AIC/BIC, and per-parameter standard errors
//!   and t-statistics.
//! * [`grouped`] — per-group fitting ("we would get a set of model
//!   parameters for each aggregation group"): one small fit per source,
//!   parallelized across OS threads, producing exactly the paper's
//!   Table 1 parameter table — source, p, α, residual SE.

// `!(x >= y)` guards are NaN-aware: an undefined diagnostic must fail
// the quality gate.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod data;
pub mod diagnostics;
pub mod error;
pub mod grouped;
pub mod linear;
pub mod nlls;
pub mod options;

pub use data::DataSet;
pub use diagnostics::FitDiagnostics;
pub use error::{FitError, Result};
pub use grouped::{fit_grouped, GroupFit, GroupedFitResult};
pub use linear::{detect_linear, fit_linear, LinearForm};
pub use nlls::fit_nonlinear;
pub use options::{Algorithm, FitOptions, JacobianMode, LinearSolver};

use lawsdb_expr::Formula;

/// The result of fitting one model to one data set.
#[derive(Debug, Clone)]
pub struct FitResult {
    /// Fitted parameter values, keyed by name, sorted by name.
    pub params: Vec<(String, f64)>,
    /// Goodness-of-fit report.
    pub diagnostics: FitDiagnostics,
    /// True when the optimizer met its convergence tolerance (always
    /// true for linear fits).
    pub iterations: usize,
    /// Iterations consumed (0 for linear fits).
    pub converged: bool,
    /// Whether the linear (analytic) or non-linear (iterative) path ran.
    pub used_linear_path: bool,
}

impl FitResult {
    /// Value of the named parameter.
    pub fn param(&self, name: &str) -> Option<f64> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Fit a formula to data, choosing the analytic linear path when the
/// model is linear in its parameters and Gauss-Newton/LM otherwise —
/// the dispatch rule of Section 3.
pub fn fit_auto(formula: &Formula, data: &DataSet<'_>, options: &FitOptions) -> Result<FitResult> {
    let split = formula.split_symbols(&data.names());
    if split.parameters.is_empty() {
        return Err(FitError::NoParameters { formula: formula.source.clone() });
    }
    if let Some(form) = detect_linear(formula, &split) {
        fit_linear(&form, data, options)
    } else {
        fit_nonlinear(formula, data, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_expr::parse_formula;

    #[test]
    fn auto_dispatches_linear_to_analytic_path() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_auto(&f, &data, &FitOptions::default()).unwrap();
        assert!(r.used_linear_path);
        assert!((r.param("a").unwrap() - 2.0).abs() < 1e-10);
        assert!((r.param("b").unwrap() - 3.0).abs() < 1e-10);
    }

    #[test]
    fn auto_dispatches_power_law_to_nlls() {
        let f = parse_formula("y ~ p * x ^ alpha").unwrap();
        let xs: Vec<f64> = (1..60).map(|i| 0.1 + i as f64 * 0.01).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(-0.7)).collect();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_auto(&f, &data, &FitOptions::default()).unwrap();
        assert!(!r.used_linear_path);
        assert!(r.converged);
        assert!((r.param("p").unwrap() - 2.0).abs() < 1e-6);
        assert!((r.param("alpha").unwrap() + 0.7).abs() < 1e-6);
    }

    #[test]
    fn formula_without_parameters_is_rejected() {
        let f = parse_formula("y ~ x * 2").unwrap();
        let xs = [1.0, 2.0];
        let ys = [2.0, 4.0];
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        assert!(matches!(
            fit_auto(&f, &data, &FitOptions::default()),
            Err(FitError::NoParameters { .. })
        ));
    }
}
