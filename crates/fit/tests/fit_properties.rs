//! Property tests for the fitting stack: planted parameters must be
//! recovered across random model families, and the diagnostics must
//! satisfy their defining identities.

use lawsdb_expr::parse_formula;
use lawsdb_fit::{fit_auto, fit_nonlinear, DataSet, FitOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// OLS recovers planted coefficients of a random cubic exactly on
    /// noise-free data, with R² = 1.
    #[test]
    fn linear_path_recovers_random_cubic(
        c0 in -5.0f64..5.0,
        c1 in -5.0f64..5.0,
        c2 in -5.0f64..5.0,
        c3 in -5.0f64..5.0,
    ) {
        let xs: Vec<f64> = (0..60).map(|i| -1.0 + i as f64 / 30.0).collect();
        let ys: Vec<f64> =
            xs.iter().map(|&x| c0 + c1 * x + c2 * x * x + c3 * x * x * x).collect();
        let f = parse_formula("y ~ b0 + b1 * x + b2 * x ^ 2 + b3 * x ^ 3").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_auto(&f, &data, &FitOptions::default()).unwrap();
        prop_assert!(r.used_linear_path);
        for (name, want) in [("b0", c0), ("b1", c1), ("b2", c2), ("b3", c3)] {
            let got = r.param(name).unwrap();
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()),
                "{name}: {got} vs {want}");
        }
        prop_assert!(r.diagnostics.r2 > 1.0 - 1e-9 || r.diagnostics.tss < 1e-9);
    }

    /// Levenberg-Marquardt recovers planted exponential-decay parameters
    /// from a start in the basin.
    #[test]
    fn nlls_recovers_random_exponential(
        a in 0.5f64..5.0,
        k in -1.5f64..-0.1,
    ) {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a * (k * x).exp()).collect();
        let f = parse_formula("y ~ a * exp(k * x)").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let opts = FitOptions::default().with_initial("k", -0.5).with_initial("a", 1.0);
        let r = fit_nonlinear(&f, &data, &opts).unwrap();
        prop_assert!((r.param("a").unwrap() - a).abs() < 1e-5 * (1.0 + a));
        prop_assert!((r.param("k").unwrap() - k).abs() < 1e-5);
    }

    /// R² is scale- and shift-equivariant where it should be: rescaling
    /// the response leaves R² unchanged.
    #[test]
    fn r2_is_invariant_under_response_scaling(
        scale in 0.1f64..50.0,
        noise_seed in 0u64..1000,
    ) {
        let xs: Vec<f64> = (0..40).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let pseudo =
                    ((i as u64 ^ noise_seed).wrapping_mul(0x9E3779B9) % 1000) as f64 / 1000.0;
                2.0 + 0.5 * x + (pseudo - 0.5)
            })
            .collect();
        let scaled: Vec<f64> = ys.iter().map(|v| v * scale).collect();
        let f = parse_formula("y ~ b0 + b1 * x").unwrap();
        let d1 = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let d2 = DataSet::new(vec![("x", &xs[..]), ("y", &scaled[..])]).unwrap();
        let r1 = fit_auto(&f, &d1, &FitOptions::default()).unwrap();
        let r2 = fit_auto(&f, &d2, &FitOptions::default()).unwrap();
        prop_assert!((r1.diagnostics.r2 - r2.diagnostics.r2).abs() < 1e-9);
        // Slope scales with the response.
        prop_assert!(
            (r2.param("b1").unwrap() - scale * r1.param("b1").unwrap()).abs()
                < 1e-6 * scale
        );
    }

    /// The fundamental ANOVA identity on the linear path:
    /// TSS = RSS + ESS (explained sum of squares), via R².
    #[test]
    fn anova_identity_holds(seed in 0u64..500) {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let pseudo =
                    ((i as u64 ^ seed).wrapping_mul(0x2545F4914F6CDD1D) % 997) as f64 / 997.0;
                1.0 + 0.3 * x + 3.0 * (pseudo - 0.5)
            })
            .collect();
        let f = parse_formula("y ~ b0 + b1 * x").unwrap();
        let data = DataSet::new(vec![("x", &xs[..]), ("y", &ys[..])]).unwrap();
        let r = fit_auto(&f, &data, &FitOptions::default()).unwrap();
        let d = &r.diagnostics;
        // With an intercept, RSS ≤ TSS and R² = 1 − RSS/TSS ∈ [0, 1].
        prop_assert!(d.rss <= d.tss + 1e-9, "rss {} tss {}", d.rss, d.tss);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d.r2), "r2 {}", d.r2);
        // F statistic consistent with R²: F = (R²/(1−R²))·(n−2).
        if d.r2 < 1.0 - 1e-12 {
            let f_from_r2 = d.r2 / (1.0 - d.r2) * (d.n as f64 - 2.0);
            prop_assert!(
                (f_from_r2 - d.f_stat).abs() <= 1e-6 * (1.0 + d.f_stat),
                "{f_from_r2} vs {}", d.f_stat
            );
        }
    }
}
