//! The fit layer's quality judgments are on the event stream: every
//! `FitDiagnostics::compute` emits one `fit.diagnostics` event carrying
//! the paper's Table 1 columns. This file owns its process, so the
//! global tracer install races with nothing else.

use lawsdb_fit::diagnostics::FitDiagnostics;
use lawsdb_obs::trace::{tracer, FieldValue};
use lawsdb_obs::{MockClock, RingBufferSink};
use std::sync::Arc;

#[test]
fn every_judged_fit_emits_a_diagnostics_event() {
    let sink = RingBufferSink::new(16);
    tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));

    let names = vec!["b0".to_string(), "b1".to_string()];
    let d = FitDiagnostics::compute(5, &names, &[0.0, 1.0], 0.05, 10.0, None);
    tracer().uninstall();

    let events = sink.drain();
    let diag: Vec<_> =
        events.iter().filter(|e| e.name == "fit.diagnostics").collect();
    assert_eq!(diag.len(), 1);
    assert_eq!(diag[0].field("n").and_then(FieldValue::as_u64), Some(5));
    assert_eq!(diag[0].field("p").and_then(FieldValue::as_u64), Some(2));
    let r2 = match diag[0].field("r2") {
        Some(FieldValue::F64(v)) => *v,
        other => panic!("r2 should be an f64 field, got {other:?}"),
    };
    assert_eq!(r2, d.r2);
    assert!(diag[0].field("residual_se").is_some());
    assert!(diag[0].field("f_stat").is_some());
}

#[test]
fn no_subscriber_means_compute_is_silent_and_cheap() {
    assert!(!tracer().is_enabled());
    let names = vec!["k".to_string()];
    // Must not panic or allocate event payloads with no subscriber.
    let d = FitDiagnostics::compute(10, &names, &[2.0], 1.0, 100.0, None);
    assert!(d.is_acceptable(0.9, 0.05));
}
