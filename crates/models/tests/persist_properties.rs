//! Property tests for the catalog serialization format (`LAWM` v2).
//!
//! Three properties, over arbitrary catalogs:
//!
//! 1. serialize → load is the identity (field-for-field, including
//!    formula re-parse and bitwise parameter equality);
//! 2. every truncation prefix of a valid image is a structured error;
//! 3. every single-byte flip of a valid image is a structured error.
//!
//! Nothing here may panic: a corrupt catalog image must always degrade
//! to `Err`, because recovery reads these images off a crashed device.

use lawsdb_models::{
    CapturedModel, Coverage, GroupParams, ModelCatalog, ModelId, ModelParams, ModelState,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// Parseable formula templates with their parameter and variable names.
/// The formula source *is* the schema (the parser re-derives the body on
/// load), so arbitrary catalogs draw from real grammar.
const TEMPLATES: [(&str, &[&str], &[&str]); 3] = [
    ("y ~ a + b * x", &["a", "b"], &["x"]),
    ("y ~ p * x ^ alpha", &["p", "alpha"], &["x"]),
    ("y ~ a * x + b * z", &["a", "b"], &["x", "z"]),
];

const FILTERS: [&str; 3] = ["x >= 0.1", "x > 0.0 && x < 100.0", "x <= 1000.0"];

fn clamp_unit(v: f64) -> f64 {
    (v.abs() / 1e6).clamp(0.0, 1.0)
}

#[allow(clippy::type_complexity)]
fn arb_model() -> impl Strategy<Value = CapturedModel> {
    (
        (0usize..3, 0usize..3, any::<bool>(), 0usize..4),
        prop::collection::vec(-1.0e6f64..1.0e6, 12),
        prop::collection::vec(-50i64..50, 1..5),
        ("[a-z]{1,8}", "[a-z]{1,8}", 0u64..100_000),
        prop::collection::vec(("[a-z]{1,6}", prop::collection::vec(-100.0f64..100.0, 1..4)), 0..3),
    )
        .prop_map(|((ti, state_i, grouped, filt_i), vals, keys, ids, domains)| {
            let (formula, param_names, var_names) = TEMPLATES[ti];
            let (table, response, rows) = ids;
            let names: Vec<String> = param_names.iter().map(|s| s.to_string()).collect();
            let np = names.len();
            let params = if grouped {
                let mut groups = HashMap::new();
                for (gi, &k) in keys.iter().enumerate() {
                    groups.insert(
                        k,
                        GroupParams {
                            values: (0..np).map(|j| vals[(gi + j) % vals.len()]).collect(),
                            residual_se: vals[(gi + 5) % vals.len()].abs(),
                            r2: clamp_unit(vals[(gi + 7) % vals.len()]),
                            n: rows as usize % 5000,
                        },
                    );
                }
                ModelParams::Grouped { group_column: "grp".to_string(), names, groups }
            } else {
                ModelParams::Global {
                    names,
                    values: vals[..np].to_vec(),
                    residual_se: vals[8].abs(),
                    r2: clamp_unit(vals[9]),
                    n: rows as usize % 5000,
                }
            };
            let legal_filter = if filt_i == 0 {
                None
            } else {
                Some(lawsdb_expr::parse_expr(FILTERS[filt_i - 1]).expect("filter parses"))
            };
            let predicate =
                if filt_i % 2 == 1 { Some(format!("{table} > 0.5")) } else { None };
            CapturedModel {
                id: ModelId(0),   // assigned by the catalog
                version: 0,       // likewise
                formula_source: formula.to_string(),
                rhs: lawsdb_expr::parse_formula(formula).expect("template parses").rhs,
                params,
                coverage: Coverage {
                    table,
                    response,
                    variables: var_names.iter().map(|s| s.to_string()).collect(),
                    rows_at_fit: rows as usize,
                    predicate,
                    domains,
                },
                overall_r2: clamp_unit(vals[10]),
                max_abs_residual: None,
                state: [ModelState::Active, ModelState::Stale, ModelState::Retired][state_i],
                legal_filter,
            }
        })
}

fn build_catalog(models: Vec<CapturedModel>) -> ModelCatalog {
    let catalog = ModelCatalog::new();
    for m in models {
        catalog.store(m);
    }
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn serialize_load_is_identity(models in prop::collection::vec(arb_model(), 0..4)) {
        let catalog = build_catalog(models);
        let bytes = catalog.to_bytes();
        let restored = ModelCatalog::from_bytes(&bytes);
        prop_assert!(restored.is_ok(), "valid image must load: {:?}", restored.err());
        let restored = restored.unwrap();
        prop_assert_eq!(restored.len(), catalog.len());
        for original in catalog.all() {
            let r = restored.get(original.id);
            prop_assert!(r.is_ok(), "model {:?} lost in roundtrip", original.id);
            let r = r.unwrap();
            prop_assert_eq!(&r.formula_source, &original.formula_source);
            prop_assert_eq!(r.rhs.to_string(), original.rhs.to_string());
            prop_assert_eq!(&r.params, &original.params);
            prop_assert_eq!(&r.coverage, &original.coverage);
            prop_assert_eq!(r.overall_r2.to_bits(), original.overall_r2.to_bits());
            prop_assert_eq!(r.state, original.state);
            prop_assert_eq!(r.version, original.version);
            prop_assert_eq!(
                r.legal_filter.as_ref().map(|e| e.to_string()),
                original.legal_filter.as_ref().map(|e| e.to_string())
            );
        }
        // Id allocation resumes where it left off: a new model never
        // collides with a restored one.
        let ids: Vec<u64> = restored.all().iter().map(|m| m.id.0).collect();
        if let Some(probe) = catalog.all().first() {
            let fresh = restored.store(CapturedModel::clone(probe));
            prop_assert!(!ids.contains(&fresh.id.0), "fresh id {} collides", fresh.id.0);
        }
    }

    #[test]
    fn every_truncation_prefix_errors(models in prop::collection::vec(arb_model(), 1..3)) {
        let bytes = build_catalog(models).to_bytes();
        for cut in 0..bytes.len() {
            let out = ModelCatalog::from_bytes(&bytes[..cut]);
            prop_assert!(out.is_err(), "truncation at {cut}/{} decoded", bytes.len());
        }
    }

    #[test]
    fn every_single_byte_flip_errors(
        models in prop::collection::vec(arb_model(), 1..3),
        bit in 0usize..8,
    ) {
        let bytes = build_catalog(models).to_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            let out = ModelCatalog::from_bytes(&corrupt);
            prop_assert!(out.is_err(), "flip of byte {i} bit {bit} decoded");
        }
    }
}
