//! Bridge between the storage engine and the fitting layer: fit a
//! formula directly against a [`Table`], producing a [`CapturedModel`].

use crate::error::{ModelError, Result};
use crate::model::{CapturedModel, Coverage, GroupParams, ModelId, ModelParams, ModelState};
use lawsdb_expr::{parse_formula, Formula};
use lawsdb_fit::{fit_auto, fit_grouped, DataSet, FitOptions, GroupedFitResult};
use lawsdb_storage::Table;
use std::collections::HashMap;

/// Numeric views of the table columns a formula needs, with NULL → NaN
/// (the fit layer drops NaN rows).
fn numeric_views(table: &Table, names: &[String]) -> Result<Vec<(String, Vec<f64>)>> {
    names
        .iter()
        .map(|n| {
            let col = table.column(n)?;
            Ok((n.clone(), col.to_f64_lossy()?))
        })
        .collect()
}


/// Enumerated domains of the given variables, captured at fit time via
/// column statistics (cap 1024 distinct values — beyond that a column is
/// not usefully enumerable for parameter-space enumeration).
fn capture_domains(table: &Table, variables: &[String]) -> Vec<(String, Vec<f64>)> {
    variables
        .iter()
        .filter_map(|v| {
            let col = table.column(v).ok()?;
            let stats = lawsdb_storage::stats::ColumnStats::analyze(col, 1024);
            // Stepped ranges can be huge; only materialize domains the
            // enumeration engine could plausibly sweep.
            if stats.enumerability.cardinality().is_some_and(|c| c > 100_000) {
                return None;
            }
            stats.enumerability.enumerate().map(|vals| (v.clone(), vals))
        })
        .collect()
}

/// Largest |actual − predicted| over rows of `table` where both are
/// finite — the model-synopsis pruning bound. `None` when no row has
/// both finite (then the model bounds nothing). Rows the model cannot
/// predict (NaN prediction: unfitted group, missing input) are simply
/// excluded here; zone construction marks their zones unbounded, so the
/// bound stays sound.
pub fn max_abs_residual(model: &CapturedModel, table: &Table) -> Result<Option<f64>> {
    let preds = predict_table(model, table)?;
    let actual = table.column(&model.coverage.response)?.to_f64_lossy()?;
    let mut worst: Option<f64> = None;
    for (&a, &p) in actual.iter().zip(&preds) {
        if a.is_finite() && p.is_finite() {
            let r = (a - p).abs();
            if worst.map(|w| r > w).unwrap_or(true) {
                worst = Some(r);
            }
        }
    }
    Ok(worst)
}

/// Fit `formula_src` globally against `table` and wrap the result as a
/// captured model (id/version 0 — the catalog assigns real ones).
pub fn fit_table(
    table: &Table,
    formula_src: &str,
    options: &FitOptions,
) -> Result<CapturedModel> {
    let formula = parse_formula(formula_src)?;
    let split = formula.split_symbols(&table.schema().names());
    let mut needed = vec![formula.response.clone()];
    needed.extend(split.variables.iter().cloned());
    if let Some(w) = &options.weights_column {
        needed.push(w.clone());
    }
    let views = numeric_views(table, &needed)?;
    let pairs: Vec<(&str, &[f64])> =
        views.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();
    let data = DataSet::new(pairs).map_err(ModelError::Fit)?;
    let fit = fit_auto(&formula, &data, options)?;

    let domains = capture_domains(table, &split.variables);
    let names: Vec<String> = fit.params.iter().map(|(n, _)| n.clone()).collect();
    let values: Vec<f64> = fit.params.iter().map(|(_, v)| *v).collect();
    let mut model = CapturedModel {
        id: ModelId(0),
        version: 0,
        formula_source: formula.source.clone(),
        rhs: formula.rhs.clone(),
        params: ModelParams::Global {
            names,
            values,
            residual_se: fit.diagnostics.residual_se,
            r2: fit.diagnostics.r2,
            n: fit.diagnostics.n,
        },
        coverage: Coverage {
            table: table.name().to_string(),
            response: formula.response.clone(),
            variables: split.variables,
            rows_at_fit: table.row_count(),
            predicate: None,
            domains,
        },
        overall_r2: fit.diagnostics.r2,
        max_abs_residual: None,
        state: ModelState::Active,
        legal_filter: None,
    };
    model.max_abs_residual = max_abs_residual(&model, table)?;
    Ok(model)
}

/// Fit `formula_src` per group of `group_column` and wrap the per-group
/// parameter table as a captured model. Returns the model together with
/// the full grouped-fit report (the caller may want failure details).
pub fn fit_table_grouped(
    table: &Table,
    formula_src: &str,
    group_column: &str,
    options: &FitOptions,
    threads: usize,
) -> Result<(CapturedModel, GroupedFitResult)> {
    let formula: Formula = parse_formula(formula_src)?;
    // The group column is input, not a model variable: exclude it from
    // the symbol split by listing only the remaining columns.
    let col_names: Vec<&str> = table
        .schema()
        .names()
        .into_iter()
        .filter(|n| *n != group_column)
        .collect();
    let split = formula.split_symbols(&col_names);
    let mut needed = vec![formula.response.clone()];
    needed.extend(split.variables.iter().cloned());
    if let Some(w) = &options.weights_column {
        needed.push(w.clone());
    }
    let views = numeric_views(table, &needed)?;
    let pairs: Vec<(&str, &[f64])> =
        views.iter().map(|(n, v)| (n.as_str(), v.as_slice())).collect();
    let data = DataSet::new(pairs).map_err(ModelError::Fit)?;

    let keys_col = table.column(group_column)?;
    let keys: Vec<i64> = keys_col.i64_data()?.to_vec();
    let grouped = fit_grouped(&formula, &keys, &data, options, threads)?;

    let mut groups: HashMap<i64, GroupParams> = HashMap::new();
    for g in &grouped.fits {
        if let Ok(r) = &g.outcome {
            groups.insert(
                g.key,
                GroupParams {
                    values: grouped
                        .param_names
                        .iter()
                        .map(|n| r.param(n).unwrap_or(f64::NAN))
                        .collect(),
                    residual_se: r.diagnostics.residual_se,
                    r2: r.diagnostics.r2,
                    n: r.diagnostics.n,
                },
            );
        }
    }
    let domains = capture_domains(table, &split.variables);
    let overall_r2 = grouped.overall_r2();
    let mut model = CapturedModel {
        id: ModelId(0),
        version: 0,
        formula_source: formula.source.clone(),
        rhs: formula.rhs.clone(),
        params: ModelParams::Grouped {
            group_column: group_column.to_string(),
            names: grouped.param_names.clone(),
            groups,
        },
        coverage: Coverage {
            table: table.name().to_string(),
            response: formula.response.clone(),
            variables: split.variables,
            rows_at_fit: table.row_count(),
            predicate: None,
            domains,
        },
        overall_r2,
        max_abs_residual: None,
        state: ModelState::Active,
        legal_filter: None,
    };
    model.max_abs_residual = max_abs_residual(&model, table)?;
    Ok((model, grouped))
}


/// Rows of `table` satisfying a numeric predicate (source text in the
/// model-formula language, e.g. `"nu >= 0.15 && nu <= 0.18"`). Rows
/// with NULL/NaN in any referenced column do not match.
fn predicate_rows(table: &Table, predicate_src: &str) -> Result<Vec<usize>> {
    let pred = lawsdb_expr::parse_expr(predicate_src)?;
    let cols = pred.symbols();
    let views = numeric_views(table, &cols)?;
    let mut bindings = lawsdb_expr::Bindings::new();
    let mut keep = Vec::new();
    'rows: for row in 0..table.row_count() {
        for (name, data) in &views {
            let v = data[row];
            if v.is_nan() {
                continue 'rows;
            }
            bindings.set(name, v);
        }
        if pred.eval(&bindings)? != 0.0 {
            keep.push(row);
        }
    }
    Ok(keep)
}

/// Fit a *partial* model: `formula_src` fitted only against the rows of
/// `table` satisfying `predicate_src` (Section 4.1's "partial models" —
/// "if the model has been fit on a query result that restricted the
/// tuples, the model and its fitting parameters are only applicable to
/// this subset"). The predicate is recorded in the model's coverage and
/// the approximate engine clips reconstruction to it.
pub fn fit_table_where(
    table: &Table,
    formula_src: &str,
    predicate_src: &str,
    options: &FitOptions,
) -> Result<CapturedModel> {
    let rows = predicate_rows(table, predicate_src)?;
    let subset = table.take(&rows)?;
    let mut model = fit_table(&subset, formula_src, options)?;
    model.coverage.rows_at_fit = table.row_count();
    model.coverage.predicate = Some(predicate_src.trim().to_string());
    Ok(model)
}

/// Grouped variant of [`fit_table_where`].
pub fn fit_table_grouped_where(
    table: &Table,
    formula_src: &str,
    group_column: &str,
    predicate_src: &str,
    options: &FitOptions,
    threads: usize,
) -> Result<(CapturedModel, GroupedFitResult)> {
    let rows = predicate_rows(table, predicate_src)?;
    let subset = table.take(&rows)?;
    let (mut model, report) =
        fit_table_grouped(&subset, formula_src, group_column, options, threads)?;
    model.coverage.rows_at_fit = table.row_count();
    model.coverage.predicate = Some(predicate_src.trim().to_string());
    Ok((model, report))
}

/// Reconstruct (predict) the response column of `table` from a grouped
/// or global model — the engine of both semantic compression and
/// zero-IO scans. Rows whose group has no fitted parameters come back
/// as NaN.
pub fn predict_table(model: &CapturedModel, table: &Table) -> Result<Vec<f64>> {
    let var_views = numeric_views(table, &model.coverage.variables)?;
    let cols: Vec<&[f64]> = var_views.iter().map(|(_, v)| v.as_slice()).collect();
    match &model.params {
        ModelParams::Global { .. } => model.predict_batch(None, &cols),
        ModelParams::Grouped { group_column, groups, .. } => {
            let keys = table.column(group_column)?.i64_data()?.to_vec();
            let n = table.row_count();
            let mut out = vec![f64::NAN; n];
            // Batch rows per group so each group pays one compiled pass.
            let mut by_group: HashMap<i64, Vec<usize>> = HashMap::new();
            for (i, &k) in keys.iter().enumerate() {
                by_group.entry(k).or_default().push(i);
            }
            for (key, rows) in by_group {
                if !groups.contains_key(&key) {
                    continue;
                }
                let gathered: Vec<Vec<f64>> = cols
                    .iter()
                    .map(|c| rows.iter().map(|&r| c[r]).collect())
                    .collect();
                let slices: Vec<&[f64]> = gathered.iter().map(Vec::as_slice).collect();
                let pred = model.predict_batch(Some(key), &slices)?;
                for (ri, &row) in rows.iter().enumerate() {
                    out[row] = pred[ri];
                }
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn lofar_table() -> Table {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let laws: [(f64, f64); 3] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3)];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for (s, &(p, a)) in laws.iter().enumerate() {
            for i in 0..40 {
                src.push(s as i64);
                nu.push(freqs[i % 4]);
                intensity.push(p * freqs[i % 4].powf(a));
            }
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        b.build().unwrap()
    }

    #[test]
    fn grouped_capture_produces_parameter_table() {
        let t = lofar_table();
        let (model, report) = fit_table_grouped(
            &t,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default(),
            2,
        )
        .unwrap();
        assert_eq!(report.success_count(), 3);
        assert!(model.overall_r2 > 0.999999);
        let i = model.predict_scalar(Some(0), &[("nu", 0.14)]).unwrap();
        assert!((i - 2.0 * 0.14_f64.powf(-0.7)).abs() < 1e-6);
        // The parameter table is ~64x smaller than the raw data here?
        // 3 groups × 4 numbers × 8B = 96B vs 120 rows × 3 cols × 8B.
        assert_eq!(model.params.byte_size(), 96);
    }

    #[test]
    fn global_capture_of_linear_model() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 0.5 * x).collect();
        let mut b = TableBuilder::new("t");
        b.add_f64("x", xs);
        b.add_f64("y", ys);
        let t = b.build().unwrap();
        let m = fit_table(&t, "y ~ a + b * x", &FitOptions::default()).unwrap();
        assert!(matches!(m.params, ModelParams::Global { .. }));
        assert!((m.predict_scalar(None, &[("x", 2.0)]).unwrap() - 2.0).abs() < 1e-9);
        assert!(m.overall_r2 > 0.999999);
    }

    #[test]
    fn predict_table_reconstructs_response() {
        let t = lofar_table();
        let (model, _) = fit_table_grouped(
            &t,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default(),
            1,
        )
        .unwrap();
        let pred = predict_table(&model, &t).unwrap();
        let actual = t.column("intensity").unwrap().f64_data().unwrap();
        for (p, a) in pred.iter().zip(actual) {
            assert!((p - a).abs() < 1e-6, "{p} vs {a}");
        }
    }

    #[test]
    fn predict_table_marks_unfitted_groups_nan() {
        let mut t = lofar_table();
        // Append a single-row group that cannot be fitted.
        t.append_rows(&[
            lawsdb_storage::Column::from_i64(vec![99]),
            lawsdb_storage::Column::from_f64(vec![0.15]),
            lawsdb_storage::Column::from_f64(vec![1.0]),
        ])
        .unwrap();
        let (model, report) = fit_table_grouped(
            &t,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default(),
            1,
        )
        .unwrap();
        assert_eq!(report.failure_count(), 1);
        let pred = predict_table(&model, &t).unwrap();
        assert!(pred.last().unwrap().is_nan());
        assert!(!pred[0].is_nan());
    }

    #[test]
    fn missing_formula_column_is_reported() {
        let t = lofar_table();
        assert!(fit_table(&t, "zz ~ a + b * nu", &FitOptions::default()).is_err());
    }
}
