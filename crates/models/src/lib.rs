//! # lawsdb-models
//!
//! Captured models and the model catalog — the paper's central artifact.
//!
//! After the interception layer (in `lawsdb-core`) fits a user model
//! inside the database, the result is a [`CapturedModel`]: the formula
//! *in its source form* ("we can store the models in their source code
//! form inside the database"), the fitted parameters — either one global
//! vector or a per-group parameter table like the paper's Table 1 — the
//! goodness-of-fit record, and the model's *coverage* (which table,
//! which rows, which value domains).
//!
//! The [`catalog::ModelCatalog`] stores every captured model with
//! versioning, answers "which model can reconstruct column C of table
//! T?", performs **model selection** among overlapping candidates
//! (Section 4.1's "multiple models" challenge — we pick by adjusted R²
//! then AIC), and handles **data-change invalidation** (Section 4.1's
//! "data or model changes": appended rows mark dependent models stale;
//! re-fitting either revalidates or retires them, and retired models are
//! kept — "a model with a previously poor fit [may become] relevant
//! again").
//!
//! Two related-work baselines live here because they are alternative
//! *model classes*, not query strategies:
//!
//! * [`piecewise`] — FunctionDB-style piecewise polynomial functions;
//! * [`grid`] — MauveDB-style gridded model-based views.

pub mod bridge;
pub mod catalog;
pub mod error;
pub mod grid;
pub mod model;
pub mod persist;
pub mod piecewise;

pub use catalog::ModelCatalog;
pub use error::{ModelError, Result};
pub use model::{CapturedModel, Coverage, GroupParams, ModelId, ModelParams, ModelState};
