//! Piecewise polynomial models — the FunctionDB baseline.
//!
//! Thiagarajan & Madden's FunctionDB (cited as \[19\] in the paper) fits
//! *piecewise polynomial functions* to data and queries them
//! algebraically. The paper argues such fixed model classes are
//! insufficient ("focusing on a single class of models … is unlikely to
//! cover enough ground"); experiment E11 quantifies that by fitting
//! piecewise polynomials to workloads whose true law is a power law or
//! a seasonal pattern and comparing accuracy and storage against
//! captured user models.
//!
//! Implementation: the x-domain is split into `segments` equal-width
//! intervals; each interval gets an independent least-squares polynomial
//! of degree `degree`. Evaluation dispatches on the interval (clamping
//! out-of-range inputs to the edge segments).

use crate::error::{ModelError, Result};
use lawsdb_linalg::{Matrix, Qr};

/// A fitted piecewise polynomial over one input variable.
#[derive(Debug, Clone)]
pub struct PiecewisePoly {
    /// Domain minimum.
    lo: f64,
    /// Domain maximum.
    hi: f64,
    /// Per-segment coefficient vectors, constant term first.
    coeffs: Vec<Vec<f64>>,
    /// Residual standard error of the overall fit.
    residual_se: f64,
    /// R² of the overall fit.
    r2: f64,
}

impl PiecewisePoly {
    /// Fit a piecewise polynomial.
    ///
    /// Requires at least `degree + 1` points per segment. Empty or thin
    /// segments fall back to the nearest fitted neighbor's coefficients.
    pub fn fit(x: &[f64], y: &[f64], segments: usize, degree: usize) -> Result<PiecewisePoly> {
        if x.len() != y.len() {
            return Err(ModelError::BadConstruction {
                detail: format!("x has {} points, y has {}", x.len(), y.len()),
            });
        }
        if segments == 0 {
            return Err(ModelError::BadConstruction {
                detail: "need at least one segment".to_string(),
            });
        }
        let finite: Vec<(f64, f64)> = x
            .iter()
            .zip(y)
            .filter(|(a, b)| a.is_finite() && b.is_finite())
            .map(|(a, b)| (*a, *b))
            .collect();
        if finite.len() < degree + 1 {
            return Err(ModelError::BadConstruction {
                detail: format!(
                    "{} finite points cannot fit degree {} polynomials",
                    finite.len(),
                    degree
                ),
            });
        }
        let lo = finite.iter().map(|(a, _)| *a).fold(f64::INFINITY, f64::min);
        let hi = finite.iter().map(|(a, _)| *a).fold(f64::NEG_INFINITY, f64::max);
        let width = ((hi - lo) / segments as f64).max(f64::MIN_POSITIVE);

        // Bucket points into segments.
        let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); segments];
        for &(a, b) in &finite {
            let s = (((a - lo) / width) as usize).min(segments - 1);
            buckets[s].push((a, b));
        }

        // Fit each populated segment.
        let mut coeffs: Vec<Option<Vec<f64>>> = vec![None; segments];
        for (s, pts) in buckets.iter().enumerate() {
            if pts.len() < degree + 1 {
                continue;
            }
            // Center x within the segment for conditioning.
            let cx = lo + (s as f64 + 0.5) * width;
            let design = Matrix::from_fn(pts.len(), degree + 1, |r, c| {
                (pts[r].0 - cx).powi(c as i32)
            });
            let ys: Vec<f64> = pts.iter().map(|(_, b)| *b).collect();
            if let Ok(qr) = Qr::new(&design) {
                if let Ok(beta) = qr.solve_least_squares(&ys) {
                    coeffs[s] = Some(beta);
                }
            }
        }
        // Fill gaps from the nearest fitted neighbor.
        let fitted: Vec<usize> = (0..segments).filter(|&s| coeffs[s].is_some()).collect();
        if fitted.is_empty() {
            return Err(ModelError::BadConstruction {
                detail: "no segment had enough points to fit".to_string(),
            });
        }
        for s in 0..segments {
            if coeffs[s].is_none() {
                let nearest = *fitted
                    .iter()
                    .min_by_key(|&&f| (f as i64 - s as i64).unsigned_abs())
                    .expect("fitted is non-empty");
                coeffs[s] = coeffs[nearest].clone();
            }
        }
        let coeffs: Vec<Vec<f64>> = coeffs.into_iter().map(|c| c.expect("filled")).collect();

        let mut pw = PiecewisePoly { lo, hi, coeffs, residual_se: 0.0, r2: 0.0 };
        // Overall quality.
        let preds: Vec<f64> = finite.iter().map(|(a, _)| pw.eval(*a)).collect();
        let rss: f64 = finite
            .iter()
            .zip(&preds)
            .map(|((_, b), p)| (b - p) * (b - p))
            .sum();
        let ys: Vec<f64> = finite.iter().map(|(_, b)| *b).collect();
        let tss = lawsdb_linalg::ops::total_sum_of_squares(&ys);
        let params = segments * (degree + 1);
        let dof = finite.len().saturating_sub(params);
        pw.residual_se = if dof > 0 { (rss / dof as f64).sqrt() } else { f64::NAN };
        pw.r2 = if tss > 0.0 { 1.0 - rss / tss } else { f64::NAN };
        Ok(pw)
    }

    /// Evaluate at one point (clamped to the fitted domain).
    pub fn eval(&self, x: f64) -> f64 {
        let segments = self.coeffs.len();
        let width = ((self.hi - self.lo) / segments as f64).max(f64::MIN_POSITIVE);
        let s = if x <= self.lo {
            0
        } else {
            (((x - self.lo) / width) as usize).min(segments - 1)
        };
        let cx = self.lo + (s as f64 + 0.5) * width;
        let dx = x - cx;
        // Horner evaluation.
        let c = &self.coeffs[s];
        let mut acc = 0.0;
        for &coef in c.iter().rev() {
            acc = acc * dx + coef;
        }
        acc
    }

    /// Evaluate a batch.
    pub fn eval_batch(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// R² of the fit.
    pub fn r2(&self) -> f64 {
        self.r2
    }

    /// Residual standard error of the fit.
    pub fn residual_se(&self) -> f64 {
        self.residual_se
    }

    /// Storage footprint: coefficients + domain bounds, 8 bytes each.
    pub fn byte_size(&self) -> usize {
        8 * (2 + self.coeffs.iter().map(Vec::len).sum::<usize>())
    }

    /// Number of segments.
    pub fn segments(&self) -> usize {
        self.coeffs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
    }

    #[test]
    fn exact_quadratic_is_reproduced_by_one_segment() {
        let xs = grid(50, -1.0, 1.0);
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + 2.0 * x - 3.0 * x * x).collect();
        let pw = PiecewisePoly::fit(&xs, &ys, 1, 2).unwrap();
        for &x in &xs {
            assert!((pw.eval(x) - (1.0 + 2.0 * x - 3.0 * x * x)).abs() < 1e-9);
        }
        assert!(pw.r2() > 0.999999);
    }

    #[test]
    fn more_segments_fit_a_power_law_better() {
        let xs = grid(400, 0.1, 2.0);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x.powf(-0.7)).collect();
        let coarse = PiecewisePoly::fit(&xs, &ys, 1, 1).unwrap();
        let fine = PiecewisePoly::fit(&xs, &ys, 16, 1).unwrap();
        assert!(fine.r2() > coarse.r2());
        assert!(fine.residual_se() < coarse.residual_se());
        // But the fine model stores far more numbers than {p, α}.
        assert!(fine.byte_size() > 16 * 8);
    }

    #[test]
    fn clamps_out_of_domain_queries() {
        let xs = grid(30, 0.0, 1.0);
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x).collect();
        let pw = PiecewisePoly::fit(&xs, &ys, 3, 1).unwrap();
        // Extrapolation uses the edge segments' polynomials.
        let below = pw.eval(-0.5);
        let above = pw.eval(1.5);
        assert!((below - (-1.0)).abs() < 1e-6);
        assert!((above - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_segments_borrow_neighbors() {
        // All points in the left half; right half has none.
        let xs: Vec<f64> = grid(40, 0.0, 0.5);
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 + x).collect();
        let mut x2 = xs.clone();
        let mut y2 = ys.clone();
        x2.push(1.0); // single point far right to widen the domain
        y2.push(2.0);
        let pw = PiecewisePoly::fit(&x2, &y2, 8, 1).unwrap();
        // Right-edge query answered from a borrowed polynomial, no NaN.
        assert!(pw.eval(0.95).is_finite());
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(PiecewisePoly::fit(&[1.0], &[1.0, 2.0], 2, 1).is_err());
        assert!(PiecewisePoly::fit(&[1.0, 2.0], &[1.0, 2.0], 0, 1).is_err());
        assert!(PiecewisePoly::fit(&[1.0], &[1.0], 1, 3).is_err());
        let nans = [f64::NAN, f64::NAN];
        assert!(PiecewisePoly::fit(&nans, &nans, 1, 0).is_err());
    }

    #[test]
    fn nan_points_are_skipped() {
        let xs = [0.0, 0.5, f64::NAN, 1.0, 1.5];
        let ys = [0.0, 1.0, 7.0, 2.0, 3.0];
        let pw = PiecewisePoly::fit(&xs, &ys, 1, 1).unwrap();
        assert!((pw.eval(1.0) - 2.0).abs() < 1e-9);
    }
}
