//! Model-catalog persistence.
//!
//! "We can store the models in their source code form inside the
//! database" (Section 3) — and across restarts. The format leans on
//! that insight: the model *body* is persisted as its formula source
//! text and re-parsed on load (the parser is the schema), while the
//! fitted numbers travel as little-endian scalars with varint framing.
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "LAWM" | crc32 u32-le of everything after it |
//! format version | next_id | model count
//! per model:
//!   id | version | state u8 | overall_r2 f64 |
//!   max_abs_residual (tag u8, f64 when present) |
//!   formula source | optional legal-filter source |
//!   coverage { table | response | variables | rows_at_fit |
//!              optional predicate | domains } |
//!   params: tag u8 (0 global, 1 grouped) { … }
//! ```
//!
//! The whole-image checksum (format v2) means *any* truncation or byte
//! flip of a stored image is a structured [`ModelError`], never a
//! silently wrong model — the property the corruption proptests pin
//! down. For crash safety the image rides the storage durability layer
//! via [`ModelCatalog::save_to_store`] /
//! [`ModelCatalog::load_from_store`].

use crate::catalog::ModelCatalog;
use crate::error::{ModelError, Result};
use crate::model::{CapturedModel, Coverage, GroupParams, ModelId, ModelParams, ModelState};
use lawsdb_storage::compress::varint;
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"LAWM";
const FORMAT_VERSION: u64 = 3;
/// Byte offset where the checksummed region starts (magic + crc32).
const BODY_START: usize = 8;

fn put_str(out: &mut Vec<u8>, s: &str) {
    varint::put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= buf.len()).ok_or_else(|| {
        ModelError::BadConstruction { detail: "truncated string".to_string() }
    })?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| ModelError::BadConstruction { detail: "invalid UTF-8".to_string() })?
        .to_string();
    *pos = end;
    Ok(s)
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_f64(buf: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).filter(|&e| e <= buf.len()).ok_or_else(|| {
        ModelError::BadConstruction { detail: "truncated f64".to_string() }
    })?;
    let v = f64::from_le_bytes(buf[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(v)
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_str(out, s);
        }
    }
}

fn get_opt_str(buf: &[u8], pos: &mut usize) -> Result<Option<String>> {
    let tag = *buf.get(*pos).ok_or_else(|| ModelError::BadConstruction {
        detail: "truncated option tag".to_string(),
    })?;
    *pos += 1;
    match tag {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf, pos)?)),
        other => Err(ModelError::BadConstruction {
            detail: format!("bad option tag {other}"),
        }),
    }
}

fn encode_model(out: &mut Vec<u8>, m: &CapturedModel) {
    varint::put_u64(out, m.id.0);
    varint::put_u64(out, m.version as u64);
    out.push(match m.state {
        ModelState::Active => 0,
        ModelState::Stale => 1,
        ModelState::Retired => 2,
    });
    put_f64(out, m.overall_r2);
    match m.max_abs_residual {
        None => out.push(0),
        Some(b) => {
            out.push(1);
            put_f64(out, b);
        }
    }
    put_str(out, &m.formula_source);
    put_opt_str(out, m.legal_filter.as_ref().map(|e| e.to_string()).as_deref());
    // Coverage.
    put_str(out, &m.coverage.table);
    put_str(out, &m.coverage.response);
    varint::put_u64(out, m.coverage.variables.len() as u64);
    for v in &m.coverage.variables {
        put_str(out, v);
    }
    varint::put_u64(out, m.coverage.rows_at_fit as u64);
    put_opt_str(out, m.coverage.predicate.as_deref());
    varint::put_u64(out, m.coverage.domains.len() as u64);
    for (name, vals) in &m.coverage.domains {
        put_str(out, name);
        varint::put_u64(out, vals.len() as u64);
        for &v in vals {
            put_f64(out, v);
        }
    }
    // Params.
    match &m.params {
        ModelParams::Global { names, values, residual_se, r2, n } => {
            out.push(0);
            varint::put_u64(out, names.len() as u64);
            for (name, &v) in names.iter().zip(values) {
                put_str(out, name);
                put_f64(out, v);
            }
            put_f64(out, *residual_se);
            put_f64(out, *r2);
            varint::put_u64(out, *n as u64);
        }
        ModelParams::Grouped { group_column, names, groups } => {
            out.push(1);
            put_str(out, group_column);
            varint::put_u64(out, names.len() as u64);
            for name in names {
                put_str(out, name);
            }
            varint::put_u64(out, groups.len() as u64);
            let mut keys: Vec<i64> = groups.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                let g = &groups[&k];
                varint::put_i64(out, k);
                for &v in &g.values {
                    put_f64(out, v);
                }
                put_f64(out, g.residual_se);
                put_f64(out, g.r2);
                varint::put_u64(out, g.n as u64);
            }
        }
    }
}

fn decode_model(buf: &[u8], pos: &mut usize) -> Result<CapturedModel> {
    let bad = |d: &str| ModelError::BadConstruction { detail: d.to_string() };
    let id = ModelId(varint::get_u64(buf, pos).map_err(ModelError::Storage)?);
    let version = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as u32;
    let state = match buf.get(*pos) {
        Some(0) => ModelState::Active,
        Some(1) => ModelState::Stale,
        Some(2) => ModelState::Retired,
        _ => return Err(bad("bad state tag")),
    };
    *pos += 1;
    let overall_r2 = get_f64(buf, pos)?;
    let max_abs_residual = match buf.get(*pos) {
        Some(0) => {
            *pos += 1;
            None
        }
        Some(1) => {
            *pos += 1;
            Some(get_f64(buf, pos)?)
        }
        _ => return Err(bad("bad residual-bound tag")),
    };
    let formula_source = get_str(buf, pos)?;
    let legal_src = get_opt_str(buf, pos)?;
    let formula = lawsdb_expr::parse_formula(&formula_source)?;
    let legal_filter = match legal_src {
        None => None,
        Some(src) => Some(lawsdb_expr::parse_expr(&src)?),
    };
    // Coverage.
    let table = get_str(buf, pos)?;
    let response = get_str(buf, pos)?;
    let nvars = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
    if nvars > buf.len() {
        return Err(bad("implausible variable count"));
    }
    let mut variables = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        variables.push(get_str(buf, pos)?);
    }
    let rows_at_fit = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
    let predicate = get_opt_str(buf, pos)?;
    let ndomains = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
    if ndomains > buf.len() {
        return Err(bad("implausible domain count"));
    }
    let mut domains = Vec::with_capacity(ndomains);
    for _ in 0..ndomains {
        let name = get_str(buf, pos)?;
        let nvals = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
        if nvals > buf.len() {
            return Err(bad("implausible domain size"));
        }
        let mut vals = Vec::with_capacity(nvals);
        for _ in 0..nvals {
            vals.push(get_f64(buf, pos)?);
        }
        domains.push((name, vals));
    }
    // Params.
    let tag = *buf.get(*pos).ok_or_else(|| bad("truncated params tag"))?;
    *pos += 1;
    let params = match tag {
        0 => {
            let np = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
            if np > buf.len() {
                return Err(bad("implausible param count"));
            }
            let mut names = Vec::with_capacity(np);
            let mut values = Vec::with_capacity(np);
            for _ in 0..np {
                names.push(get_str(buf, pos)?);
                values.push(get_f64(buf, pos)?);
            }
            let residual_se = get_f64(buf, pos)?;
            let r2 = get_f64(buf, pos)?;
            let n = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
            ModelParams::Global { names, values, residual_se, r2, n }
        }
        1 => {
            let group_column = get_str(buf, pos)?;
            let np = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
            if np > buf.len() {
                return Err(bad("implausible param count"));
            }
            let mut names = Vec::with_capacity(np);
            for _ in 0..np {
                names.push(get_str(buf, pos)?);
            }
            let ngroups = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
            if ngroups > buf.len() {
                return Err(bad("implausible group count"));
            }
            let mut groups = HashMap::with_capacity(ngroups);
            for _ in 0..ngroups {
                let key = varint::get_i64(buf, pos).map_err(ModelError::Storage)?;
                let mut values = Vec::with_capacity(np);
                for _ in 0..np {
                    values.push(get_f64(buf, pos)?);
                }
                let residual_se = get_f64(buf, pos)?;
                let r2 = get_f64(buf, pos)?;
                let n = varint::get_u64(buf, pos).map_err(ModelError::Storage)? as usize;
                groups.insert(key, GroupParams { values, residual_se, r2, n });
            }
            ModelParams::Grouped { group_column, names, groups }
        }
        other => return Err(bad(&format!("bad params tag {other}"))),
    };
    Ok(CapturedModel {
        id,
        version,
        formula_source,
        rhs: formula.rhs,
        params,
        coverage: Coverage { table, response, variables, rows_at_fit, predicate, domains },
        overall_r2,
        max_abs_residual,
        state,
        legal_filter,
    })
}

impl ModelCatalog {
    /// Serialize the whole catalog (all versions, all states).
    pub fn to_bytes(&self) -> Vec<u8> {
        let (next_id, models) = self.snapshot();
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&[0; 4]); // crc placeholder
        varint::put_u64(&mut out, FORMAT_VERSION);
        varint::put_u64(&mut out, next_id);
        varint::put_u64(&mut out, models.len() as u64);
        for m in &models {
            encode_model(&mut out, m);
        }
        let crc = lawsdb_storage::crc32(&out[BODY_START..]).to_le_bytes();
        out[4..BODY_START].copy_from_slice(&crc);
        out
    }

    /// Rebuild a catalog from [`ModelCatalog::to_bytes`] output.
    pub fn from_bytes(buf: &[u8]) -> Result<ModelCatalog> {
        let bad = |d: &str| ModelError::BadConstruction { detail: d.to_string() };
        if buf.len() < BODY_START || &buf[..4] != MAGIC {
            return Err(bad("missing LAWM magic"));
        }
        let stored = u32::from_le_bytes(buf[4..BODY_START].try_into().expect("4 bytes"));
        if lawsdb_storage::crc32(&buf[BODY_START..]) != stored {
            return Err(bad("catalog image checksum mismatch"));
        }
        let mut pos = BODY_START;
        let version = varint::get_u64(buf, &mut pos).map_err(ModelError::Storage)?;
        if version != FORMAT_VERSION {
            return Err(bad(&format!("unsupported format version {version}")));
        }
        let next_id = varint::get_u64(buf, &mut pos).map_err(ModelError::Storage)?;
        let count = varint::get_u64(buf, &mut pos).map_err(ModelError::Storage)? as usize;
        if count > buf.len() {
            return Err(bad("implausible model count"));
        }
        let mut models = Vec::with_capacity(count);
        for _ in 0..count {
            models.push(decode_model(buf, &mut pos)?);
        }
        Ok(ModelCatalog::restore(next_id, models))
    }

    /// Write the catalog to a file.
    pub fn save_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Load a catalog from a file written by [`ModelCatalog::save_to`].
    pub fn load_from(path: &std::path::Path) -> Result<ModelCatalog> {
        let bytes = std::fs::read(path).map_err(|e| ModelError::BadConstruction {
            detail: format!("cannot read {}: {e}", path.display()),
        })?;
        ModelCatalog::from_bytes(&bytes)
    }

    /// Persist the catalog image into a crash-safe store as one atomic
    /// commit — the durable counterpart of [`ModelCatalog::save_to`].
    pub fn save_to_store<D: lawsdb_storage::BlockDevice>(
        &self,
        store: &mut lawsdb_storage::DurableStore<D>,
    ) -> Result<()> {
        store.put_catalog(&self.to_bytes()).map_err(ModelError::Storage)
    }

    /// Load the catalog image a crash-safe store recovered to; an empty
    /// catalog if none was ever committed.
    pub fn load_from_store<D: lawsdb_storage::BlockDevice>(
        store: &lawsdb_storage::DurableStore<D>,
    ) -> Result<ModelCatalog> {
        match store.catalog().map_err(ModelError::Storage)? {
            Some(bytes) => ModelCatalog::from_bytes(&bytes),
            None => Ok(ModelCatalog::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_fit::FitOptions;
    use lawsdb_models_test_helpers::lofar_model;

    /// Local helper namespace (kept in-file to avoid a test-support crate).
    mod lawsdb_models_test_helpers {
        use crate::bridge::fit_table_grouped;
        use crate::CapturedModel;
        use lawsdb_fit::FitOptions;
        use lawsdb_storage::TableBuilder;

        pub fn lofar_model(options: &FitOptions) -> CapturedModel {
            let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
            let mut src = Vec::new();
            let mut nu = Vec::new();
            let mut intensity = Vec::new();
            for s in 0..5i64 {
                let (p, a) = (1.0 + s as f64 * 0.4, -0.6 - s as f64 * 0.1);
                for i in 0..40 {
                    src.push(s);
                    nu.push(freqs[i % 4]);
                    intensity.push(p * freqs[i % 4].powf(a));
                }
            }
            let mut b = TableBuilder::new("measurements");
            b.add_i64("source", src);
            b.add_f64("nu", nu);
            b.add_f64("intensity", intensity);
            fit_table_grouped(
                &b.build().unwrap(),
                "intensity ~ p * nu ^ alpha",
                "source",
                options,
                1,
            )
            .unwrap()
            .0
        }
    }

    #[test]
    fn catalog_roundtrips_through_bytes() {
        let catalog = ModelCatalog::new();
        let opts = FitOptions::default().with_initial("alpha", -0.7);
        let m1 = catalog.store(lofar_model(&opts));
        let m2 = catalog.store(
            lofar_model(&opts)
                .with_legal_filter("nu >= 0.12 && nu <= 0.18")
                .unwrap(),
        );
        catalog.set_state(m1.id, ModelState::Retired).unwrap();

        let bytes = catalog.to_bytes();
        let restored = ModelCatalog::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), 2);

        let r1 = restored.get(m1.id).unwrap();
        assert_eq!(r1.state, ModelState::Retired);
        assert_eq!(r1.formula_source, m1.formula_source);
        assert_eq!(r1.params, m1.params);
        assert_eq!(r1.coverage, m1.coverage);

        let r2m = restored.get(m2.id).unwrap();
        assert!(r2m.legal_filter.is_some());
        // The restored model predicts identically.
        let a = m2.predict_scalar(Some(3), &[("nu", 0.14)]).unwrap();
        let b = r2m.predict_scalar(Some(3), &[("nu", 0.14)]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // Id allocation continues where it left off.
        let m3 = restored.store(lofar_model(&opts));
        assert!(m3.id.0 > m2.id.0);
    }

    #[test]
    fn file_roundtrip() {
        let catalog = ModelCatalog::new();
        let opts = FitOptions::default().with_initial("alpha", -0.7);
        catalog.store(lofar_model(&opts));
        let dir = std::env::temp_dir().join("lawsdb_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("catalog.lawm");
        catalog.save_to(&path).unwrap();
        let restored = ModelCatalog::load_from(&path).unwrap();
        assert_eq!(restored.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_panicking() {
        assert!(ModelCatalog::from_bytes(b"").is_err());
        assert!(ModelCatalog::from_bytes(b"XXXX").is_err());
        let catalog = ModelCatalog::new();
        let opts = FitOptions::default().with_initial("alpha", -0.7);
        catalog.store(lofar_model(&opts));
        let bytes = catalog.to_bytes();
        // Truncations at every prefix must error, never panic.
        for cut in [5, 10, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(ModelCatalog::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // The whole-image checksum catches any single-byte flip.
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x01;
            assert!(ModelCatalog::from_bytes(&flipped).is_err(), "byte {i}");
        }
    }

    #[test]
    fn catalog_rides_the_durable_store() {
        use lawsdb_storage::{DurableStore, SimulatedDevice};
        let catalog = ModelCatalog::new();
        let opts = FitOptions::default().with_initial("alpha", -0.7);
        let m = catalog.store(lofar_model(&opts));
        let mut store = DurableStore::new(SimulatedDevice::new(256), 8);
        store.recover().unwrap();
        catalog.save_to_store(&mut store).unwrap();
        // Simulate a restart: re-open the device and recover.
        let mut store = DurableStore::new(store.into_device(), 8);
        store.recover().unwrap();
        let restored = ModelCatalog::load_from_store(&store).unwrap();
        assert_eq!(restored.len(), 1);
        let r = restored.get(m.id).unwrap();
        let a = m.predict_scalar(Some(2), &[("nu", 0.15)]).unwrap();
        let b = r.predict_scalar(Some(2), &[("nu", 0.15)]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        // A store with no catalog loads as empty.
        let mut empty = DurableStore::new(SimulatedDevice::new(256), 8);
        empty.recover().unwrap();
        assert_eq!(ModelCatalog::load_from_store(&empty).unwrap().len(), 0);
    }
}
