//! Errors for model capture and catalog operations.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors produced by the model layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// No captured model covers the requested table/column.
    NoModelFor {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// A model id was not found in the catalog.
    UnknownModel {
        /// The id.
        id: u64,
    },
    /// The model has no parameters for the requested group.
    UnknownGroup {
        /// Group key.
        key: i64,
    },
    /// A prediction was requested without values for required inputs.
    MissingInput {
        /// The missing variable.
        variable: String,
    },
    /// The model is stale (data changed since the fit) and the caller
    /// required freshness.
    Stale {
        /// Model id.
        id: u64,
    },
    /// Underlying fit failure.
    Fit(lawsdb_fit::FitError),
    /// Underlying expression failure.
    Expr(lawsdb_expr::ExprError),
    /// Underlying storage failure.
    Storage(lawsdb_storage::StorageError),
    /// Piecewise/grid construction problem.
    BadConstruction {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NoModelFor { table, column } => {
                write!(f, "no captured model covers {table}.{column}")
            }
            ModelError::UnknownModel { id } => write!(f, "no model with id {id}"),
            ModelError::UnknownGroup { key } => {
                write!(f, "model has no parameters for group {key}")
            }
            ModelError::MissingInput { variable } => {
                write!(f, "prediction requires a value for {variable:?}")
            }
            ModelError::Stale { id } => write!(f, "model {id} is stale"),
            ModelError::Fit(e) => write!(f, "fit error: {e}"),
            ModelError::Expr(e) => write!(f, "expression error: {e}"),
            ModelError::Storage(e) => write!(f, "storage error: {e}"),
            ModelError::BadConstruction { detail } => write!(f, "bad construction: {detail}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Fit(e) => Some(e),
            ModelError::Expr(e) => Some(e),
            ModelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lawsdb_fit::FitError> for ModelError {
    fn from(e: lawsdb_fit::FitError) -> Self {
        ModelError::Fit(e)
    }
}
impl From<lawsdb_expr::ExprError> for ModelError {
    fn from(e: lawsdb_expr::ExprError) -> Self {
        ModelError::Expr(e)
    }
}
impl From<lawsdb_storage::StorageError> for ModelError {
    fn from(e: lawsdb_storage::StorageError) -> Self {
        ModelError::Storage(e)
    }
}
