//! The captured model artifact.

use crate::error::{ModelError, Result};
use lawsdb_expr::compile::ExecStack;
use lawsdb_expr::{parse_expr, Bindings, CompiledExpr, Expr};
use std::collections::HashMap;

/// Opaque model identifier assigned by the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(pub u64);

/// Lifecycle state of a captured model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelState {
    /// Judged good and current: usable for approximate answers and
    /// semantic compression.
    Active,
    /// The underlying data changed since the fit; usable only if the
    /// caller tolerates staleness, pending a re-fit.
    Stale,
    /// Superseded or judged poor — kept, because "changing or added
    /// observations … could also make a model with a previously poor
    /// fit relevant again" (Section 4.1).
    Retired,
}

/// Fitted parameters of one group in a grouped model.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupParams {
    /// Parameter values in `param_names` order.
    pub values: Vec<f64>,
    /// Residual standard error of this group's fit (the per-group error
    /// bound attached to approximate answers).
    pub residual_se: f64,
    /// R² of this group's fit.
    pub r2: f64,
    /// Observations behind the fit.
    pub n: usize,
}

/// A model's fitted parameters: one global vector, or one vector per
/// group ("we would get a set of model parameters for each aggregation
/// group", Section 4.1).
#[derive(Debug, Clone, PartialEq)]
pub enum ModelParams {
    /// Single parameter vector for the whole coverage.
    Global {
        /// Parameter names, sorted.
        names: Vec<String>,
        /// Values in `names` order.
        values: Vec<f64>,
        /// Residual standard error.
        residual_se: f64,
        /// R².
        r2: f64,
        /// Observations behind the fit.
        n: usize,
    },
    /// One parameter vector per group key.
    Grouped {
        /// The grouping column (the LOFAR source id).
        group_column: String,
        /// Parameter names, sorted.
        names: Vec<String>,
        /// Per-group parameters keyed by group value.
        groups: HashMap<i64, GroupParams>,
    },
}

impl ModelParams {
    /// Parameter names.
    pub fn names(&self) -> &[String] {
        match self {
            ModelParams::Global { names, .. } | ModelParams::Grouped { names, .. } => names,
        }
    }

    /// Number of parameter vectors stored (1 or the group count).
    pub fn vector_count(&self) -> usize {
        match self {
            ModelParams::Global { .. } => 1,
            ModelParams::Grouped { groups, .. } => groups.len(),
        }
    }

    /// Storage footprint in bytes: 8 bytes per stored number (group key,
    /// each parameter, residual SE) — the measure behind Table 1's
    /// "640 KB of model parameters".
    pub fn byte_size(&self) -> usize {
        match self {
            ModelParams::Global { values, .. } => 8 * (values.len() + 1),
            ModelParams::Grouped { names, groups, .. } => {
                groups.len() * 8 * (names.len() + 2)
            }
        }
    }
}

/// What part of the database the model describes.
#[derive(Debug, Clone, PartialEq)]
pub struct Coverage {
    /// The covered table.
    pub table: String,
    /// The reconstructed (response) column.
    pub response: String,
    /// Input-variable columns.
    pub variables: Vec<String>,
    /// Row count of the table at fit time — the staleness trigger.
    pub rows_at_fit: usize,
    /// Source text of the predicate the fitted subset satisfied, if the
    /// model was fit on a filtered view (Section 4.1's *partial models*
    /// challenge). `None` means the whole table.
    pub predicate: Option<String>,
    /// Enumerated value domains of the input variables, captured at fit
    /// time (the paper's enumerable columns: "our telescope only creates
    /// observations at a small set of frequencies"). Variables absent
    /// here were not enumerable; queries that leave them unbound cannot
    /// be answered by parameter-space enumeration.
    pub domains: Vec<(String, Vec<f64>)>,
}

impl Coverage {
    /// Enumerated domain of one variable, if it was enumerable.
    pub fn domain_of(&self, variable: &str) -> Option<&[f64]> {
        self.domains
            .iter()
            .find(|(n, _)| n == variable)
            .map(|(_, v)| v.as_slice())
    }
}

/// A captured user model: formula in source form, fitted parameters,
/// quality record and coverage. Immutable once stored — re-fits create
/// new versions via the catalog.
#[derive(Debug, Clone)]
pub struct CapturedModel {
    /// Catalog-assigned id.
    pub id: ModelId,
    /// Monotonic version among models covering the same (table,
    /// response).
    pub version: u32,
    /// Formula exactly as the user wrote it.
    pub formula_source: String,
    /// Parsed model body.
    pub rhs: Expr,
    /// Fitted parameters.
    pub params: ModelParams,
    /// Coverage description.
    pub coverage: Coverage,
    /// Pooled R² over the coverage (grouped: 1 − ΣRSS/ΣTSS).
    pub overall_r2: f64,
    /// Largest |actual − predicted| observed over the fitted rows, if
    /// any row had both values finite. This is the model-synopsis
    /// pruning bound: every stored response value lies within
    /// `prediction ± max_abs_residual`, so a scan can refute a
    /// predicate against the model without reading the column.
    pub max_abs_residual: Option<f64>,
    /// Lifecycle state.
    pub state: ModelState,
    /// Optional legal-domain filter for parameter-space enumeration
    /// (Section 4.2: "require the model implementation to restrict the
    /// legal values of the parameter space … by supplying a filter
    /// function").
    pub legal_filter: Option<Expr>,
}

impl CapturedModel {
    /// Bind this model's parameters for one group (or the global vector)
    /// into `Bindings`, ready for evaluation.
    fn bind_params(&self, group: Option<i64>, b: &mut Bindings) -> Result<()> {
        match (&self.params, group) {
            (ModelParams::Global { names, values, .. }, _) => {
                for (n, v) in names.iter().zip(values) {
                    b.set(n, *v);
                }
                Ok(())
            }
            (ModelParams::Grouped { names, groups, .. }, Some(key)) => {
                let g = groups.get(&key).ok_or(ModelError::UnknownGroup { key })?;
                for (n, v) in names.iter().zip(&g.values) {
                    b.set(n, *v);
                }
                Ok(())
            }
            (ModelParams::Grouped { group_column, .. }, None) => {
                Err(ModelError::MissingInput { variable: group_column.clone() })
            }
        }
    }

    /// Predict the response for one input point.
    ///
    /// `group` selects the parameter vector for grouped models; `inputs`
    /// must bind every input variable.
    pub fn predict_scalar(&self, group: Option<i64>, inputs: &[(&str, f64)]) -> Result<f64> {
        let mut b = Bindings::new();
        for (k, v) in inputs {
            b.set(k, *v);
        }
        self.bind_params(group, &mut b)?;
        for v in &self.coverage.variables {
            if b.get(v).is_none() {
                return Err(ModelError::MissingInput { variable: v.clone() });
            }
        }
        Ok(self.rhs.eval(&b)?)
    }

    /// Predict the response for a batch of input points of one group.
    ///
    /// `columns` supplies one slice per coverage variable, in
    /// [`Coverage::variables`] order.
    pub fn predict_batch(&self, group: Option<i64>, columns: &[&[f64]]) -> Result<Vec<f64>> {
        if columns.len() != self.coverage.variables.len() {
            return Err(ModelError::MissingInput {
                variable: format!(
                    "expected {} input columns, got {}",
                    self.coverage.variables.len(),
                    columns.len()
                ),
            });
        }
        let compiled = self.compile()?;
        let mut b = Bindings::new();
        self.bind_params(group, &mut b)?;
        let scalars: Vec<f64> = compiled
            .scalars()
            .iter()
            .map(|s| b.get(s).ok_or_else(|| ModelError::MissingInput { variable: s.clone() }))
            .collect::<Result<_>>()?;
        // Map compiled column order back to coverage order.
        let cols: Vec<&[f64]> = compiled
            .columns()
            .iter()
            .map(|c| {
                self.coverage
                    .variables
                    .iter()
                    .position(|v| v == c)
                    .map(|i| columns[i])
                    .ok_or_else(|| ModelError::MissingInput { variable: c.clone() })
            })
            .collect::<Result<_>>()?;
        let n = columns.first().map_or(1, |c| c.len());
        let mut stack = ExecStack::default();
        let v = compiled.eval_batch_with(&cols, &scalars, &mut stack)?;
        Ok(if v.len() == 1 && n != 1 { vec![v[0]; n] } else { v })
    }

    /// Compile the model body against its coverage variables.
    pub fn compile(&self) -> Result<CompiledExpr> {
        let vars: Vec<&str> = self.coverage.variables.iter().map(String::as_str).collect();
        Ok(CompiledExpr::compile(&self.rhs, &vars)?)
    }

    /// The error bound attached to approximate answers from this model:
    /// the residual SE of the chosen group (grouped) or of the fit
    /// (global). Approximate answers quote ±2·SE (~95% under Gaussian
    /// residuals).
    pub fn error_bound(&self, group: Option<i64>) -> Result<f64> {
        match (&self.params, group) {
            (ModelParams::Global { residual_se, .. }, _) => Ok(*residual_se),
            (ModelParams::Grouped { groups, .. }, Some(key)) => groups
                .get(&key)
                .map(|g| g.residual_se)
                .ok_or(ModelError::UnknownGroup { key }),
            (ModelParams::Grouped { group_column, .. }, None) => {
                Err(ModelError::MissingInput { variable: group_column.clone() })
            }
        }
    }

    /// Check whether an input point satisfies the legal-domain filter
    /// (vacuously true when no filter was supplied).
    pub fn is_legal(&self, inputs: &[(&str, f64)]) -> Result<bool> {
        match &self.legal_filter {
            None => Ok(true),
            Some(f) => {
                let mut b = Bindings::new();
                for (k, v) in inputs {
                    b.set(k, *v);
                }
                Ok(f.eval(&b)? != 0.0)
            }
        }
    }

    /// Group keys for grouped models, sorted (the enumerable "source"
    /// dimension of the parameter space).
    pub fn group_keys(&self) -> Vec<i64> {
        match &self.params {
            ModelParams::Global { .. } => Vec::new(),
            ModelParams::Grouped { groups, .. } => {
                let mut ks: Vec<i64> = groups.keys().copied().collect();
                ks.sort_unstable();
                ks
            }
        }
    }

    /// Attach a legal-domain filter expression (builder-style).
    pub fn with_legal_filter(mut self, source: &str) -> Result<CapturedModel> {
        self.legal_filter = Some(parse_expr(source)?);
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_expr::parse_formula;

    /// A hand-built grouped power-law model with two sources.
    pub(crate) fn power_law_model() -> CapturedModel {
        let f = parse_formula("intensity ~ p * nu ^ alpha").unwrap();
        let mut groups = HashMap::new();
        groups.insert(
            42,
            GroupParams { values: vec![-0.7, 2.0], residual_se: 0.01, r2: 0.99, n: 40 },
        );
        groups.insert(
            7,
            GroupParams { values: vec![-1.2, 0.5], residual_se: 0.02, r2: 0.95, n: 40 },
        );
        CapturedModel {
            id: ModelId(1),
            version: 1,
            formula_source: f.source.clone(),
            rhs: f.rhs.clone(),
            params: ModelParams::Grouped {
                group_column: "source".to_string(),
                names: vec!["alpha".to_string(), "p".to_string()],
                groups,
            },
            coverage: Coverage {
                table: "measurements".to_string(),
                response: "intensity".to_string(),
                variables: vec!["nu".to_string()],
                rows_at_fit: 80,
                predicate: None,
                domains: Vec::new(),
            },
            overall_r2: 0.97,
            max_abs_residual: None,
            state: ModelState::Active,
            legal_filter: None,
        }
    }

    #[test]
    fn scalar_prediction_per_group() {
        let m = power_law_model();
        let i42 = m.predict_scalar(Some(42), &[("nu", 0.14)]).unwrap();
        assert!((i42 - 2.0 * 0.14_f64.powf(-0.7)).abs() < 1e-12);
        let i7 = m.predict_scalar(Some(7), &[("nu", 0.14)]).unwrap();
        assert!((i7 - 0.5 * 0.14_f64.powf(-1.2)).abs() < 1e-12);
    }

    #[test]
    fn unknown_group_and_missing_inputs_error() {
        let m = power_law_model();
        assert!(matches!(
            m.predict_scalar(Some(999), &[("nu", 0.14)]),
            Err(ModelError::UnknownGroup { key: 999 })
        ));
        assert!(matches!(
            m.predict_scalar(Some(42), &[]),
            Err(ModelError::MissingInput { .. })
        ));
        assert!(matches!(
            m.predict_scalar(None, &[("nu", 0.14)]),
            Err(ModelError::MissingInput { .. })
        ));
    }

    #[test]
    fn batch_prediction_matches_scalar() {
        let m = power_law_model();
        let nus = [0.12, 0.15, 0.16, 0.18];
        let batch = m.predict_batch(Some(42), &[&nus]).unwrap();
        for (i, &nu) in nus.iter().enumerate() {
            let s = m.predict_scalar(Some(42), &[("nu", nu)]).unwrap();
            assert!((batch[i] - s).abs() < 1e-14);
        }
    }

    #[test]
    fn error_bound_is_group_residual_se() {
        let m = power_law_model();
        assert_eq!(m.error_bound(Some(42)).unwrap(), 0.01);
        assert_eq!(m.error_bound(Some(7)).unwrap(), 0.02);
        assert!(m.error_bound(None).is_err());
    }

    #[test]
    fn legal_filter_gates_inputs() {
        let m = power_law_model()
            .with_legal_filter("nu >= 0.12 && nu <= 0.18")
            .unwrap();
        assert!(m.is_legal(&[("nu", 0.14)]).unwrap());
        assert!(!m.is_legal(&[("nu", 0.5)]).unwrap());
        let unfiltered = power_law_model();
        assert!(unfiltered.is_legal(&[("nu", 99.0)]).unwrap());
    }

    #[test]
    fn byte_size_matches_paper_accounting() {
        let m = power_law_model();
        // 2 groups × (key + 2 params + rse) × 8 = 64 bytes.
        assert_eq!(m.params.byte_size(), 64);
        assert_eq!(m.params.vector_count(), 2);
        assert_eq!(m.group_keys(), vec![7, 42]);
    }

    #[test]
    fn global_model_prediction() {
        let f = parse_formula("y ~ a + b * x").unwrap();
        let m = CapturedModel {
            id: ModelId(2),
            version: 1,
            formula_source: f.source.clone(),
            rhs: f.rhs.clone(),
            params: ModelParams::Global {
                names: vec!["a".to_string(), "b".to_string()],
                values: vec![1.0, 2.0],
                residual_se: 0.1,
                r2: 0.99,
                n: 100,
            },
            coverage: Coverage {
                table: "t".to_string(),
                response: "y".to_string(),
                variables: vec!["x".to_string()],
                rows_at_fit: 100,
                predicate: None,
                domains: Vec::new(),
            },
            overall_r2: 0.99,
            max_abs_residual: None,
            state: ModelState::Active,
            legal_filter: None,
        };
        assert_eq!(m.predict_scalar(None, &[("x", 3.0)]).unwrap(), 7.0);
        // Group argument is ignored for global models.
        assert_eq!(m.predict_scalar(Some(5), &[("x", 3.0)]).unwrap(), 7.0);
        assert_eq!(m.error_bound(None).unwrap(), 0.1);
        assert_eq!(m.params.byte_size(), 24);
    }
}
