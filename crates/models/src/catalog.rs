//! The model catalog: storage, versioning, selection and invalidation
//! of captured models.

use crate::error::{ModelError, Result};
use crate::model::{CapturedModel, ModelId, ModelState};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Thread-safe registry of captured models.
///
/// Models are immutable `Arc` snapshots; state transitions (stale,
/// retired) replace the stored Arc, so concurrent readers keep whatever
/// version they resolved — the same discipline the table catalog uses.
///
/// Like the table catalog, every mutation (store, state transition,
/// invalidation) bumps an *epoch*; plan caches combine it with the
/// table epoch so a refit or demotion invalidates cached access-path
/// choices that assumed a model was (or wasn't) available.
#[derive(Debug, Default)]
pub struct ModelCatalog {
    inner: RwLock<Inner>,
    epoch: AtomicU64,
}

#[derive(Debug, Default)]
struct Inner {
    next_id: u64,
    models: BTreeMap<u64, Arc<CapturedModel>>,
}

impl ModelCatalog {
    /// Empty catalog.
    pub fn new() -> ModelCatalog {
        ModelCatalog::default()
    }

    /// Current model-catalog epoch. Bumped on every `store`,
    /// `set_state` and non-empty `invalidate_table`; never decreases.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Store a captured model, assigning its id and version. Returns the
    /// stored snapshot.
    pub fn store(&self, mut model: CapturedModel) -> Arc<CapturedModel> {
        let mut inner = self.inner.write();
        inner.next_id += 1;
        let id = inner.next_id;
        // Version = 1 + highest version among same-coverage models.
        let version = inner
            .models
            .values()
            .filter(|m| {
                m.coverage.table == model.coverage.table
                    && m.coverage.response == model.coverage.response
            })
            .map(|m| m.version)
            .max()
            .unwrap_or(0)
            + 1;
        model.id = ModelId(id);
        model.version = version;
        let arc = Arc::new(model);
        inner.models.insert(id, Arc::clone(&arc));
        drop(inner);
        self.bump_epoch();
        arc
    }

    /// Model by id.
    pub fn get(&self, id: ModelId) -> Result<Arc<CapturedModel>> {
        self.inner
            .read()
            .models
            .get(&id.0)
            .cloned()
            .ok_or(ModelError::UnknownModel { id: id.0 })
    }

    /// All models, ordered by id.
    pub fn all(&self) -> Vec<Arc<CapturedModel>> {
        self.inner.read().models.values().cloned().collect()
    }

    /// Number of stored models.
    pub fn len(&self) -> usize {
        self.inner.read().models.len()
    }

    /// True when no models are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All models covering `(table, response)`, any state, ordered by id.
    pub fn models_for(&self, table: &str, response: &str) -> Vec<Arc<CapturedModel>> {
        self.inner
            .read()
            .models
            .values()
            .filter(|m| m.coverage.table == table && m.coverage.response == response)
            .cloned()
            .collect()
    }

    /// **Model selection** (Section 4.1, "multiple models"): among the
    /// *active* models that can reconstruct `(table, response)`, pick
    /// the one with the highest pooled R²; ties break to the newest
    /// version. `allow_stale` widens the candidate set to stale models
    /// (an approximate-query caller may accept bounded staleness).
    pub fn best_for(
        &self,
        table: &str,
        response: &str,
        allow_stale: bool,
    ) -> Result<Arc<CapturedModel>> {
        let candidates: Vec<Arc<CapturedModel>> = self
            .models_for(table, response)
            .into_iter()
            .filter(|m| {
                m.state == ModelState::Active
                    || (allow_stale && m.state == ModelState::Stale)
            })
            .collect();
        candidates
            .into_iter()
            .max_by(|a, b| {
                let ra = if a.overall_r2.is_nan() { f64::NEG_INFINITY } else { a.overall_r2 };
                let rb = if b.overall_r2.is_nan() { f64::NEG_INFINITY } else { b.overall_r2 };
                ra.partial_cmp(&rb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.version.cmp(&b.version))
            })
            .ok_or_else(|| ModelError::NoModelFor {
                table: table.to_string(),
                column: response.to_string(),
            })
    }

    /// Data-change hook: mark every active model covering `table` as
    /// stale ("changing or added observations can change \[the\] fit of
    /// the model dramatically"). Returns the affected model ids.
    pub fn invalidate_table(&self, table: &str) -> Vec<ModelId> {
        let mut inner = self.inner.write();
        let mut affected = Vec::new();
        let ids: Vec<u64> = inner.models.keys().copied().collect();
        for id in ids {
            let m = &inner.models[&id];
            if m.coverage.table == table && m.state == ModelState::Active {
                let mut updated = (**m).clone();
                updated.state = ModelState::Stale;
                inner.models.insert(id, Arc::new(updated));
                affected.push(ModelId(id));
            }
        }
        drop(inner);
        if !affected.is_empty() {
            self.bump_epoch();
        }
        affected
    }

    /// Transition a model to a new state (re-fit outcomes: back to
    /// Active, or Retired when superseded).
    pub fn set_state(&self, id: ModelId, state: ModelState) -> Result<()> {
        let mut inner = self.inner.write();
        let m = inner
            .models
            .get(&id.0)
            .ok_or(ModelError::UnknownModel { id: id.0 })?;
        let mut updated = (**m).clone();
        updated.state = state;
        inner.models.insert(id.0, Arc::new(updated));
        drop(inner);
        self.bump_epoch();
        Ok(())
    }

    /// Retire every other model covering the same (table, response) —
    /// called after a re-fit stores a fresh winner.
    pub fn retire_others(&self, winner: ModelId) -> Result<Vec<ModelId>> {
        let w = self.get(winner)?;
        let mut retired = Vec::new();
        for m in self.models_for(&w.coverage.table, &w.coverage.response) {
            if m.id != winner && m.state != ModelState::Retired {
                self.set_state(m.id, ModelState::Retired)?;
                retired.push(m.id);
            }
        }
        Ok(retired)
    }

    /// Snapshot for persistence: next id + all models in id order.
    pub(crate) fn snapshot(&self) -> (u64, Vec<Arc<CapturedModel>>) {
        let inner = self.inner.read();
        (inner.next_id, inner.models.values().cloned().collect())
    }

    /// Rebuild from persisted parts (ids are kept as stored).
    pub(crate) fn restore(next_id: u64, models: Vec<CapturedModel>) -> ModelCatalog {
        let catalog = ModelCatalog::new();
        {
            let mut inner = catalog.inner.write();
            inner.next_id = next_id;
            for m in models {
                inner.models.insert(m.id.0, Arc::new(m));
            }
        }
        catalog
    }

    /// Total parameter-storage bytes across active models (the
    /// model-side term of the compression accounting).
    pub fn active_parameter_bytes(&self) -> usize {
        self.inner
            .read()
            .models
            .values()
            .filter(|m| m.state == ModelState::Active)
            .map(|m| m.params.byte_size())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Coverage, ModelParams};
    use lawsdb_expr::parse_formula;

    fn model(table: &str, response: &str, r2: f64) -> CapturedModel {
        let f = parse_formula(&format!("{response} ~ a + b * x")).unwrap();
        CapturedModel {
            id: ModelId(0),
            version: 0,
            formula_source: f.source.clone(),
            rhs: f.rhs.clone(),
            params: ModelParams::Global {
                names: vec!["a".to_string(), "b".to_string()],
                values: vec![1.0, 2.0],
                residual_se: 0.1,
                r2,
                n: 50,
            },
            coverage: Coverage {
                table: table.to_string(),
                response: response.to_string(),
                variables: vec!["x".to_string()],
                rows_at_fit: 50,
                predicate: None,
                domains: Vec::new(),
            },
            overall_r2: r2,
            max_abs_residual: None,
            state: ModelState::Active,
            legal_filter: None,
        }
    }

    #[test]
    fn store_assigns_ids_and_versions() {
        let c = ModelCatalog::new();
        let m1 = c.store(model("t", "y", 0.9));
        let m2 = c.store(model("t", "y", 0.95));
        let m3 = c.store(model("t", "z", 0.5));
        assert_eq!(m1.id, ModelId(1));
        assert_eq!(m2.id, ModelId(2));
        assert_eq!(m1.version, 1);
        assert_eq!(m2.version, 2); // same coverage → version bump
        assert_eq!(m3.version, 1); // different coverage → fresh line
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn best_for_picks_highest_r2() {
        let c = ModelCatalog::new();
        c.store(model("t", "y", 0.80));
        let best = c.store(model("t", "y", 0.95));
        c.store(model("t", "y", 0.90));
        assert_eq!(c.best_for("t", "y", false).unwrap().id, best.id);
        assert!(matches!(
            c.best_for("t", "zz", false),
            Err(ModelError::NoModelFor { .. })
        ));
    }

    #[test]
    fn invalidation_and_stale_visibility() {
        let c = ModelCatalog::new();
        let m = c.store(model("t", "y", 0.9));
        let affected = c.invalidate_table("t");
        assert_eq!(affected, vec![m.id]);
        // No active model now; stale allowed finds it.
        assert!(c.best_for("t", "y", false).is_err());
        assert_eq!(c.best_for("t", "y", true).unwrap().id, m.id);
        // Other tables untouched.
        assert!(c.invalidate_table("other").is_empty());
    }

    #[test]
    fn refit_then_retire_others() {
        let c = ModelCatalog::new();
        let old = c.store(model("t", "y", 0.9));
        c.invalidate_table("t");
        let fresh = c.store(model("t", "y", 0.93));
        let retired = c.retire_others(fresh.id).unwrap();
        assert_eq!(retired, vec![old.id]);
        assert_eq!(c.get(old.id).unwrap().state, ModelState::Retired);
        assert_eq!(c.best_for("t", "y", false).unwrap().id, fresh.id);
    }

    #[test]
    fn retired_models_are_kept_not_deleted() {
        let c = ModelCatalog::new();
        let old = c.store(model("t", "y", 0.9));
        let fresh = c.store(model("t", "y", 0.95));
        c.retire_others(fresh.id).unwrap();
        // Still present — "a model with a previously poor fit [may
        // become] relevant again".
        assert_eq!(c.len(), 2);
        assert!(c.get(old.id).is_ok());
        // And can be reactivated.
        c.set_state(old.id, ModelState::Active).unwrap();
        assert_eq!(c.best_for("t", "y", false).unwrap().id, fresh.id);
    }

    #[test]
    fn active_parameter_bytes_ignores_inactive() {
        let c = ModelCatalog::new();
        let a = c.store(model("t", "y", 0.9));
        c.store(model("t", "z", 0.9));
        assert_eq!(c.active_parameter_bytes(), 2 * 24);
        c.set_state(a.id, ModelState::Retired).unwrap();
        assert_eq!(c.active_parameter_bytes(), 24);
    }

    #[test]
    fn epoch_advances_on_store_and_state_changes() {
        let c = ModelCatalog::new();
        let e0 = c.epoch();
        let m = c.store(model("t", "y", 0.9));
        let e1 = c.epoch();
        assert!(e1 > e0);
        c.invalidate_table("t");
        let e2 = c.epoch();
        assert!(e2 > e1);
        // Invalidating a table with no active models is not a change.
        c.invalidate_table("t");
        assert_eq!(c.epoch(), e2);
        c.set_state(m.id, ModelState::Active).unwrap();
        assert!(c.epoch() > e2);
    }

    #[test]
    fn concurrent_store_and_read() {
        let c = Arc::new(ModelCatalog::new());
        std::thread::scope(|s| {
            for i in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for j in 0..50 {
                        c.store(model("t", &format!("y{i}_{j}"), 0.9));
                    }
                });
            }
        });
        assert_eq!(c.len(), 200);
        // Ids are unique.
        let mut ids: Vec<u64> = c.all().iter().map(|m| m.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
