//! Gridded model-based views — the MauveDB baseline.
//!
//! Deshpande & Madden's MauveDB (cited as \[7\]) sidesteps the
//! parameter-space-enumeration problem "by projecting the raw data onto
//! a grid with fixed boundaries. This way, the number of data points
//! generated from the model is fixed, which fits well with the
//! relational model." This module implements that design for one or two
//! input dimensions: a regular grid whose cell values are the local
//! average of the observations (with inverse-distance interpolation
//! filling empty cells), queried by bilinear interpolation.
//!
//! E11 compares it against captured user models on accuracy-per-byte.

use crate::error::{ModelError, Result};

/// A 1-D or 2-D regular grid view of a measured function.
#[derive(Debug, Clone)]
pub struct GridView {
    /// Axis descriptors: (lo, hi, cells).
    axes: Vec<(f64, f64, usize)>,
    /// Cell values, row-major over the axes.
    values: Vec<f64>,
}

impl GridView {
    /// Build a 1-D grid view from samples.
    pub fn fit_1d(x: &[f64], y: &[f64], cells: usize) -> Result<GridView> {
        GridView::fit(&[x], y, &[cells])
    }

    /// Build a 2-D grid view from samples.
    pub fn fit_2d(
        x0: &[f64],
        x1: &[f64],
        y: &[f64],
        cells0: usize,
        cells1: usize,
    ) -> Result<GridView> {
        GridView::fit(&[x0, x1], y, &[cells0, cells1])
    }

    fn fit(inputs: &[&[f64]], y: &[f64], cells: &[usize]) -> Result<GridView> {
        if inputs.is_empty() || inputs.len() > 2 {
            return Err(ModelError::BadConstruction {
                detail: "grid views support 1 or 2 input dimensions".to_string(),
            });
        }
        if cells.contains(&0) {
            return Err(ModelError::BadConstruction {
                detail: "grid needs at least one cell per axis".to_string(),
            });
        }
        let n = y.len();
        for (d, col) in inputs.iter().enumerate() {
            if col.len() != n {
                return Err(ModelError::BadConstruction {
                    detail: format!("input {d} has {} rows, y has {n}", col.len()),
                });
            }
        }
        // Domain per axis from finite samples.
        let mut axes = Vec::with_capacity(inputs.len());
        for col in inputs {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &v in col.iter().filter(|v| v.is_finite()) {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if !lo.is_finite() || !hi.is_finite() {
                return Err(ModelError::BadConstruction {
                    detail: "no finite input samples".to_string(),
                });
            }
            axes.push((lo, hi, 0usize));
        }
        for (a, &c) in axes.iter_mut().zip(cells) {
            a.2 = c;
        }
        let total: usize = cells.iter().product();
        let mut sums = vec![0.0; total];
        let mut counts = vec![0u32; total];
        for row in 0..n {
            if !y[row].is_finite() || inputs.iter().any(|c| !c[row].is_finite()) {
                continue;
            }
            let idx = flat_index(&axes, inputs, row);
            sums[idx] += y[row];
            counts[idx] += 1;
        }
        let mut values: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { f64::NAN })
            .collect();
        fill_empty_cells(&axes, &mut values);
        Ok(GridView { axes, values })
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.axes.len()
    }

    /// Query the view with linear (1-D) or bilinear (2-D) interpolation
    /// between cell centers; out-of-domain points clamp to the edge.
    pub fn query(&self, point: &[f64]) -> Result<f64> {
        if point.len() != self.axes.len() {
            return Err(ModelError::MissingInput {
                variable: format!("grid expects {} coordinates", self.axes.len()),
            });
        }
        match self.axes.len() {
            1 => Ok(self.interp_1d(point[0])),
            2 => Ok(self.interp_2d(point[0], point[1])),
            _ => unreachable!("dims validated at construction"),
        }
    }

    /// Storage footprint: cell values + axis descriptors.
    pub fn byte_size(&self) -> usize {
        8 * (self.values.len() + 3 * self.axes.len())
    }

    /// Materialize the grid as relational tuples `(center coords…, value)`
    /// — MauveDB's "fixed number of data points generated from the
    /// model".
    pub fn materialize(&self) -> Vec<(Vec<f64>, f64)> {
        let mut out = Vec::with_capacity(self.values.len());
        match self.axes.len() {
            1 => {
                let (lo, hi, c) = self.axes[0];
                for i in 0..c {
                    out.push((vec![center(lo, hi, c, i)], self.values[i]));
                }
            }
            2 => {
                let (lo0, hi0, c0) = self.axes[0];
                let (lo1, hi1, c1) = self.axes[1];
                for i in 0..c0 {
                    for j in 0..c1 {
                        out.push((
                            vec![center(lo0, hi0, c0, i), center(lo1, hi1, c1, j)],
                            self.values[i * c1 + j],
                        ));
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    fn interp_1d(&self, x: f64) -> f64 {
        let (lo, hi, c) = self.axes[0];
        let (i0, i1, t) = bracket(lo, hi, c, x);
        self.values[i0] * (1.0 - t) + self.values[i1] * t
    }

    fn interp_2d(&self, x: f64, ycoord: f64) -> f64 {
        let (lo0, hi0, c0) = self.axes[0];
        let (lo1, hi1, c1) = self.axes[1];
        let (a0, a1, ta) = bracket(lo0, hi0, c0, x);
        let (b0, b1, tb) = bracket(lo1, hi1, c1, ycoord);
        let v = |i: usize, j: usize| self.values[i * c1 + j];
        let top = v(a0, b0) * (1.0 - tb) + v(a0, b1) * tb;
        let bot = v(a1, b0) * (1.0 - tb) + v(a1, b1) * tb;
        top * (1.0 - ta) + bot * ta
    }
}

fn center(lo: f64, hi: f64, cells: usize, i: usize) -> f64 {
    let w = (hi - lo) / cells as f64;
    lo + (i as f64 + 0.5) * w
}

/// Find the two cell centers bracketing `x` and the interpolation
/// weight of the upper one.
fn bracket(lo: f64, hi: f64, cells: usize, x: f64) -> (usize, usize, f64) {
    if cells == 1 {
        return (0, 0, 0.0);
    }
    let w = (hi - lo) / cells as f64;
    let pos = (x - lo) / w - 0.5; // in units of cells, relative to center 0
    if pos <= 0.0 {
        return (0, 0, 0.0);
    }
    if pos >= (cells - 1) as f64 {
        return (cells - 1, cells - 1, 0.0);
    }
    let i = pos.floor() as usize;
    (i, i + 1, pos - i as f64)
}

fn flat_index(axes: &[(f64, f64, usize)], inputs: &[&[f64]], row: usize) -> usize {
    let mut idx = 0;
    for (d, &(lo, hi, c)) in axes.iter().enumerate() {
        let w = ((hi - lo) / c as f64).max(f64::MIN_POSITIVE);
        let i = (((inputs[d][row] - lo) / w) as usize).min(c - 1);
        idx = idx * c + i;
    }
    idx
}

/// Replace NaN cells by the average of their non-NaN neighbors,
/// iterating until stable (flood-fill from measured regions).
fn fill_empty_cells(axes: &[(f64, f64, usize)], values: &mut [f64]) {
    let dims: Vec<usize> = axes.iter().map(|a| a.2).collect();
    for _ in 0..values.len() {
        let mut changed = false;
        for i in 0..values.len() {
            if !values[i].is_nan() {
                continue;
            }
            let mut sum = 0.0;
            let mut cnt = 0;
            for nb in neighbors(&dims, i) {
                if !values[nb].is_nan() {
                    sum += values[nb];
                    cnt += 1;
                }
            }
            if cnt > 0 {
                values[i] = sum / cnt as f64;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // A fully empty grid stays NaN — callers see NaN answers.
}

fn neighbors(dims: &[usize], idx: usize) -> Vec<usize> {
    match dims.len() {
        1 => {
            let mut v = Vec::new();
            if idx > 0 {
                v.push(idx - 1);
            }
            if idx + 1 < dims[0] {
                v.push(idx + 1);
            }
            v
        }
        2 => {
            let c1 = dims[1];
            let (i, j) = (idx / c1, idx % c1);
            let mut v = Vec::new();
            if i > 0 {
                v.push((i - 1) * c1 + j);
            }
            if i + 1 < dims[0] {
                v.push((i + 1) * c1 + j);
            }
            if j > 0 {
                v.push(i * c1 + j - 1);
            }
            if j + 1 < c1 {
                v.push(i * c1 + j + 1);
            }
            v
        }
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_grid_recovers_linear_signal() {
        let xs: Vec<f64> = (0..1000).map(|i| i as f64 / 999.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let g = GridView::fit_1d(&xs, &ys, 20).unwrap();
        for &q in &[0.1, 0.33, 0.5, 0.77, 0.9] {
            let got = g.query(&[q]).unwrap();
            assert!((got - (3.0 * q + 1.0)).abs() < 0.01, "{q}: {got}");
        }
    }

    #[test]
    fn clamps_outside_domain() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
        let g = GridView::fit_1d(&xs, &ys, 10).unwrap();
        let low = g.query(&[-5.0]).unwrap();
        let high = g.query(&[5.0]).unwrap();
        // Clamped to edge cell averages.
        assert!((low - 0.1).abs() < 0.05);
        assert!((high - 1.9).abs() < 0.05);
    }

    #[test]
    fn two_d_grid_bilinear_interpolation() {
        // f(a, b) = a + 2b sampled densely.
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            for j in 0..50 {
                let av = i as f64 / 49.0;
                let bv = j as f64 / 49.0;
                a.push(av);
                b.push(bv);
                y.push(av + 2.0 * bv);
            }
        }
        let g = GridView::fit_2d(&a, &b, &y, 10, 10).unwrap();
        let got = g.query(&[0.5, 0.5]).unwrap();
        assert!((got - 1.5).abs() < 0.05, "{got}");
        assert_eq!(g.dims(), 2);
    }

    #[test]
    fn empty_cells_are_filled_from_neighbors() {
        // Samples only at the ends of the domain.
        let xs = [0.0, 0.01, 0.99, 1.0];
        let ys = [1.0, 1.0, 3.0, 3.0];
        let g = GridView::fit_1d(&xs, &ys, 10).unwrap();
        let mid = g.query(&[0.5]).unwrap();
        assert!(mid.is_finite());
        assert!((1.0..=3.0).contains(&mid));
    }

    #[test]
    fn materialize_yields_fixed_tuple_count() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys = xs.clone();
        let g = GridView::fit_1d(&xs, &ys, 16).unwrap();
        let tuples = g.materialize();
        assert_eq!(tuples.len(), 16);
        assert_eq!(g.byte_size(), 8 * (16 + 3));
        // Tuples are (center, value) with value ≈ center for y = x.
        for (coords, v) in &tuples {
            assert!((coords[0] - v).abs() < 4.0);
        }
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(GridView::fit_1d(&[1.0], &[1.0, 2.0], 4).is_err());
        assert!(GridView::fit_1d(&[1.0], &[1.0], 0).is_err());
        assert!(GridView::fit_1d(&[f64::NAN], &[1.0], 2).is_err());
        let g = GridView::fit_1d(&[0.0, 1.0], &[0.0, 1.0], 2).unwrap();
        assert!(g.query(&[0.5, 0.5]).is_err()); // wrong arity
    }
}
