//! End-to-end durability: captured models and their tables survive
//! crashes anywhere in a fit → store → append → re-save workload.
//!
//! This is the engine-level companion of the storage crate's crash
//! matrix: models are fitted once up front (fitting is deterministic),
//! then the workload commits tables and catalog images through
//! [`DurableDb`] over a fault-injecting device. Every device operation
//! is used as a crash point; recovery must land on exactly the pre- or
//! post-commit state, and recovered models must predict bit-identically
//! to the originals.

use lawsdb_core::DurableDb;
use lawsdb_fit::FitOptions;
use lawsdb_models::bridge::fit_table_grouped;
use lawsdb_models::{ModelCatalog, ModelState};
use lawsdb_storage::fault::{FaultMode, FaultSchedule, FaultyDevice};
use lawsdb_storage::io::SimulatedDevice;
use lawsdb_storage::{Column, Table, TableBuilder};

const PAGE_SIZE: usize = 256;

type Step<'a> = &'a dyn Fn(&mut DurableDb<FaultyDevice>) -> lawsdb_core::Result<()>;

fn lofar_table() -> Table {
    let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
    let mut src = Vec::new();
    let mut nu = Vec::new();
    let mut intensity = Vec::new();
    for s in 0..5i64 {
        let (p, a) = (1.0 + s as f64 * 0.4, -0.6 - s as f64 * 0.1);
        for i in 0..40usize {
            src.push(s);
            nu.push(freqs[i % 4]);
            intensity.push(p * freqs[i % 4].powf(a));
        }
    }
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", src);
    b.add_f64("nu", nu);
    b.add_f64("intensity", intensity);
    b.build().unwrap()
}

fn appended(table: &Table) -> Table {
    let mut t = table.clone();
    t.append_rows(&[
        Column::from_i64(vec![5, 5]),
        Column::from_f64(vec![0.12, 0.18]),
        Column::from_f64(vec![3.5, 3.1]),
    ])
    .unwrap();
    t
}

/// Everything the workload needs, fitted once.
struct Fixture {
    t1: Table,
    t2: Table,
    catalog1: ModelCatalog,
    catalog2: ModelCatalog,
}

fn fixture() -> Fixture {
    let t1 = lofar_table();
    let t2 = appended(&t1);
    let opts = FitOptions::default().with_initial("alpha", -0.7);
    let catalog1 = ModelCatalog::new();
    let m1 = catalog1.store(
        fit_table_grouped(&t1, "intensity ~ p * nu ^ alpha", "source", &opts, 1).unwrap().0,
    );
    // Catalog v2: the v1 model goes stale after the append and a re-fit
    // joins it.
    let catalog2 = ModelCatalog::from_bytes(&catalog1.to_bytes()).unwrap();
    catalog2.set_state(m1.id, ModelState::Stale).unwrap();
    catalog2.store(
        fit_table_grouped(&t2, "intensity ~ p * nu ^ alpha", "source", &opts, 1).unwrap().0,
    );
    Fixture { t1, t2, catalog1, catalog2 }
}

/// Run the 4-step workload under a fault schedule. Returns how many
/// commits completed and the surviving disk image.
fn run_workload(fx: &Fixture, schedule: FaultSchedule) -> (u64, SimulatedDevice, u64) {
    let mut db = DurableDb::new(FaultyDevice::new(SimulatedDevice::new(PAGE_SIZE), schedule));
    let mut commits_ok = 0u64;
    if db.recover().is_ok() {
        let steps: [Step; 4] = [
            &|db| db.store_table(&fx.t1),
            &|db| db.save_models(&fx.catalog1),
            &|db| db.replace_table(&fx.t2),
            &|db| db.save_models(&fx.catalog2),
        ];
        for step in steps {
            match step(&mut db) {
                Ok(()) => commits_ok += 1,
                Err(_) => break,
            }
        }
    }
    let faulty = db.into_device();
    let ops = faulty.op_count();
    (commits_ok, faulty.into_inner(), ops)
}

fn assert_catalogs_match(got: &ModelCatalog, want: &ModelCatalog, context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: catalog size");
    for expected in want.all() {
        let loaded = got.get(expected.id).unwrap_or_else(|e| panic!("{context}: {e}"));
        assert_eq!(loaded.formula_source, expected.formula_source, "{context}");
        assert_eq!(loaded.params, expected.params, "{context}");
        assert_eq!(loaded.state, expected.state, "{context}");
        // The recovered model predicts bit-identically.
        let a = expected.predict_scalar(Some(2), &[("nu", 0.15)]).unwrap();
        let b = loaded.predict_scalar(Some(2), &[("nu", 0.15)]).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "{context}: prediction drift");
    }
}

/// Check a recovered image against the expected state for its sequence.
fn assert_state(fx: &Fixture, image: SimulatedDevice, commits_ok: u64, context: &str) {
    let mut db = DurableDb::new(image);
    let report = db.recover().unwrap_or_else(|e| panic!("{context}: clean recovery failed: {e}"));
    let seq = report.seq;
    assert!(
        seq == commits_ok || seq == commits_ok + 1,
        "{context}: recovered seq {seq} after {commits_ok} commits"
    );
    let (want_table, want_catalog): (Option<&Table>, Option<&ModelCatalog>) = match seq {
        0 => (None, None),
        1 => (Some(&fx.t1), None),
        2 => (Some(&fx.t1), Some(&fx.catalog1)),
        3 => (Some(&fx.t2), Some(&fx.catalog1)),
        4 => (Some(&fx.t2), Some(&fx.catalog2)),
        other => panic!("{context}: impossible seq {other}"),
    };
    match want_table {
        None => assert!(db.table_names().is_empty(), "{context}: phantom tables"),
        Some(want) => {
            let got = db
                .read_table("measurements")
                .unwrap_or_else(|e| panic!("{context}: read_table: {e}"));
            assert_eq!(&got, want, "{context}: table content at seq {seq}");
        }
    }
    let loaded = db.load_models().unwrap_or_else(|e| panic!("{context}: load_models: {e}"));
    match want_catalog {
        None => assert_eq!(loaded.len(), 0, "{context}: phantom models"),
        Some(want) => assert_catalogs_match(&loaded, want, context),
    }
}

#[test]
fn fault_free_workload_survives_restart() {
    let fx = fixture();
    let (commits_ok, image, ops) = run_workload(&fx, FaultSchedule::none());
    assert_eq!(commits_ok, 4);
    assert!(ops > 30, "workload is non-trivial ({ops} ops)");
    assert_state(&fx, image, commits_ok, "fault-free");
}

#[test]
fn models_survive_crashes_at_every_device_operation() {
    let fx = fixture();
    let seed: u64 = match std::env::var("LAWSDB_FAULT_SEED") {
        Ok(s) => s.trim().parse().expect("LAWSDB_FAULT_SEED must be a u64"),
        Err(_) => 0x10F4_A21D,
    };
    let (_, _, total_ops) = run_workload(&fx, FaultSchedule::none());
    println!("engine crash matrix: {total_ops} crash points, seed {seed:#x}");
    for crash_op in 0..total_ops {
        let mode = FaultMode::ALL[crash_op as usize % FaultMode::ALL.len()];
        let (commits_ok, image, _) =
            run_workload(&fx, FaultSchedule::crash_at(crash_op, mode, seed));
        assert!(commits_ok < 4, "crash at {crash_op} must interrupt the workload");
        let context = format!("engine crash at op {crash_op} ({mode:?}, seed {seed:#x})");
        assert_state(&fx, image, commits_ok, &context);
    }
}
