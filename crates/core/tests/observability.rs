//! End-to-end acceptance for the unified observability layer: one
//! resilient query under full instrumentation produces a single
//! `QueryProfile` tree containing morsel timings, pruning decisions per
//! zone source, governor charges, bridged retry/quarantine events and
//! the degradation reason — and a `MockClock` run of the same query is
//! byte-identical across executions.
//!
//! The tests install the process-global tracer, so they serialize on a
//! mutex; this file owns its process.

use lawsdb_core::{DurableDb, LawsDb};
use lawsdb_fit::FitOptions as RawFitOptions;
use lawsdb_obs::trace::{tracer, FieldValue};
use lawsdb_obs::{MockClock, ProfileCollector, RingBufferSink};
use lawsdb_query::governor::ResourceBudget;
use lawsdb_query::ExecOptions;
use lawsdb_storage::fault::{FaultMode, FaultSchedule, FaultyDevice};
use lawsdb_storage::retry::{RetryPolicy, RetryingDevice};
use lawsdb_storage::{BlockDevice, SimulatedDevice, TableBuilder};
use std::sync::{Arc, Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

/// An engine over `t(x, y = 2x)` with a captured linear model whose
/// `prediction ± residual` zones replace `y`'s data zones, budgeted so
/// the governor is armed on every query.
fn zoned_engine(n: usize, exec: ExecOptions) -> LawsDb {
    let mut b = TableBuilder::new("t");
    b.add_f64("x", (0..n).map(|i| i as f64).collect());
    b.add_f64("y", (0..n).map(|i| 2.0 * i as f64).collect());
    let db = LawsDb::new().with_exec_options(ExecOptions {
        budget: ResourceBudget { max_rows: Some(10 * n), ..ResourceBudget::default() },
        ..exec
    });
    db.register_table(b.build().expect("table builds")).expect("registers");
    db.capture_model("t", "y ~ a + b * x", None, &RawFitOptions::default())
        .expect("perfect linear law passes the quality gate");
    db
}

/// The paper-shaped range query: `x`'s *data* zones refute the low
/// ranges, `y`'s *model* zones refute the high ones, and the middle
/// zone needs per-row evaluation.
const SQL: &str = "SELECT y FROM t WHERE x >= 15000 AND y <= 32000";

#[test]
fn resilient_query_profile_unifies_every_signal() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = RingBufferSink::new(256);
    tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));

    let db = zoned_engine(20_000, ExecOptions::default());
    let collector = ProfileCollector::new();

    // Storage-layer trouble while the profile is live: a transient read
    // fault that retries to recovery, and a checksum-failed page that
    // gets quarantined. Both bridge into the profile as root points.
    {
        let mut inner = SimulatedDevice::new(64);
        let p = inner.allocate();
        inner.write_page(p, b"payload").expect("writes");
        let d = RetryingDevice::new(
            FaultyDevice::new(inner, FaultSchedule::crash_at(0, FaultMode::Transient, 7)),
            RetryPolicy::default_reads(),
        );
        d.read_page_owned(p).expect("transient fault recovers within budget");
    }
    {
        let mut b = TableBuilder::new("measurements");
        b.add_f64("v", vec![1.0, 2.0, 3.0]);
        let t = b.build().expect("builds");
        let mut ddb = DurableDb::new(SimulatedDevice::new(256));
        ddb.recover().expect("fresh device recovers");
        ddb.store_table(&t).expect("stores");
        let (start, _) = ddb.column_pages("measurements", 0).expect("pages");
        let mut dev = ddb.into_device();
        dev.poke_page(start).expect("page exists")[0] ^= 0xFF;
        let mut ddb = DurableDb::new(dev);
        ddb.recover().expect("recovers");
        assert!(ddb.read_table("measurements").is_err(), "corruption detected");
    }

    let r = db.query_resilient_collected(SQL, &collector).expect("query runs");
    tracer().uninstall();

    assert!(!r.answer.is_approximate(), "range query degrades to exact");
    let p = r.profile.expect("collected run attaches a profile");
    assert_eq!(p.root.name, "query");

    // (1) The degradation decision, with its reason.
    let degrades = p.find("resilient.degrade");
    assert_eq!(degrades.len(), 1);
    assert_eq!(
        degrades[0].field("reason").and_then(FieldValue::as_str),
        Some("no_model")
    );

    // (2) Plan-node spans with per-morsel timing leaves under them.
    assert!(!p.find("plan.filter").is_empty(), "{p}");
    let morsels = p.find("morsel");
    assert!(!morsels.is_empty());
    assert!(morsels.iter().all(|m| m.field("duration_us").is_some()));

    // (3) Pruning decisions attributed per zone source: x's data zones
    // refute the low ranges, y's model zones the high ones.
    let decisions: Vec<&str> = p
        .find("zone")
        .iter()
        .filter_map(|z| z.field("decision").and_then(FieldValue::as_str))
        .collect();
    assert!(decisions.contains(&"skip_zonemap"), "{decisions:?}");
    assert!(decisions.contains(&"skip_model"), "{decisions:?}");
    assert!(decisions.contains(&"eval"), "{decisions:?}");

    // (4) Governor charges and the end-of-query summary.
    let charges = p.find("governor.rows");
    assert_eq!(charges.len(), 1);
    assert_eq!(charges[0].field("rows").and_then(FieldValue::as_u64), Some(20_000));
    let summary = p.find("governor.summary");
    assert_eq!(summary.len(), 1);
    assert_eq!(
        summary[0].field("rows_admitted").and_then(FieldValue::as_u64),
        Some(20_000)
    );

    // (5) Storage events bridged from far below the executor.
    assert!(!p.find("storage.retry.attempt").is_empty(), "{p}");
    assert!(!p.find("storage.retry.recovered").is_empty(), "{p}");
    assert!(!p.find("storage.page.quarantine").is_empty(), "{p}");

    // The rendered tree carries all of it in one printable artifact.
    let text = p.render();
    for needle in [
        "resilient.degrade",
        "plan.filter",
        "morsel #",
        "skip_zonemap",
        "skip_model",
        "governor.rows",
        "storage.page.quarantine",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn mock_clock_profiles_are_byte_identical() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    assert!(!tracer().is_enabled(), "determinism run must not bridge events");

    let run = || {
        let db = zoned_engine(
            20_000,
            ExecOptions { threads: 1, morsel_rows: 8192, ..ExecOptions::default() },
        );
        let collector = ProfileCollector::with_clock(Arc::new(MockClock::new(3)));
        let r = db.query_resilient_collected(SQL, &collector).expect("query runs");
        r.profile.expect("profile attached").render()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same query, same clock, same tree — byte for byte");
    assert!(a.contains("morsel #"), "{a}");
}

#[test]
fn engine_metrics_registry_sees_health_and_pruning() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let db = zoned_engine(20_000, ExecOptions::default());
    let r = db.query_resilient(SQL).expect("runs");
    assert!(!r.answer.is_approximate());

    let snap = db.metrics().snapshot();
    // Health counters are registry counters now.
    assert_eq!(snap.counter("lawsdb_core_exact_fallbacks"), 1);
    assert_eq!(snap.counter("lawsdb_core_approx_answers"), 0);
    // The engine-wide pruning counters saw the same zones the per-query
    // ScanStats reported.
    let exact = match &r.answer {
        lawsdb_core::Answer::Exact(q) => q,
        lawsdb_core::Answer::Approx(_) => unreachable!(),
    };
    assert!(exact.scan_stats.pages_pruned_model > 0);
    assert_eq!(
        snap.counter("lawsdb_query_pages_pruned_model"),
        exact.scan_stats.pages_pruned_model as u64
    );
    assert_eq!(
        snap.counter("lawsdb_query_pages_total"),
        exact.scan_stats.pages_total as u64
    );

    // Both exposition formats render the same counters.
    let prom = db.stats_prometheus();
    assert!(prom.contains("lawsdb_core_exact_fallbacks 1"), "{prom}");
    assert!(prom.contains("# TYPE lawsdb_query_pages_total counter"), "{prom}");
    let json = db.stats_json();
    assert!(json.contains("\"lawsdb_core_exact_fallbacks\":1"), "{json}");
}
