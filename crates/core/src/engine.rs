//! The assembled LawsDB engine.

use crate::error::{CoreError, Result};
use crate::resilience::{
    fault_seed, sample_rows, DegradeReason, HealthCounters, HealthSnapshot, ResilientAnswer,
};
use crate::session::Session;
use lawsdb_approx::legal::build_legal_filter;
use lawsdb_approx::{ApproxAnswer, ApproxEngine};
use lawsdb_fit::FitOptions as RawFitOptions;
use lawsdb_models::bridge::{
    fit_table, fit_table_grouped, fit_table_grouped_where, fit_table_where,
};
use lawsdb_models::model::ModelId;
use lawsdb_models::{CapturedModel, ModelCatalog, ModelState};
use lawsdb_obs::{fields, MetricsRegistry, ProfileCollector, ProfileContext};
use lawsdb_query::{
    CostModel, ExecOptions, PhysicalPlan, PlanCache, QueryResult, ScanStatsCollector,
};
use lawsdb_storage::{Catalog, Column, Table};
use parking_lot::RwLock;
use std::sync::Arc;

/// Rows sampled by the residual drift check — enough to catch a
/// replaced or rescaled column with near-certainty, cheap enough to run
/// on every model-path answer.
const DRIFT_SAMPLE_ROWS: usize = 16;

/// The quality gate applied to every captured model before it becomes
/// usable (Section 3, step 2: "Judge the quality of the model").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityPolicy {
    /// Minimum pooled R².
    pub min_r2: f64,
    /// Significance level for the F-test on global fits.
    pub alpha: f64,
    /// Whether rejected models are kept as `Retired` (true — the paper
    /// argues poor models may become relevant later) or dropped.
    pub keep_rejected: bool,
}

impl Default for QualityPolicy {
    fn default() -> Self {
        QualityPolicy { min_r2: 0.8, alpha: 0.05, keep_rejected: true }
    }
}

/// An answer that may be exact or approximate.
#[derive(Debug, Clone)]
pub enum Answer {
    /// Exact answer from base-table execution.
    Exact(QueryResult),
    /// Model-based approximate answer.
    Approx(ApproxAnswer),
}

impl Answer {
    /// The result rows, whichever path produced them.
    pub fn table(&self) -> &Table {
        match self {
            Answer::Exact(r) => &r.table,
            Answer::Approx(a) => &a.table,
        }
    }

    /// Base-table rows scanned (0 on the model path).
    pub fn rows_scanned(&self) -> usize {
        match self {
            Answer::Exact(r) => r.rows_scanned,
            Answer::Approx(a) => a.rows_scanned,
        }
    }

    /// True when the model path answered.
    pub fn is_approximate(&self) -> bool {
        matches!(self, Answer::Approx(_))
    }
}

/// The database engine: table catalog, model catalog, exact and
/// approximate query paths, capture and maintenance.
pub struct LawsDb {
    tables: Catalog,
    models: Arc<ModelCatalog>,
    approx: RwLock<ApproxEngine>,
    /// Quality gate for captured models.
    pub quality: QualityPolicy,
    /// Bits per key for auto-built legal-combination Bloom filters;
    /// `None` disables auto-building.
    pub legal_filter_bits_per_key: Option<usize>,
    /// Knobs for the exact query path: worker thread count (0 = one per
    /// core) and morsel size. Results are identical for any setting.
    pub exec: ExecOptions,
    /// Per-engine metrics registry: every subsystem counter this engine
    /// owns (health, scan pruning) binds here, so one snapshot renders
    /// the whole engine's state (Prometheus text or JSON).
    metrics: Arc<MetricsRegistry>,
    /// Degradation health counters (see [`crate::resilience`]) — views
    /// over `lawsdb_core_*` counters in [`LawsDb::metrics`].
    health: HealthCounters,
    /// Adaptive per-operator cost model: prices physical plans, and
    /// (when feedback is armed) calibrates from profiled query runs.
    cost: Arc<CostModel>,
    /// Physical plan cache keyed on `(normalized query, stats epoch)`;
    /// hit/miss counters live in [`LawsDb::metrics`].
    plan_cache: PlanCache,
}

impl Default for LawsDb {
    fn default() -> Self {
        Self::new()
    }
}

impl LawsDb {
    /// Fresh empty engine.
    pub fn new() -> LawsDb {
        let models = Arc::new(ModelCatalog::new());
        let metrics = Arc::new(MetricsRegistry::new());
        // The engine's default scan-stats sink binds to the registry,
        // so `lawsdb_query_pages_*` accumulate engine-wide while every
        // query still reports its own delta through `QueryResult`.
        let exec = ExecOptions {
            stats: Some(Arc::new(ScanStatsCollector::for_registry(&metrics))),
            ..ExecOptions::default()
        };
        LawsDb {
            tables: Catalog::new(),
            approx: RwLock::new(ApproxEngine::new(Arc::clone(&models))),
            models,
            quality: QualityPolicy::default(),
            legal_filter_bits_per_key: Some(10),
            exec,
            health: HealthCounters::for_registry(&metrics),
            cost: Arc::new(CostModel::new()),
            plan_cache: PlanCache::for_registry(&metrics),
            metrics,
        }
    }

    /// Builder-style override of the execution options. A `None` stats
    /// sink keeps the engine's registry-bound collector, so overriding
    /// thread counts does not silently disconnect DB-wide pruning
    /// metrics.
    pub fn with_exec_options(mut self, exec: ExecOptions) -> LawsDb {
        let stats = exec.stats.clone().or_else(|| self.exec.stats.clone());
        self.exec = ExecOptions { stats, ..exec };
        self
    }

    /// The engine's metrics registry (counters named
    /// `lawsdb_<crate>_<name>`; see DESIGN.md §12).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The engine's metrics in Prometheus text exposition format.
    pub fn stats_prometheus(&self) -> String {
        self.metrics.snapshot().render_prometheus()
    }

    /// The engine's metrics as a JSON object.
    pub fn stats_json(&self) -> String {
        self.metrics.snapshot().render_json()
    }

    /// Register a base table.
    pub fn register_table(&self, table: Table) -> Result<Arc<Table>> {
        Ok(self.tables.register(table)?)
    }

    /// Snapshot of a base table.
    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        Ok(self.tables.get(name)?)
    }

    /// The table catalog.
    pub fn tables(&self) -> &Catalog {
        &self.tables
    }

    /// The model catalog.
    pub fn models(&self) -> &Arc<ModelCatalog> {
        &self.models
    }

    /// Open an interception session (Figure 2).
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Combined statistics epoch: table catalog in the high bits, model
    /// catalog in the low. Any append, refit, demotion or drop moves
    /// it, which is exactly the plan-cache invalidation signal — a plan
    /// priced against stale row counts or a changed model set must be
    /// re-planned, never reused.
    pub fn stats_epoch(&self) -> u64 {
        (self.tables.epoch() << 32) | (self.models.epoch() & 0xFFFF_FFFF)
    }

    /// The engine's adaptive cost model.
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Arm or disarm cost-constant calibration from profiled queries
    /// (off by default, so plans stay deterministic under tests).
    pub fn set_cost_feedback(&self, enabled: bool) {
        self.cost.set_feedback(enabled);
    }

    /// The physical plan cache (`lawsdb_query_plan_cache_{hit,miss}`
    /// counters live in [`LawsDb::metrics`]).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Parse, optimize, and cost `sql` — or fetch the cached physical
    /// plan when one was built against the current stats epoch.
    pub fn physical_plan(&self, sql: &str) -> Result<Arc<PhysicalPlan>> {
        let stmt = lawsdb_query::parse_select(sql).map_err(CoreError::Query)?;
        let key = lawsdb_query::normalize_statement(&stmt);
        let epoch = self.stats_epoch();
        if let Some(plan) = self.plan_cache.get(&key, epoch) {
            return Ok(plan);
        }
        let logical = lawsdb_query::LogicalPlan::from_statement(&stmt).map_err(CoreError::Query)?;
        let optimized = lawsdb_query::optimize::optimize(&logical);
        let plan = Arc::new(lawsdb_query::plan_physical(
            &self.tables,
            &optimized,
            &self.cost.constants(),
        ));
        self.plan_cache.put(key, epoch, Arc::clone(&plan));
        Ok(plan)
    }

    /// Execute a query exactly against base tables, using the engine's
    /// [`ExecOptions`] (morsel-parallel by default) and the cached
    /// cost-based physical plan.
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        let plan = self.physical_plan(sql)?;
        Ok(lawsdb_query::execute_physical_with(&self.tables, &plan, &self.exec)?)
    }

    /// [`LawsDb::query`] under caller-provided [`ExecOptions`] — the
    /// per-session entry point a server front end uses: each session
    /// brings its own threads, budget and cancel token while sharing
    /// this engine's tables, plan cache and metrics. The caller's knobs
    /// win; the stats sink falls back to the engine's own so registry
    /// counters keep flowing.
    pub fn query_with(&self, sql: &str, exec: &ExecOptions) -> Result<QueryResult> {
        let plan = self.physical_plan(sql)?;
        let opts = self.resolve_exec(exec, None);
        Ok(lawsdb_query::execute_physical_with(&self.tables, &plan, &opts)?)
    }

    /// EXPLAIN: the cost-based physical plan for a query, one node per
    /// line with estimated rows and cost appended, without executing
    /// it. The line sequence matches the logical
    /// [`lawsdb_query::LogicalPlan::explain`] exactly; estimates are
    /// appended to each line, never inserted as new lines.
    pub fn explain(&self, sql: &str) -> Result<String> {
        Ok(self.physical_plan(sql)?.explain())
    }

    /// Answer a query approximately from captured models (zero-IO).
    pub fn query_approx(&self, sql: &str) -> Result<ApproxAnswer> {
        Ok(self.approx.read().answer(sql)?)
    }

    /// Answer approximately when a model can, exactly otherwise — the
    /// transparent behavior the paper's user sees. Degradation reasons
    /// are recorded in [`LawsDb::health`] but not returned; use
    /// [`LawsDb::query_resilient`] to see them per query.
    pub fn query_transparent(&self, sql: &str) -> Result<Answer> {
        Ok(self.query_resilient(sql)?.answer)
    }

    /// The transparent path with every degradation decision surfaced:
    /// answer from a model when one covers the query *and is still
    /// current*, demote stale or drifted models, fall back to exact —
    /// and say which rungs of the ladder were taken and why.
    pub fn query_resilient(&self, sql: &str) -> Result<ResilientAnswer> {
        self.query_resilient_inner(sql, None, None)
    }

    /// [`LawsDb::query_resilient`] under caller-provided
    /// [`ExecOptions`]: the ladder's exact rung runs with the caller's
    /// threads, budget and cancel token (the model rung is zero-IO and
    /// needs none of them).
    pub fn query_resilient_with(&self, sql: &str, exec: &ExecOptions) -> Result<ResilientAnswer> {
        // A profile context riding on the options also collects the
        // ladder's own decisions (`resilient.*` points), not just the
        // exact rung's plan tree — the server's tracing path needs both.
        self.query_resilient_inner(sql, exec.profile.as_ref(), Some(exec))
    }

    /// [`LawsDb::query_resilient`], plus an attached
    /// [`lawsdb_obs::QueryProfile`] unifying the ladder's decisions with
    /// the exact plan's execution tree — the engine's `EXPLAIN ANALYZE`.
    pub fn query_resilient_profiled(&self, sql: &str) -> Result<ResilientAnswer> {
        self.query_resilient_collected(sql, &ProfileCollector::new())
    }

    /// [`LawsDb::query_resilient_profiled`] recording into a
    /// caller-owned collector — tests pass one on a
    /// [`lawsdb_obs::MockClock`] for byte-identical profile trees.
    pub fn query_resilient_collected(
        &self,
        sql: &str,
        collector: &Arc<ProfileCollector>,
    ) -> Result<ResilientAnswer> {
        let ctx = collector.context();
        let mut r = self.query_resilient_inner(sql, Some(&ctx), None)?;
        let profile = collector.build("query");
        // Close the adaptive loop: observed span timings recalibrate
        // the per-operator cost constants (no-op unless feedback is
        // armed via `set_cost_feedback`).
        self.cost.observe_profile(&profile);
        r.profile = Some(profile);
        Ok(r)
    }

    /// Cost-driven plan choice between the exact scan path and the
    /// model path: price the physical plan against the estimated cost
    /// of reconstructing the answer from models, and take the cheaper
    /// route (falling back to exact whenever the model path cannot
    /// answer or fails its freshness guard).
    pub fn query_adaptive(&self, sql: &str) -> Result<Answer> {
        self.query_adaptive_inner(sql, None)
    }

    /// [`LawsDb::query_adaptive`] under caller-provided [`ExecOptions`]
    /// (applied to the exact route; the model route is zero-IO).
    pub fn query_adaptive_with(&self, sql: &str, exec: &ExecOptions) -> Result<Answer> {
        self.query_adaptive_inner(sql, Some(exec))
    }

    fn query_adaptive_inner(&self, sql: &str, exec: Option<&ExecOptions>) -> Result<Answer> {
        let plan = self.physical_plan(sql)?;
        let est = plan.root_estimate();
        let model_cost = self.cost.constants().model_answer_cost_us(est.rows);
        if model_cost <= est.cost_us {
            if let Ok(a) = self.query_approx(sql) {
                if self.freshness_guard(&a).is_none() {
                    return Ok(Answer::Approx(a));
                }
            }
        }
        Ok(Answer::Exact(self.query_exact_for(sql, None, exec)?))
    }

    /// Record one ladder decision as a profile point, when profiling.
    fn profile_degrade(ctx: Option<&ProfileContext>, reason: &DegradeReason) {
        if let Some(ctx) = ctx {
            ctx.point(
                "resilient.degrade",
                fields![reason = reason.name(), detail = reason.to_string()],
            );
        }
    }

    /// The exact rung, carrying the profile context (plan-node spans,
    /// morsel timings, pruning and governor points attach under it).
    /// Caller options resolved against the engine's defaults: the
    /// caller's knobs win, the stats sink falls back to the engine's
    /// own (so shared registry counters keep flowing), and an active
    /// profile context attaches regardless of where the options came
    /// from.
    fn resolve_exec(&self, exec: &ExecOptions, ctx: Option<&ProfileContext>) -> ExecOptions {
        ExecOptions {
            stats: exec.stats.clone().or_else(|| self.exec.stats.clone()),
            profile: ctx.cloned().or_else(|| exec.profile.clone()),
            ..exec.clone()
        }
    }

    fn query_exact_for(
        &self,
        sql: &str,
        ctx: Option<&ProfileContext>,
        exec: Option<&ExecOptions>,
    ) -> Result<QueryResult> {
        let opts = match exec {
            Some(e) => self.resolve_exec(e, ctx),
            None => match ctx {
                Some(c) => ExecOptions { profile: Some(c.clone()), ..self.exec.clone() },
                None => self.exec.clone(),
            },
        };
        let plan = self.physical_plan(sql)?;
        Ok(lawsdb_query::execute_physical_with(&self.tables, &plan, &opts)?)
    }

    fn query_resilient_inner(
        &self,
        sql: &str,
        ctx: Option<&ProfileContext>,
        exec: Option<&ExecOptions>,
    ) -> Result<ResilientAnswer> {
        match self.query_approx(sql) {
            Ok(a) => match self.freshness_guard(&a) {
                None => {
                    self.health.record_approx();
                    if let Some(ctx) = ctx {
                        ctx.point(
                            "resilient.approx",
                            fields![
                                model = a.model.0,
                                tuples = a.tuples_reconstructed,
                                rows_scanned = a.rows_scanned,
                            ],
                        );
                    }
                    Ok(ResilientAnswer {
                        answer: Answer::Approx(a),
                        degraded: Vec::new(),
                        profile: None,
                    })
                }
                Some(reason) => {
                    // Demote so the next query doesn't retry the model,
                    // then answer this one exactly.
                    let _ = self.models.set_state(a.model, ModelState::Stale);
                    self.health.record(&reason);
                    Self::profile_degrade(ctx, &reason);
                    Ok(ResilientAnswer {
                        answer: Answer::Exact(self.query_exact_for(sql, ctx, exec)?),
                        degraded: vec![reason],
                        profile: None,
                    })
                }
            },
            Err(CoreError::Approx(
                e @ (lawsdb_approx::ApproxError::NotAnswerable { .. }
                | lawsdb_approx::ApproxError::EnumerationTooLarge { .. }),
            )) => {
                let reason = DegradeReason::NoModel { detail: e.to_string() };
                self.health.record(&reason);
                Self::profile_degrade(ctx, &reason);
                Ok(ResilientAnswer {
                    answer: Answer::Exact(self.query_exact_for(sql, ctx, exec)?),
                    degraded: vec![reason],
                    profile: None,
                })
            }
            Err(e) => Err(e),
        }
    }

    /// Degradation health counters.
    pub fn health(&self) -> HealthSnapshot {
        self.health.snapshot()
    }

    /// Post-hoc staleness verification of the model that produced `a`
    /// (the approximate engine is zero-IO by design, so the base-table
    /// comparison has to happen here). Returns the reason to degrade,
    /// or `None` when the model is still current.
    fn freshness_guard(&self, a: &ApproxAnswer) -> Option<DegradeReason> {
        let model = self.models.get(a.model).ok()?;
        let table = self.table(&model.coverage.table).ok()?;
        if table.row_count() != model.coverage.rows_at_fit {
            return Some(DegradeReason::StaleRowCount {
                model: a.model,
                rows_at_fit: model.coverage.rows_at_fit,
                rows_now: table.row_count(),
            });
        }
        // Sampled-residual drift check. Partial models are skipped
        // (sampled rows may legitimately lie outside their coverage),
        // as are models without a fitted residual bound.
        if model.coverage.predicate.is_some() {
            return None;
        }
        let bound = model.max_abs_residual?;
        let seed = fault_seed() ^ a.model.0;
        let idx = sample_rows(seed, table.row_count(), DRIFT_SAMPLE_ROWS);
        if idx.is_empty() {
            return None;
        }
        let sampled = table.take(&idx).ok()?;
        let preds = lawsdb_models::bridge::predict_table(&model, &sampled).ok()?;
        let observed = sampled
            .column(&model.coverage.response)
            .ok()
            .and_then(|c| c.to_f64_lossy().ok())?;
        let drift = preds
            .iter()
            .zip(&observed)
            .filter(|(p, o)| p.is_finite() && o.is_finite())
            .map(|(p, o)| (p - o).abs())
            .fold(0.0_f64, f64::max);
        // Every row satisfied |residual| ≤ bound at fit time, so the
        // factor-of-two margin only tolerates numeric wiggle — real
        // drift (edits, replaced columns) blows far past it.
        if drift > (bound * 2.0).max(1e-12) {
            return Some(DegradeReason::ResidualDrift {
                model: a.model,
                observed: drift,
                bound,
                seed,
            });
        }
        None
    }

    /// Capture a model: fit `formula` against `table` (grouped by
    /// `group_column` if given), judge it, store it, build its legal
    /// filter, and return the stored snapshot.
    ///
    /// Models failing the quality gate are stored `Retired` (or dropped
    /// per policy) and reported as [`CoreError::QualityRejected`].
    pub fn capture_model(
        &self,
        table_name: &str,
        formula: &str,
        group_column: Option<&str>,
        options: &RawFitOptions,
    ) -> Result<Arc<CapturedModel>> {
        self.capture(table_name, formula, group_column, None, options)
    }

    /// Capture a *partial* model, fitted only on the rows satisfying
    /// `predicate` (Section 4.1's partial-models challenge). The
    /// predicate is recorded in the model's coverage; approximate
    /// answers are clipped to it, and point queries outside it refuse
    /// rather than extrapolate.
    pub fn capture_model_where(
        &self,
        table_name: &str,
        formula: &str,
        group_column: Option<&str>,
        predicate: &str,
        options: &RawFitOptions,
    ) -> Result<Arc<CapturedModel>> {
        self.capture(table_name, formula, group_column, Some(predicate), options)
    }

    fn capture(
        &self,
        table_name: &str,
        formula: &str,
        group_column: Option<&str>,
        predicate: Option<&str>,
        options: &RawFitOptions,
    ) -> Result<Arc<CapturedModel>> {
        let table = self.table(table_name)?;
        let model = match (group_column, predicate) {
            (Some(g), None) => {
                fit_table_grouped(&table, formula, g, options, default_threads())?.0
            }
            (Some(g), Some(p)) => {
                fit_table_grouped_where(&table, formula, g, p, options, default_threads())?.0
            }
            (None, None) => fit_table(&table, formula, options)?,
            (None, Some(p)) => fit_table_where(&table, formula, p, options)?,
        };
        let r2 = model.overall_r2;
        let passed = r2.is_finite() && r2 >= self.quality.min_r2;
        let mut model = model;
        if !passed {
            if !self.quality.keep_rejected {
                return Err(CoreError::QualityRejected { r2, min_r2: self.quality.min_r2 });
            }
            model.state = ModelState::Retired;
        }
        let stored = self.models.store(model);
        if !passed {
            return Err(CoreError::QualityRejected { r2, min_r2: self.quality.min_r2 });
        }
        // Attach model-synopsis zones to the response column (the
        // paper's Tier-2 pruning: `prediction ± max residual` refutes
        // predicates without reading the column). Whole-table models
        // only — a partial model's bound says nothing about rows
        // outside its predicate — and only while the fitted snapshot is
        // still current. Best-effort: a failed attach keeps the model.
        if stored.coverage.predicate.is_none() {
            if let (Some(bound), Ok(current)) =
                (stored.max_abs_residual, self.table(table_name))
            {
                if current.row_count() == stored.coverage.rows_at_fit {
                    if let Ok(preds) = lawsdb_models::bridge::predict_table(&stored, &current) {
                        let response = &stored.coverage.response;
                        let zone_rows = current
                            .synopsis()
                            .and_then(|s| s.column(response))
                            .map(|z| z.zone_rows)
                            .unwrap_or(lawsdb_storage::DEFAULT_ZONE_ROWS);
                        let zones = lawsdb_storage::ColumnZones::from_model_bounds(
                            &preds, bound, zone_rows,
                        );
                        if let Ok(zoned) = current.with_model_zones(response, zones) {
                            self.tables.replace(zoned);
                        }
                    }
                }
            }
        }
        // Build the legal-combination Bloom filter from the observed
        // rows (Section 4.2's compressed lookup structure).
        if let Some(bpk) = self.legal_filter_bits_per_key {
            if let Some(g) = group_column {
                if let (Ok(groups), Ok(var_views)) = (
                    table.column(g).and_then(|c| c.i64_data().map(<[i64]>::to_vec)),
                    stored
                        .coverage
                        .variables
                        .iter()
                        .map(|v| table.column(v).and_then(|c| c.f64_data().map(<[f64]>::to_vec)))
                        .collect::<lawsdb_storage::Result<Vec<_>>>(),
                ) {
                    let slices: Vec<&[f64]> = var_views.iter().map(Vec::as_slice).collect();
                    let bf = build_legal_filter(&groups, &slices, bpk);
                    self.approx.write().register_legal_filter(stored.id, bf);
                }
            }
        }
        Ok(stored)
    }

    /// Append rows to a base table, invalidating dependent models
    /// (Section 4.1's data-change challenge). Returns the ids marked
    /// stale.
    pub fn append_rows(&self, table_name: &str, batch: &[Column]) -> Result<Vec<ModelId>> {
        let current = self.table(table_name)?;
        let mut updated = (*current).clone();
        updated.append_rows(batch)?;
        self.tables.replace(updated);
        Ok(self.models.invalidate_table(table_name))
    }

    /// Re-fit a stale model against the current data: stores a fresh
    /// version, retires the others, returns the new snapshot.
    pub fn refit(&self, id: ModelId, options: &RawFitOptions) -> Result<Arc<CapturedModel>> {
        let old = self.models.get(id)?;
        let group_column = match &old.params {
            lawsdb_models::ModelParams::Grouped { group_column, .. } => {
                Some(group_column.clone())
            }
            lawsdb_models::ModelParams::Global { .. } => None,
        };
        let fresh = self.capture(
            &old.coverage.table,
            &old.formula_source,
            group_column.as_deref(),
            old.coverage.predicate.as_deref(),
            options,
        )?;
        self.models.retire_others(fresh.id)?;
        Ok(fresh)
    }

    /// Total bytes of active model parameters (the "640 KB" side of the
    /// Table 1 accounting).
    pub fn model_parameter_bytes(&self) -> usize {
        self.models.active_parameter_bytes()
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn lofar_db() -> LawsDb {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let laws: [(f64, f64); 4] = [(2.0, -0.7), (0.5, -1.2), (1.0, 0.3), (3.0, -0.5)];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for (s, &(p, a)) in laws.iter().enumerate() {
            for i in 0..40 {
                src.push(s as i64);
                nu.push(freqs[i % 4]);
                intensity.push(p * freqs[i % 4].powf(a));
            }
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let db = LawsDb::new();
        db.register_table(b.build().unwrap()).unwrap();
        db
    }

    #[test]
    fn capture_then_zero_io_answers() {
        let db = lofar_db();
        let m = db
            .capture_model(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                &RawFitOptions::default(),
            )
            .unwrap();
        assert!(m.overall_r2 > 0.99);
        let a = db
            .query_approx("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .unwrap();
        assert_eq!(a.rows_scanned, 0);
        let got = a.table.column("intensity").unwrap().f64_data().unwrap()[0];
        assert!((got - 2.0 * 0.15_f64.powf(-0.7)).abs() < 1e-6);
    }

    #[test]
    fn transparent_query_falls_back_without_model() {
        let db = lofar_db();
        let ans = db
            .query_transparent("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .unwrap();
        assert!(!ans.is_approximate());
        assert!(ans.rows_scanned() > 0);
        // After capture, the same query goes zero-IO.
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &RawFitOptions::default(),
        )
        .unwrap();
        let ans = db
            .query_transparent("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .unwrap();
        assert!(ans.is_approximate());
        assert_eq!(ans.rows_scanned(), 0);
    }

    #[test]
    fn quality_gate_rejects_lawless_data() {
        let db = LawsDb::new();
        // Pure pseudo-noise: no power law to find.
        let mut b = TableBuilder::new("noise");
        let n = 200;
        b.add_i64("g", (0..n).map(|i| i % 4).collect());
        b.add_f64("x", (0..n).map(|i| 0.1 + (i % 10) as f64 * 0.05).collect());
        b.add_f64(
            "y",
            (0..n)
                .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 40) as f64)
                .collect(),
        );
        db.register_table(b.build().unwrap()).unwrap();
        let err = db
            .capture_model("noise", "y ~ a + b * x", Some("g"), &RawFitOptions::default())
            .unwrap_err();
        assert!(matches!(err, CoreError::QualityRejected { .. }), "{err}");
        // The rejected model is kept as Retired, and is not used.
        assert_eq!(db.models().len(), 1);
        assert!(db.query_approx("SELECT y FROM noise WHERE g = 0 AND x = 0.1").is_err());
    }

    #[test]
    fn append_invalidates_and_refit_restores() {
        let db = lofar_db();
        let m = db
            .capture_model(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                &RawFitOptions::default(),
            )
            .unwrap();
        let stale = db
            .append_rows(
                "measurements",
                &[
                    Column::from_i64(vec![0]),
                    Column::from_f64(vec![0.15]),
                    Column::from_f64(vec![2.0 * 0.15_f64.powf(-0.7)]),
                ],
            )
            .unwrap();
        assert_eq!(stale, vec![m.id]);
        // Stale models no longer answer by default.
        assert!(db
            .query_approx("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .is_err());
        let fresh = db.refit(m.id, &RawFitOptions::default()).unwrap();
        assert_ne!(fresh.id, m.id);
        assert_eq!(fresh.version, 2);
        assert!(db
            .query_approx("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .is_ok());
        // Old model retired, not deleted.
        assert_eq!(db.models().get(m.id).unwrap().state, ModelState::Retired);
    }

    #[test]
    fn parameter_bytes_accounting() {
        let db = lofar_db();
        assert_eq!(db.model_parameter_bytes(), 0);
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &RawFitOptions::default(),
        )
        .unwrap();
        // 4 sources × (key + 2 params + rse) × 8.
        assert_eq!(db.model_parameter_bytes(), 4 * 4 * 8);
    }

    #[test]
    fn explain_prints_the_optimized_plan() {
        let db = lofar_db();
        let text = db
            .explain(
                "SELECT source, AVG(intensity) FROM measurements \
                 WHERE nu = 0.15 GROUP BY source ORDER BY source LIMIT 3",
            )
            .unwrap();
        let lines: Vec<&str> = text.lines().map(str::trim_start).collect();
        assert!(lines[0].starts_with("Limit"));
        assert!(lines[1].starts_with("Sort"));
        assert!(lines[2].starts_with("Aggregate"));
        assert!(lines[3].starts_with("Filter"));
        // Scan pruning surfaced below the filter, projection pruning in
        // the scan node.
        assert!(lines[4].starts_with("Pruning [nu = 0.15] (exact)"), "{text}");
        assert!(lines[5].contains("Scan measurements [intensity, nu, source]"), "{text}");
    }

    #[test]
    fn capture_attaches_model_zones_that_prune_exact_scans() {
        let db = lofar_db();
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &RawFitOptions::default(),
        )
        .unwrap();
        // The response column's zones now carry model provenance.
        let t = db.table("measurements").unwrap();
        let z = t.synopsis().unwrap().column("intensity").unwrap();
        assert_eq!(z.source, lawsdb_storage::ZoneSource::Model);
        // An exact scan refuted by `prediction ± residual` does no
        // per-row work, attributed to the model tier.
        let r = db.query("SELECT intensity FROM measurements WHERE intensity > 1000").unwrap();
        assert_eq!(r.table.row_count(), 0);
        assert!(r.scan_stats.pages_pruned_model > 0, "{:?}", r.scan_stats);
        // A satisfiable scan still answers exactly.
        let r = db.query("SELECT intensity FROM measurements WHERE intensity > 1").unwrap();
        let exact =
            db.query("SELECT COUNT(*) AS n FROM measurements WHERE intensity > 1").unwrap();
        assert_eq!(
            lawsdb_storage::Value::Int(r.table.row_count() as i64),
            exact.table.row(0).unwrap()[0]
        );
    }

    #[test]
    fn partial_capture_leaves_data_zones_untouched() {
        let db = lofar_db();
        db.capture_model_where(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            "nu >= 0.16",
            &RawFitOptions::default().with_initial("alpha", -0.7),
        )
        .unwrap();
        let t = db.table("measurements").unwrap();
        let z = t.synopsis().unwrap().column("intensity").unwrap();
        assert_eq!(z.source, lawsdb_storage::ZoneSource::Data);
    }

    #[test]
    fn partial_model_is_clipped_to_its_coverage() {
        let db = lofar_db();
        // Fit only on the upper two bands.
        let m = db
            .capture_model_where(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                "nu >= 0.16",
                &RawFitOptions::default().with_initial("alpha", -0.7),
            )
            .unwrap();
        assert_eq!(m.coverage.predicate.as_deref(), Some("nu >= 0.16"));
        // Covered point: answered.
        let a = db
            .query_approx("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.18")
            .unwrap();
        assert_eq!(a.table.row_count(), 1);
        // Uncovered point: refused, not extrapolated.
        assert!(db
            .query_approx("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.12")
            .is_err());
        // Enumeration only reconstructs the covered bands (domains were
        // captured from the filtered subset).
        let e = db.query_approx("SELECT source, nu, intensity FROM measurements").unwrap();
        let nus = e.table.column("nu").unwrap().f64_data().unwrap();
        assert!(nus.iter().all(|&v| v >= 0.16), "{nus:?}");
        assert_eq!(e.table.row_count(), 4 * 2); // 4 sources × {0.16, 0.18}
    }

    #[test]
    fn unknown_table_errors() {
        let db = LawsDb::new();
        assert!(db.table("zz").is_err());
        assert!(db
            .capture_model("zz", "y ~ a + b * x", None, &RawFitOptions::default())
            .is_err());
        assert!(db.append_rows("zz", &[]).is_err());
    }

    /// Swap the measurements table for one with `intensity` rescaled by
    /// `scale`, keeping (or truncating to) `rows` rows — a data change
    /// that bypasses the engine's invalidation hooks, exactly what the
    /// freshness guard exists to catch.
    fn replace_measurements(db: &LawsDb, scale: f64, rows: Option<usize>) {
        let t = db.table("measurements").unwrap();
        let n = rows.unwrap_or(t.row_count());
        let src = t.column("source").unwrap().i64_data().unwrap()[..n].to_vec();
        let nu = t.column("nu").unwrap().f64_data().unwrap()[..n].to_vec();
        let intensity: Vec<f64> = t.column("intensity").unwrap().f64_data().unwrap()[..n]
            .iter()
            .map(|v| v * scale)
            .collect();
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        db.tables().replace(b.build().unwrap());
    }

    #[test]
    fn resilient_query_prefers_the_model_when_fresh() {
        let db = lofar_db();
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &RawFitOptions::default(),
        )
        .unwrap();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        let r = db.query_resilient(sql).unwrap();
        assert!(r.answer.is_approximate());
        assert!(r.degraded.is_empty());
        let h = db.health();
        assert_eq!(h.approx_answers, 1);
        assert_eq!(h.exact_fallbacks, 0);
    }

    #[test]
    fn residual_drift_demotes_the_model_and_answers_exactly() {
        let db = lofar_db();
        let m = db
            .capture_model(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                &RawFitOptions::default(),
            )
            .unwrap();
        // Rescale the data under the model at constant row count.
        replace_measurements(&db, 10.0, None);
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        let r = db.query_resilient(sql).unwrap();
        assert!(!r.answer.is_approximate(), "drifted model must not answer");
        match r.degraded.as_slice() {
            [DegradeReason::ResidualDrift { model, observed, bound, .. }] => {
                assert_eq!(*model, m.id);
                assert!(observed > bound);
            }
            other => panic!("expected ResidualDrift, got {other:?}"),
        }
        // The exact answer reflects the new data.
        let got = match &r.answer {
            Answer::Exact(q) => q.table.column("intensity").unwrap().f64_data().unwrap()[0],
            Answer::Approx(_) => unreachable!(),
        };
        assert!((got - 10.0 * 2.0 * 0.15_f64.powf(-0.7)).abs() < 1e-6);
        // Demotion is durable: the model is Stale and the next query
        // degrades with NoModel instead of re-running the drift check.
        assert_eq!(db.models().get(m.id).unwrap().state, ModelState::Stale);
        let again = db.query_resilient(sql).unwrap();
        assert!(matches!(again.degraded.as_slice(), [DegradeReason::NoModel { .. }]));
        let h = db.health();
        assert_eq!(h.drift_demotions, 1);
        assert_eq!(h.exact_fallbacks, 2);
        assert_eq!(h.approx_answers, 0);
    }

    #[test]
    fn row_count_mismatch_demotes_the_model() {
        let db = lofar_db();
        let m = db
            .capture_model(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                &RawFitOptions::default(),
            )
            .unwrap();
        // Values untouched, but four rows vanish behind the engine's
        // back — the residual check alone would not notice.
        replace_measurements(&db, 1.0, Some(156));
        let r = db
            .query_resilient("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .unwrap();
        assert!(!r.answer.is_approximate());
        match r.degraded.as_slice() {
            [DegradeReason::StaleRowCount { model, rows_at_fit, rows_now }] => {
                assert_eq!(*model, m.id);
                assert_eq!(*rows_at_fit, 160);
                assert_eq!(*rows_now, 156);
            }
            other => panic!("expected StaleRowCount, got {other:?}"),
        }
        assert_eq!(db.models().get(m.id).unwrap().state, ModelState::Stale);
        assert_eq!(db.health().stale_demotions, 1);
    }

    #[test]
    fn no_model_fallback_is_counted_but_not_a_demotion() {
        let db = lofar_db();
        let r = db
            .query_resilient("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15")
            .unwrap();
        assert!(!r.answer.is_approximate());
        assert!(matches!(r.degraded.as_slice(), [DegradeReason::NoModel { .. }]));
        let h = db.health();
        assert_eq!(h.exact_fallbacks, 1);
        assert_eq!(h.stale_demotions + h.drift_demotions, 0);
    }

    #[test]
    fn plan_cache_reuses_plans_within_a_stats_epoch() {
        let db = lofar_db();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        db.query(sql).unwrap();
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (0, 1));
        db.query(sql).unwrap();
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (1, 1));
        // Spelling variants normalize to the same cache entry.
        db.query("SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15").unwrap();
        assert_eq!(db.plan_cache().hit_count(), 2);
        // The counters surface in the engine's Prometheus export.
        let prom = db.stats_prometheus();
        assert!(prom.contains("lawsdb_query_plan_cache_hit 2"), "{prom}");
        assert!(prom.contains("lawsdb_query_plan_cache_miss 1"), "{prom}");
    }

    #[test]
    fn appending_rows_invalidates_cached_plans() {
        let db = lofar_db();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        db.query(sql).unwrap();
        let epoch = db.stats_epoch();
        db.append_rows(
            "measurements",
            &[
                Column::from_i64(vec![0]),
                Column::from_f64(vec![0.15]),
                Column::from_f64(vec![2.0 * 0.15_f64.powf(-0.7)]),
            ],
        )
        .unwrap();
        assert!(db.stats_epoch() > epoch, "table change must move the stats epoch");
        // The cached plan was priced against a 160-row table; the
        // epoch mismatch forces a re-plan instead of a reuse.
        db.query(sql).unwrap();
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (0, 2));
    }

    #[test]
    fn stale_epoch_evictions_surface_in_prometheus() {
        let db = lofar_db();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        db.query(sql).unwrap();
        db.append_rows(
            "measurements",
            &[
                Column::from_i64(vec![0]),
                Column::from_f64(vec![0.15]),
                Column::from_f64(vec![2.0 * 0.15_f64.powf(-0.7)]),
            ],
        )
        .unwrap();
        db.query(sql).unwrap();
        assert_eq!(db.plan_cache().eviction_count(), 1);
        let prom = db.stats_prometheus();
        assert!(prom.contains("lawsdb_query_plan_cache_evictions 1"), "{prom}");
    }

    #[test]
    fn aggregate_pushdown_survives_appends_through_the_plan_cache() {
        let db = lofar_db();
        let sql = "SELECT COUNT(*) AS n, SUM(intensity) AS s FROM measurements";
        let r = db.query(sql).unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], lawsdb_storage::Value::Int(160));
        assert!(
            r.scan_stats.zones_agg_synopsis > 0,
            "unfiltered aggregate must answer from zone partials: {:?}",
            r.scan_stats
        );
        // Appends move the stats epoch: the cached plan (and its zone
        // partials) must not leak into the post-append answer.
        db.append_rows(
            "measurements",
            &[
                Column::from_i64(vec![9]),
                Column::from_f64(vec![0.15]),
                Column::from_f64(vec![1.0]),
            ],
        )
        .unwrap();
        let r = db.query(sql).unwrap();
        assert_eq!(r.table.row(0).unwrap()[0], lawsdb_storage::Value::Int(161));
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (0, 2));
        // The pushdown counter surfaces through the shared registry.
        let prom = db.stats_prometheus();
        assert!(prom.contains("lawsdb_query_zones_agg_synopsis"), "{prom}");
        let line = prom
            .lines()
            .find(|l| l.starts_with("lawsdb_query_zones_agg_synopsis"))
            .unwrap();
        let count: u64 = line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!(count >= 2, "both queries pushed at least one zone: {line}");
    }

    #[test]
    fn model_catalog_changes_invalidate_cached_plans() {
        let db = lofar_db();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        db.query(sql).unwrap();
        let epoch = db.stats_epoch();
        // Capturing a model changes what the planner may assume
        // (model-backed zones, approx coverage), so the epoch moves
        // even though no base rows changed. Note capture also attaches
        // model zones to the table, bumping the table epoch too.
        let m = db
            .capture_model(
                "measurements",
                "intensity ~ p * nu ^ alpha",
                Some("source"),
                &RawFitOptions::default(),
            )
            .unwrap();
        assert!(db.stats_epoch() != epoch, "model capture must move the stats epoch");
        db.query(sql).unwrap();
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (0, 2));
        // Demoting the model (refit/degrade path) moves it again.
        let epoch = db.stats_epoch();
        db.models().set_state(m.id, ModelState::Stale).unwrap();
        assert!(db.stats_epoch() != epoch, "model demotion must move the stats epoch");
        db.query(sql).unwrap();
        assert_eq!((db.plan_cache().hit_count(), db.plan_cache().miss_count()), (0, 3));
    }

    #[test]
    fn adaptive_query_answers_exactly_without_models() {
        let db = lofar_db();
        let sql = "SELECT intensity FROM measurements WHERE source = 0 AND nu = 0.15";
        let a = db.query_adaptive(sql).unwrap();
        assert!(!a.is_approximate());
        assert!(a.rows_scanned() > 0);
    }

    #[test]
    fn adaptive_query_prefers_the_model_when_the_scan_is_expensive() {
        // Sources interleaved round-robin, so every zone spans the full
        // key range and zone maps cannot rescue the exact scan: the
        // costed plan reads all 16k rows, while the model reconstructs
        // an estimated handful of tuples.
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let sources = 100usize;
        let rounds = 160usize;
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for i in 0..sources * rounds {
            let s = i % sources;
            let f = freqs[(i / sources) % 4];
            let p = 0.5 + s as f64 * 0.05;
            src.push(s as i64);
            nu.push(f);
            intensity.push(p * f.powf(-0.7));
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let db = LawsDb::new();
        db.register_table(b.build().unwrap()).unwrap();
        db.capture_model(
            "measurements",
            "intensity ~ p * nu ^ alpha",
            Some("source"),
            &RawFitOptions::default(),
        )
        .unwrap();
        let sql = "SELECT intensity FROM measurements WHERE source = 50 AND nu = 0.15";
        let plan = db.physical_plan(sql).unwrap();
        let est = plan.root_estimate();
        let model_cost = db.cost_model().constants().model_answer_cost_us(est.rows);
        assert!(
            model_cost <= est.cost_us,
            "model path ({model_cost:.1}us) should undercut the scan ({:.1}us)",
            est.cost_us
        );
        let a = db.query_adaptive(sql).unwrap();
        assert!(a.is_approximate());
        assert_eq!(a.rows_scanned(), 0);
    }
}
