//! Unified error type for the assembled system.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors surfaced by the LawsDB engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Storage-layer failure.
    Storage(lawsdb_storage::StorageError),
    /// Query-layer failure.
    Query(lawsdb_query::QueryError),
    /// Fit-layer failure.
    Fit(lawsdb_fit::FitError),
    /// Model-layer failure.
    Model(lawsdb_models::ModelError),
    /// Approximate-engine failure.
    Approx(lawsdb_approx::ApproxError),
    /// Expression failure.
    Expr(lawsdb_expr::ExprError),
    /// The captured model failed the quality gate and was retired
    /// immediately; carries the judged R² so the user sees why.
    QualityRejected {
        /// Pooled R² of the rejected fit.
        r2: f64,
        /// The gate that failed.
        min_r2: f64,
    },
    /// A compressed column's metadata went missing or is inconsistent.
    CompressionState {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "{e}"),
            CoreError::Query(e) => write!(f, "{e}"),
            CoreError::Fit(e) => write!(f, "{e}"),
            CoreError::Model(e) => write!(f, "{e}"),
            CoreError::Approx(e) => write!(f, "{e}"),
            CoreError::Expr(e) => write!(f, "{e}"),
            CoreError::QualityRejected { r2, min_r2 } => {
                write!(f, "model rejected by quality gate: R² {r2:.4} < required {min_r2:.4}")
            }
            CoreError::CompressionState { detail } => {
                write!(f, "compression state error: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Query(e) => Some(e),
            CoreError::Fit(e) => Some(e),
            CoreError::Model(e) => Some(e),
            CoreError::Approx(e) => Some(e),
            CoreError::Expr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<lawsdb_storage::StorageError> for CoreError {
    fn from(e: lawsdb_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}
impl From<lawsdb_query::QueryError> for CoreError {
    fn from(e: lawsdb_query::QueryError) -> Self {
        CoreError::Query(e)
    }
}
impl From<lawsdb_fit::FitError> for CoreError {
    fn from(e: lawsdb_fit::FitError) -> Self {
        CoreError::Fit(e)
    }
}
impl From<lawsdb_models::ModelError> for CoreError {
    fn from(e: lawsdb_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}
impl From<lawsdb_approx::ApproxError> for CoreError {
    fn from(e: lawsdb_approx::ApproxError) -> Self {
        CoreError::Approx(e)
    }
}
impl From<lawsdb_expr::ExprError> for CoreError {
    fn from(e: lawsdb_expr::ExprError) -> Self {
        CoreError::Expr(e)
    }
}
