//! The interception session — Figure 2 of the paper, as an API.
//!
//! The analyst believes they are working on a local data frame; the
//! frame is a *strawman* for a database table ("constructing a so-called
//! 'strawman object' in the statistical environment, which wraps a
//! database table or query result, but is indistinguishable from a local
//! dataset"). Fitting against the frame is transparently offloaded into
//! the engine (step 2), which judges and stores the model (step 3) and
//! returns the goodness of fit; later value queries are answered from
//! the captured model with error bounds (steps 4–5).
//!
//! The [`TransferModel`] prices the counterfactual: what shipping the
//! frame's bytes to the client for a local fit would have cost. That
//! simulated saving is the quantity experiment E3 sweeps.

use crate::engine::{Answer, LawsDb};
use crate::error::Result;
use lawsdb_approx::ApproxAnswer;
use lawsdb_fit::FitOptions as RawFitOptions;
use lawsdb_models::model::ModelId;
use std::sync::Arc;

/// Client↔server link model for the offload comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Link bandwidth in MB/s.
    pub bandwidth_mb_s: f64,
    /// Per-request latency in microseconds.
    pub latency_us: f64,
}

impl Default for TransferModel {
    fn default() -> Self {
        // A 2015-era office link to the database server: 1 Gb/s, 500 µs.
        TransferModel { bandwidth_mb_s: 125.0, latency_us: 500.0 }
    }
}

impl TransferModel {
    /// Simulated microseconds to ship `bytes` over this link.
    pub fn ship_us(&self, bytes: usize) -> f64 {
        self.latency_us + bytes as f64 / self.bandwidth_mb_s
    }
}

/// A strawman handle on a database table: to the analyst it looks like a
/// local data set; every operation on it runs inside the engine.
#[derive(Debug, Clone)]
pub struct RemoteFrame {
    /// The wrapped table name.
    pub table: String,
    /// Row count at handle creation (display metadata, like a data
    /// frame's `nrow`).
    pub rows: usize,
    /// Byte size of the wrapped data — what a naive client would pull.
    pub bytes: usize,
}

/// Options for a session fit.
#[derive(Debug, Clone, Default)]
pub struct FitOptions {
    /// Fit per group of this column ("a set of model parameters for
    /// each aggregation group").
    pub group_by: Option<String>,
    /// Underlying optimizer options.
    pub raw: RawFitOptions,
}

impl FitOptions {
    /// Grouped fit by a key column.
    pub fn grouped_by(column: &str) -> FitOptions {
        FitOptions { group_by: Some(column.to_string()), raw: RawFitOptions::default() }
    }

    /// Global (ungrouped) fit.
    pub fn global() -> FitOptions {
        FitOptions::default()
    }

    /// Override the raw optimizer options.
    pub fn with_raw(mut self, raw: RawFitOptions) -> FitOptions {
        self.raw = raw;
        self
    }
}

/// What the analyst gets back from an intercepted fit — Figure 2 step 3:
/// "the database dutifully fits the model and returns the goodness of
/// fit. At the same time, the database stores the model as well as its
/// parameters for later use."
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Catalog id of the stored model.
    pub model: ModelId,
    /// Pooled R².
    pub overall_r2: f64,
    /// Parameter vectors stored (1, or the group count).
    pub parameter_vectors: usize,
    /// Bytes of stored parameters.
    pub parameter_bytes: usize,
    /// Bytes the client *would* have pulled for a local fit.
    pub bytes_not_shipped: usize,
    /// Simulated microseconds saved by not shipping them.
    pub transfer_saved_us: f64,
}

/// One entry in the session's interception audit trail.
#[derive(Debug, Clone, PartialEq)]
pub enum InterceptEvent {
    /// A fit was intercepted and executed in-engine.
    FitIntercepted {
        /// Table fitted against.
        table: String,
        /// Formula source.
        formula: String,
        /// Stored model id.
        model: ModelId,
    },
    /// A query was answered from a captured model.
    AnsweredApproximately {
        /// The SQL text.
        sql: String,
        /// Reconstructed tuples.
        tuples: usize,
    },
    /// A query fell back to exact execution.
    FellBackToExact {
        /// The SQL text.
        sql: String,
    },
}

/// An interception session over one engine.
pub struct Session<'db> {
    db: &'db LawsDb,
    /// Link model for offload accounting.
    pub transfer: TransferModel,
    log: Vec<InterceptEvent>,
}

impl<'db> Session<'db> {
    pub(crate) fn new(db: &'db LawsDb) -> Session<'db> {
        Session { db, transfer: TransferModel::default(), log: Vec::new() }
    }

    /// Wrap a table in a strawman frame (Figure 2 step 1).
    pub fn frame(&self, table: &str) -> Result<RemoteFrame> {
        let t = self.db.table(table)?;
        Ok(RemoteFrame {
            table: t.name().to_string(),
            rows: t.row_count(),
            bytes: t.byte_size(),
        })
    }

    /// Fit a model against a frame — the interception (steps 2–3).
    pub fn fit(
        &mut self,
        frame: &RemoteFrame,
        formula: &str,
        options: FitOptions,
    ) -> Result<FitReport> {
        let model = self.db.capture_model(
            &frame.table,
            formula,
            options.group_by.as_deref(),
            &options.raw,
        )?;
        self.log.push(InterceptEvent::FitIntercepted {
            table: frame.table.clone(),
            formula: formula.to_string(),
            model: model.id,
        });
        Ok(self.report_for(&model, frame))
    }

    fn report_for(
        &self,
        model: &Arc<lawsdb_models::CapturedModel>,
        frame: &RemoteFrame,
    ) -> FitReport {
        FitReport {
            model: model.id,
            overall_r2: model.overall_r2,
            parameter_vectors: model.params.vector_count(),
            parameter_bytes: model.params.byte_size(),
            bytes_not_shipped: frame.bytes,
            transfer_saved_us: self.transfer.ship_us(frame.bytes),
        }
    }

    /// Approximate query (steps 4–5); logged.
    pub fn query_approx(&mut self, sql: &str) -> Result<ApproxAnswer> {
        let a = self.db.query_approx(sql)?;
        self.log.push(InterceptEvent::AnsweredApproximately {
            sql: sql.to_string(),
            tuples: a.tuples_reconstructed,
        });
        Ok(a)
    }

    /// Transparent query: model-backed when possible, exact otherwise;
    /// the fallback is logged.
    pub fn query(&mut self, sql: &str) -> Result<Answer> {
        let ans = self.db.query_transparent(sql)?;
        match &ans {
            Answer::Approx(a) => self.log.push(InterceptEvent::AnsweredApproximately {
                sql: sql.to_string(),
                tuples: a.tuples_reconstructed,
            }),
            Answer::Exact(_) => {
                self.log.push(InterceptEvent::FellBackToExact { sql: sql.to_string() })
            }
        }
        Ok(ans)
    }

    /// The interception audit trail.
    pub fn log(&self) -> &[InterceptEvent] {
        &self.log
    }

    /// The engine's metrics in Prometheus text exposition format — the
    /// session-level `stats` command (DESIGN.md §12).
    pub fn stats_prometheus(&self) -> String {
        self.db.stats_prometheus()
    }

    /// The engine's metrics as JSON.
    pub fn stats_json(&self) -> String {
        self.db.stats_json()
    }

    /// `EXPLAIN ANALYZE`: run the query through the resilient ladder
    /// with full profiling and return the rendered execution tree —
    /// ladder decisions, plan-node spans, per-morsel timings, pruning
    /// and governor points, and any bridged storage events.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String> {
        let r = self.db.query_resilient_profiled(sql)?;
        match &r.answer {
            Answer::Approx(a) => self.log.push(InterceptEvent::AnsweredApproximately {
                sql: sql.to_string(),
                tuples: a.tuples_reconstructed,
            }),
            Answer::Exact(_) => {
                self.log.push(InterceptEvent::FellBackToExact { sql: sql.to_string() })
            }
        }
        Ok(r.profile.map(|p| p.render()).unwrap_or_default())
    }

    /// Model exploration (Section 4.2): the `top_k` steepest points of
    /// a captured model's parameter space, by gradient magnitude —
    /// "find interesting subsets of the data by analyzing the first
    /// derivative of the model function".
    pub fn explore(
        &self,
        model: ModelId,
        top_k: usize,
    ) -> Result<Vec<lawsdb_approx::explore::GradientPoint>> {
        let m = self.db.models().get(model)?;
        Ok(lawsdb_approx::explore::explore_gradients(&m, top_k)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::TableBuilder;

    fn db_with_lofar() -> LawsDb {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for s in 0..3i64 {
            let (p, a) = (2.0 - s as f64 * 0.5, -0.7 - s as f64 * 0.1);
            for i in 0..40 {
                src.push(s);
                nu.push(freqs[i % 4]);
                intensity.push(p * freqs[i % 4].powf(a));
            }
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        let db = LawsDb::new();
        db.register_table(b.build().unwrap()).unwrap();
        db
    }

    #[test]
    fn figure_two_protocol_end_to_end() {
        let db = db_with_lofar();
        let mut session = db.session();
        // (1) strawman frame
        let frame = session.frame("measurements").unwrap();
        assert_eq!(frame.rows, 120);
        assert!(frame.bytes > 0);
        // (2–3) intercepted fit returns goodness of fit
        let report = session
            .fit(&frame, "intensity ~ p * nu ^ alpha", FitOptions::grouped_by("source"))
            .unwrap();
        assert!(report.overall_r2 > 0.99);
        assert_eq!(report.parameter_vectors, 3);
        assert!(report.transfer_saved_us > 0.0);
        // (4–5) model answers with error bounds
        let answer = session
            .query_approx("SELECT intensity FROM measurements WHERE source = 1 AND nu = 0.16")
            .unwrap();
        assert_eq!(answer.rows_scanned, 0);
        assert!(answer.error_bound.is_some());
        // The audit trail saw both events.
        assert_eq!(session.log().len(), 2);
        assert!(matches!(session.log()[0], InterceptEvent::FitIntercepted { .. }));
        assert!(matches!(session.log()[1], InterceptEvent::AnsweredApproximately { .. }));
    }

    #[test]
    fn transparent_query_logs_fallbacks() {
        let db = db_with_lofar();
        let mut session = db.session();
        let ans = session.query("SELECT COUNT(*) FROM measurements").unwrap();
        assert!(!ans.is_approximate());
        assert!(matches!(session.log()[0], InterceptEvent::FellBackToExact { .. }));
    }

    #[test]
    fn transfer_model_scales_with_bytes_and_bandwidth() {
        let slow = TransferModel { bandwidth_mb_s: 10.0, latency_us: 100.0 };
        let fast = TransferModel { bandwidth_mb_s: 1000.0, latency_us: 100.0 };
        let mb = 1_000_000;
        assert!(slow.ship_us(mb) > fast.ship_us(mb));
        assert!((slow.ship_us(mb) - (100.0 + 100_000.0)).abs() < 1e-9);
        assert!(slow.ship_us(2 * mb) > slow.ship_us(mb));
    }

    #[test]
    fn session_explore_ranks_gradients() {
        let db = db_with_lofar();
        let mut session = db.session();
        let frame = session.frame("measurements").unwrap();
        let report = session
            .fit(
                &frame,
                "intensity ~ p * nu ^ alpha",
                FitOptions::grouped_by("source")
                    .with_raw(RawFitOptions::default().with_initial("alpha", -0.7)),
            )
            .unwrap();
        let top = session.explore(report.model, 5).unwrap();
        assert_eq!(top.len(), 5);
        // Power laws with negative α are steepest at the lowest ν.
        assert_eq!(top[0].inputs, vec![0.12]);
        assert!(top[0].gradient_norm >= top[4].gradient_norm);
    }

    #[test]
    fn frame_for_missing_table_errors() {
        let db = LawsDb::new();
        let session = db.session();
        assert!(session.frame("zz").is_err());
    }
}
