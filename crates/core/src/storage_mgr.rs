//! Model-based physical storage — Section 4.1 realized.
//!
//! "If we use the user-supplied model as a compression model, we can
//! expect high compression rates … A straightforward compression method
//! would be to store only the differences between the predicted and
//! observed values. Using the model and trained parameters, we can then
//! recompute the original dataset without loss of information."
//!
//! [`compress_column`] does exactly that: predict the response column
//! from a captured model, encode only the residual stream (lossless XOR
//! or bounded-error quantized), and account the bytes. Decompression
//! re-predicts and adds the residuals back — bit-exact in lossless mode.
//!
//! Rows the model cannot predict (groups whose fit failed) are carried
//! as an explicit exception list, preserving losslessness over partial
//! coverage (Section 4.1's "multiple, partial or grouped models").

use crate::error::{CoreError, Result};
use crate::resilience::DegradeReason;
use lawsdb_models::bridge::predict_table;
use lawsdb_models::{CapturedModel, ModelCatalog};
use lawsdb_storage::compress::{residual, varint};
use lawsdb_storage::wal::DurableStore;
use lawsdb_storage::{BlockDevice, Column, IoStats, RecoveryReport, Table};

/// Residual encoding mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CompressionMode {
    /// Bit-exact reconstruction (XOR residuals).
    Lossless,
    /// Bounded-error reconstruction: |error| ≤ eps/2.
    Quantized {
        /// Quantization step.
        eps: f64,
    },
}

/// A semantically compressed column.
#[derive(Debug, Clone)]
pub struct CompressedColumn {
    /// Source table.
    pub table: String,
    /// Compressed column name.
    pub column: String,
    /// Mode used.
    pub mode: CompressionMode,
    /// The encoded payload (residual stream + exception list).
    payload: Vec<u8>,
    /// Raw byte size of the original column buffer.
    pub raw_bytes: usize,
}

impl CompressedColumn {
    /// Compressed payload size in bytes (excludes the model parameters,
    /// which are shared across all uses of the model; add
    /// `model.params.byte_size()` for standalone accounting).
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Compression ratio `compressed / raw` for this column alone.
    pub fn ratio(&self) -> f64 {
        self.compressed_bytes() as f64 / self.raw_bytes.max(1) as f64
    }
}

/// Compress the model's response column of `table` against the model's
/// predictions.
pub fn compress_column(
    model: &CapturedModel,
    table: &Table,
    mode: CompressionMode,
) -> Result<CompressedColumn> {
    let column = &model.coverage.response;
    let observed_col = table.column(column)?;
    let observed = observed_col.to_f64_lossy()?;
    let mut predicted = predict_table(model, table)?;

    // Exception list: rows without a usable prediction (NaN from
    // unfitted groups). Their raw values ride along verbatim so
    // reconstruction stays exact. NaN *observations* are fine — the
    // lossless XOR codec round-trips them; only NaN predictions with
    // non-NaN observations need the escape hatch.
    let mut exceptions: Vec<(usize, f64)> = Vec::new();
    for (i, p) in predicted.iter_mut().enumerate() {
        if p.is_nan() {
            exceptions.push((i, observed[i]));
            *p = 0.0; // stable baseline for the codec
        }
    }

    let body = match mode {
        CompressionMode::Lossless => residual::encode_lossless(&observed, &predicted)?,
        CompressionMode::Quantized { eps } => {
            residual::encode_quantized(&observed, &predicted, eps)?
        }
    };
    let mut payload = Vec::with_capacity(body.len() + exceptions.len() * 12 + 16);
    varint::put_u64(&mut payload, exceptions.len() as u64);
    let mut prev = 0u64;
    for (i, v) in &exceptions {
        // Delta-coded row indices; raw value bits.
        varint::put_u64(&mut payload, *i as u64 - prev);
        prev = *i as u64;
        payload.extend_from_slice(&v.to_le_bytes());
    }
    payload.extend_from_slice(&body);
    Ok(CompressedColumn {
        table: table.name().to_string(),
        column: column.clone(),
        mode,
        payload,
        raw_bytes: observed_col.byte_size(),
    })
}

/// Reconstruct the column values from a compressed payload plus the
/// model and the table's *input* columns (which stay stored raw — the
/// model needs them to re-predict).
pub fn decompress_column(
    compressed: &CompressedColumn,
    model: &CapturedModel,
    table: &Table,
) -> Result<Vec<f64>> {
    let mut predicted = predict_table(model, table)?;
    let mut pos = 0usize;
    let n_exc = varint::get_u64(&compressed.payload, &mut pos)
        .map_err(CoreError::Storage)? as usize;
    let mut exceptions = Vec::with_capacity(n_exc);
    let mut prev = 0u64;
    for _ in 0..n_exc {
        let delta = varint::get_u64(&compressed.payload, &mut pos)
            .map_err(CoreError::Storage)?;
        let idx = (prev + delta) as usize;
        prev += delta;
        let bytes: [u8; 8] = compressed
            .payload
            .get(pos..pos + 8)
            .ok_or_else(|| CoreError::CompressionState {
                detail: "truncated exception list".to_string(),
            })?
            .try_into()
            .expect("8 bytes sliced");
        pos += 8;
        exceptions.push((idx, f64::from_le_bytes(bytes)));
    }
    for (i, p) in predicted.iter_mut().enumerate() {
        if p.is_nan() {
            *p = 0.0; // must mirror the encode-side baseline
        }
        let _ = i;
    }
    let body = &compressed.payload[pos..];
    let mut values = match compressed.mode {
        CompressionMode::Lossless => {
            residual::decode_lossless(body, &predicted).map_err(CoreError::Storage)?
        }
        CompressionMode::Quantized { .. } => {
            residual::decode_quantized(body, &predicted).map_err(CoreError::Storage)?
        }
    };
    for (idx, v) in exceptions {
        if idx >= values.len() {
            return Err(CoreError::CompressionState {
                detail: format!("exception row {idx} out of range"),
            });
        }
        values[idx] = v;
    }
    Ok(values)
}

/// Crash-safe database state: paged tables plus the model catalog
/// behind the storage crate's WAL + atomic-commit protocol.
///
/// This is the engine-facing face of the durability layer. Open with
/// [`DurableDb::new`] + [`DurableDb::recover`]; every mutation is one
/// atomic commit, so a crash at any device operation recovers to
/// exactly the pre- or post-commit state (the crash-matrix suites in
/// `lawsdb-storage` and this crate prove it op by op).
#[derive(Debug)]
pub struct DurableDb<D: BlockDevice> {
    store: DurableStore<D>,
}

impl<D: BlockDevice> DurableDb<D> {
    /// Wrap a device; performs no IO until [`DurableDb::recover`].
    pub fn new(device: D) -> DurableDb<D> {
        DurableDb { store: DurableStore::new(device, 8) }
    }

    /// Open the database: format an empty device, or replay / roll back
    /// a crashed one. Must be called (successfully) before anything
    /// else.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        self.store.recover().map_err(CoreError::Storage)
    }

    /// Commit sequence the database is at.
    pub fn seq(&self) -> u64 {
        self.store.seq()
    }

    /// Durably store a new table (one atomic commit).
    pub fn store_table(&mut self, table: &Table) -> Result<()> {
        self.store.store_table(table).map_err(CoreError::Storage)
    }

    /// Replace (or freshly store) a table in one atomic commit — the
    /// data-change path after appends or recompression.
    pub fn replace_table(&mut self, table: &Table) -> Result<()> {
        self.store.replace_table(table).map_err(CoreError::Storage)
    }

    /// Drop a table in one atomic commit.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.store.drop_table(name).map_err(CoreError::Storage)
    }

    /// Read a stored table back, checksum-verified.
    pub fn read_table(&self, name: &str) -> Result<Table> {
        self.store.read_table(name).map_err(CoreError::Storage)
    }

    /// Read a stored table, degrading gracefully around checksum
    /// failures instead of refusing the whole table.
    ///
    /// Columns live in separate extents, so a corrupt (quarantined)
    /// page takes out exactly one column. For each unreadable column
    /// the ladder is: re-derive it from the best active model in
    /// `models` covering `(table, column)` — predictions are within the
    /// model's fitted residual bound — else drop the column and carry a
    /// [`DegradeReason::ColumnLost`] warning. A clean read returns the
    /// exact table and no reasons. Only a table whose *every* column is
    /// unreadable (or whose directory is gone) still errors.
    pub fn read_table_resilient(
        &self,
        name: &str,
        models: &ModelCatalog,
    ) -> Result<(Table, Vec<DegradeReason>)> {
        match self.store.read_table(name) {
            Ok(t) => return Ok((t, Vec::new())),
            Err(
                lawsdb_storage::StorageError::ChecksumMismatch { .. }
                | lawsdb_storage::StorageError::CorruptData { .. },
            ) => {}
            Err(e) => return Err(CoreError::Storage(e)),
        }
        // Salvage pass: read column by column.
        let st = self.store.stored_table(name).map_err(CoreError::Storage)?;
        let schema = st.schema.clone();
        let mut good: Vec<Option<Column>> = Vec::with_capacity(schema.len());
        let mut failed: Vec<(usize, String)> = Vec::new();
        for (i, field) in schema.fields().iter().enumerate() {
            match self.store.read_column(name, i) {
                Ok(c) => good.push(Some(c)),
                Err(e) => {
                    good.push(None);
                    failed.push((i, format!("{}: {e}", field.name)));
                }
            }
        }
        let mut degraded = Vec::new();
        // Reconstruction needs the model's input columns, which must
        // themselves have survived; a partial table holding only the
        // readable columns is what the model predicts against.
        let readable = Table::new(
            name.to_string(),
            lawsdb_storage::schema::Schema::new(
                schema
                    .fields()
                    .iter()
                    .zip(&good)
                    .filter(|(_, c)| c.is_some())
                    .map(|(f, _)| f.clone())
                    .collect(),
            ),
            good.iter().flatten().cloned().collect(),
        )
        .map_err(CoreError::Storage)?;
        for (i, detail) in failed {
            let field = &schema.fields()[i];
            let column = field.name.clone();
            // Models predict floats; a lost non-float column can only
            // be dropped. `best_for(…, false)` already restricts to
            // Active models.
            let rederived = (field.data_type == lawsdb_storage::DataType::Float64)
                .then(|| models.best_for(name, &column, false).ok())
                .flatten()
                .filter(|m| {
                    m.coverage.predicate.is_none() && m.coverage.rows_at_fit == st.rows
                })
                .and_then(|m| {
                    let preds = predict_table(&m, &readable).ok()?;
                    preds.iter().all(|p| p.is_finite()).then_some((m, preds))
                });
            match rederived {
                Some((m, preds)) => {
                    good[i] = Some(Column::from_f64(preds));
                    degraded.push(DegradeReason::ColumnReconstructed {
                        column,
                        model: m.id,
                        error_bound: m.max_abs_residual,
                    });
                }
                None => {
                    degraded.push(DegradeReason::ColumnLost { column, detail });
                }
            }
        }
        let fields: Vec<lawsdb_storage::schema::Field> = schema
            .fields()
            .iter()
            .zip(&good)
            .filter(|(_, c)| c.is_some())
            .map(|(f, _)| f.clone())
            .collect();
        if fields.is_empty() {
            return Err(CoreError::CompressionState {
                detail: format!("table {name:?}: every column failed verification"),
            });
        }
        let table = Table::new(
            name.to_string(),
            lawsdb_storage::schema::Schema::new(fields),
            good.into_iter().flatten().collect(),
        )
        .map_err(CoreError::Storage)?;
        Ok((table, degraded))
    }

    /// Names of all stored tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.store.table_names()
    }

    /// Durably persist the model catalog (one atomic commit). Models
    /// travel in source form — the paper's "store the models in their
    /// source code form inside the database", made crash-safe.
    pub fn save_models(&mut self, catalog: &ModelCatalog) -> Result<()> {
        catalog.save_to_store(&mut self.store).map_err(CoreError::Model)
    }

    /// Load the model catalog the store recovered to (empty if none was
    /// ever saved).
    pub fn load_models(&self) -> Result<ModelCatalog> {
        ModelCatalog::load_from_store(&self.store).map_err(CoreError::Model)
    }

    /// Page range `(start, byte_len)` of one stored column's extent —
    /// the targeting hook fault-injection tests use to corrupt a
    /// specific column.
    pub fn column_pages(&self, name: &str, index: usize) -> Result<(u64, u64)> {
        let st = self.store.stored_table(name).map_err(CoreError::Storage)?;
        let ext = st.columns.get(index).ok_or(CoreError::CompressionState {
            detail: format!("table {name:?} has no column {index}"),
        })?;
        Ok((ext.start, ext.byte_len))
    }

    /// Device access counters.
    pub fn stats(&self) -> IoStats {
        self.store.stats()
    }

    /// Surrender the device (simulated-restart path).
    pub fn into_device(self) -> D {
        self.store.into_device()
    }

    /// Borrow the underlying device (fault-injection harnesses count
    /// device operations through this).
    pub fn device(&self) -> &D {
        self.store.device()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_fit::FitOptions;
    use lawsdb_models::bridge::fit_table_grouped;
    use lawsdb_storage::{Column, TableBuilder};

    fn noisy_lofar(n_sources: usize) -> Table {
        let freqs: [f64; 4] = [0.12, 0.15, 0.16, 0.18];
        let mut src = Vec::new();
        let mut nu = Vec::new();
        let mut intensity = Vec::new();
        for s in 0..n_sources as i64 {
            let p = 0.5 + (s as f64 * 0.37) % 2.0;
            let a = -0.9 + (s as f64 * 0.13) % 0.5;
            for i in 0..40usize {
                let f = freqs[i % 4];
                let noise =
                    ((i as u64 ^ s as u64).wrapping_mul(0x9E3779B9) % 1000) as f64 / 1e5;
                src.push(s);
                nu.push(f);
                intensity.push(p * f.powf(a) + noise);
            }
        }
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", src);
        b.add_f64("nu", nu);
        b.add_f64("intensity", intensity);
        b.build().unwrap()
    }

    fn fitted(table: &Table) -> CapturedModel {
        fit_table_grouped(
            table,
            "intensity ~ p * nu ^ alpha",
            "source",
            &FitOptions::default(),
            2,
        )
        .unwrap()
        .0
    }

    #[test]
    fn lossless_roundtrip_is_bit_exact() {
        let t = noisy_lofar(10);
        let m = fitted(&t);
        let c = compress_column(&m, &t, CompressionMode::Lossless).unwrap();
        let back = decompress_column(&c, &m, &t).unwrap();
        let original = t.column("intensity").unwrap().f64_data().unwrap();
        assert_eq!(back.len(), original.len());
        for (a, b) in original.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(c.ratio() < 1.0, "semantic compression should win: {}", c.ratio());
    }

    #[test]
    fn quantized_respects_bound_and_compresses_harder() {
        let t = noisy_lofar(10);
        let m = fitted(&t);
        let eps = 1e-4;
        let lossless = compress_column(&m, &t, CompressionMode::Lossless).unwrap();
        let quant = compress_column(&m, &t, CompressionMode::Quantized { eps }).unwrap();
        assert!(quant.compressed_bytes() < lossless.compressed_bytes());
        let back = decompress_column(&quant, &m, &t).unwrap();
        let original = t.column("intensity").unwrap().f64_data().unwrap();
        for (a, b) in original.iter().zip(&back) {
            assert!((a - b).abs() <= eps / 2.0 + 1e-12);
        }
    }

    #[test]
    fn unfitted_group_rows_ride_as_exceptions() {
        let mut t = noisy_lofar(5);
        // A one-row group cannot be fitted → its row must be exact.
        t.append_rows(&[
            Column::from_i64(vec![999]),
            Column::from_f64(vec![0.15]),
            Column::from_f64(vec![123.456]),
        ])
        .unwrap();
        let m = fitted(&t);
        let c = compress_column(&m, &t, CompressionMode::Quantized { eps: 1e-3 }).unwrap();
        let back = decompress_column(&c, &m, &t).unwrap();
        assert_eq!(*back.last().unwrap(), 123.456, "exception row must be exact");
    }

    /// Store `t`, flip a byte inside the extent of column `index`, and
    /// reopen — the fault-injection preamble both salvage tests share.
    fn corrupted_db(
        t: &Table,
        index: usize,
    ) -> DurableDb<lawsdb_storage::SimulatedDevice> {
        let mut db = DurableDb::new(lawsdb_storage::SimulatedDevice::new(256));
        db.recover().unwrap();
        db.store_table(t).unwrap();
        let (start, _) = db.column_pages("measurements", index).unwrap();
        let mut dev = db.into_device();
        dev.poke_page(start).unwrap()[0] ^= 0xFF;
        let mut db = DurableDb::new(dev);
        db.recover().unwrap();
        db
    }

    #[test]
    fn quarantined_column_is_rederived_from_the_model() {
        let t = noisy_lofar(6);
        let models = ModelCatalog::new();
        let stored = models.store(fitted(&t));
        let db = corrupted_db(&t, 2); // intensity
        assert!(db.read_table("measurements").is_err(), "corruption must be detected");
        let (salvaged, reasons) = db.read_table_resilient("measurements", &models).unwrap();
        assert!(
            matches!(
                reasons.as_slice(),
                [DegradeReason::ColumnReconstructed { column, .. }] if column == "intensity"
            ),
            "{reasons:?}"
        );
        let bound = stored.max_abs_residual.unwrap();
        let recon = salvaged.column("intensity").unwrap().f64_data().unwrap();
        let orig = t.column("intensity").unwrap().f64_data().unwrap();
        assert_eq!(recon.len(), orig.len());
        for (r, o) in recon.iter().zip(orig) {
            assert!(
                (r - o).abs() <= bound + 1e-9,
                "reconstruction must stay within the fitted bound: |{r} - {o}| > {bound}"
            );
        }
        // The surviving columns come back exact.
        assert_eq!(
            salvaged.column("nu").unwrap().f64_data().unwrap(),
            t.column("nu").unwrap().f64_data().unwrap()
        );
    }

    #[test]
    fn quarantined_column_without_model_is_dropped_with_warning() {
        let t = noisy_lofar(4);
        let db = corrupted_db(&t, 2);
        let (salvaged, reasons) =
            db.read_table_resilient("measurements", &ModelCatalog::new()).unwrap();
        assert!(
            matches!(
                reasons.as_slice(),
                [DegradeReason::ColumnLost { column, .. }] if column == "intensity"
            ),
            "{reasons:?}"
        );
        assert!(salvaged.column("intensity").is_err(), "lost column is dropped");
        assert_eq!(salvaged.schema().len(), 2);
        assert_eq!(salvaged.row_count(), t.row_count());
    }

    #[test]
    fn clean_reads_carry_no_degradation() {
        let t = noisy_lofar(3);
        let mut db = DurableDb::new(lawsdb_storage::SimulatedDevice::new(256));
        db.recover().unwrap();
        db.store_table(&t).unwrap();
        let (salvaged, reasons) =
            db.read_table_resilient("measurements", &ModelCatalog::new()).unwrap();
        assert!(reasons.is_empty());
        assert_eq!(salvaged.row_count(), t.row_count());
    }

    #[test]
    fn better_fit_compresses_better() {
        // Same data, one model fitted on clean data, one deliberately
        // poisoned by refitting against shuffled responses.
        let t = noisy_lofar(8);
        let good = fitted(&t);
        // Build a "bad model" by fitting against a scrambled copy.
        let scrambled = {
            let src = t.column("source").unwrap().clone();
            let nu = t.column("nu").unwrap().clone();
            let intensity = t.column("intensity").unwrap().f64_data().unwrap();
            let mut shuffled = intensity.to_vec();
            shuffled.rotate_left(intensity.len() / 3);
            let mut b = TableBuilder::new("measurements");
            b.add_column(
                lawsdb_storage::schema::Field::new(
                    "source",
                    lawsdb_storage::DataType::Int64,
                ),
                src,
            );
            b.add_column(
                lawsdb_storage::schema::Field::new("nu", lawsdb_storage::DataType::Float64),
                nu,
            );
            b.add_f64("intensity", shuffled);
            b.build().unwrap()
        };
        let bad = fitted(&scrambled);
        let cg = compress_column(&good, &t, CompressionMode::Lossless).unwrap();
        let cb = compress_column(&bad, &t, CompressionMode::Lossless).unwrap();
        assert!(
            cg.compressed_bytes() < cb.compressed_bytes(),
            "good {} vs bad {}",
            cg.compressed_bytes(),
            cb.compressed_bytes()
        );
    }
}
