//! # lawsdb-core
//!
//! The end-to-end LawsDB system: the paper's vision assembled from the
//! substrate crates.
//!
//! * [`engine::LawsDb`] — tables + model catalog + query engines in one
//!   handle: exact SQL, approximate SQL from captured models, model
//!   capture with quality judgment, data-change invalidation and
//!   re-fitting.
//! * [`session`] — the **interception protocol of Figure 2**: a
//!   [`session::Session`] hands out strawman [`session::RemoteFrame`]
//!   handles; `fit()` calls against a frame execute *inside* the engine
//!   (step 2), return the goodness of fit (step 3), and leave the model
//!   behind in the catalog; later queries are answered from the model
//!   with error bounds (steps 4–5). A configurable
//!   [`session::TransferModel`] prices what shipping the data to the
//!   client would have cost, reproducing the paper's motivation for
//!   in-database fitting.
//! * [`storage_mgr`] — model-based physical storage (Section 4.1):
//!   semantic compression of response columns against captured models
//!   (lossless XOR or bounded-error quantized), recompression after a
//!   re-fit, and byte accounting for the compression experiments; plus
//!   [`storage_mgr::DurableDb`], the crash-safe home for tables and the
//!   model catalog (WAL-backed atomic commits, `recover()` on restart).

pub mod engine;
pub mod error;
pub mod resilience;
pub mod session;
pub mod storage_mgr;

pub use engine::{Answer, LawsDb, QualityPolicy};
pub use error::{CoreError, Result};
pub use resilience::{DegradeReason, HealthCounters, HealthSnapshot, ResilientAnswer};
pub use session::{FitOptions, FitReport, RemoteFrame, Session, TransferModel};
pub use storage_mgr::{CompressedColumn, CompressionMode, DurableDb};
