//! Graceful model-to-exact degradation: the resilience ladder.
//!
//! The paper's transparent query path answers from a captured model
//! whenever one covers the query. This module makes that path *safe to
//! trust*: before an approximate answer is returned, the engine verifies
//! the answering model is still current (row count unchanged since the
//! fit, sampled residuals within the fitted bound); a model that fails
//! either check is demoted to [`ModelState::Stale`](lawsdb_models::ModelState)
//! and the query transparently re-runs on the exact path. Every such
//! decision is recorded as a [`DegradeReason`] on the returned
//! [`ResilientAnswer`] and counted in the engine's [`HealthCounters`] —
//! degradation is observable, never silent.
//!
//! The same ladder covers storage: a quarantined (checksum-failed) page
//! is first re-derived from a covering model
//! ([`DurableDb::read_table_resilient`](crate::DurableDb::read_table_resilient)),
//! and only if no model covers the lost column does the read degrade to
//! a partial table carrying a warning.
//!
//! The drift sampler is seeded from `LAWSDB_FAULT_SEED`, so every
//! degradation decision is reproducible from a printed seed — the same
//! discipline the crash matrix uses.

use crate::engine::Answer;
use lawsdb_models::model::ModelId;
use lawsdb_obs::{Counter, MetricsRegistry, QueryProfile};
use std::sync::Arc;

/// Why a query (or read) was answered by a lower rung of the ladder
/// than the one that was tried first.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// No captured model covers the query; answered exactly. The normal
    /// fallback, recorded so callers can tell it from model demotions.
    NoModel {
        /// The approximate engine's refusal, stringified.
        detail: String,
    },
    /// The answering model was fitted against a different row count
    /// than the table now has; demoted to stale, answered exactly.
    StaleRowCount {
        /// The demoted model.
        model: ModelId,
        /// Rows when the model was fitted.
        rows_at_fit: usize,
        /// Rows now.
        rows_now: usize,
    },
    /// Sampled residuals exceeded the model's fitted bound — the data
    /// drifted under the model; demoted to stale, answered exactly.
    ResidualDrift {
        /// The demoted model.
        model: ModelId,
        /// Largest sampled |observed − predicted|.
        observed: f64,
        /// The fitted max |residual| the sample was judged against.
        bound: f64,
        /// Seed the sample rows were drawn from (reproduces the check).
        seed: u64,
    },
    /// A column whose pages failed checksum verification was re-derived
    /// from a covering model instead of being lost.
    ColumnReconstructed {
        /// The lost column.
        column: String,
        /// The model that re-derived it.
        model: ModelId,
        /// ±bound on the reconstructed values, when the model has one.
        error_bound: Option<f64>,
    },
    /// A column failed checksum verification and no model covers it;
    /// the table was returned without it.
    ColumnLost {
        /// The dropped column.
        column: String,
        /// The storage error, stringified.
        detail: String,
    },
    /// Every replica of a cluster shard was down; the shard's slice of
    /// the answer was reconstructed from its captured model instead of
    /// its base rows.
    ShardModelFallback {
        /// The shard whose replicas were all unavailable.
        shard: usize,
        /// ±bound on the reconstructed values, when the model has one.
        error_bound: Option<f64>,
    },
}

impl DegradeReason {
    /// Stable snake_case tag for metrics labels and profile fields.
    pub fn name(&self) -> &'static str {
        match self {
            DegradeReason::NoModel { .. } => "no_model",
            DegradeReason::StaleRowCount { .. } => "stale_row_count",
            DegradeReason::ResidualDrift { .. } => "residual_drift",
            DegradeReason::ColumnReconstructed { .. } => "column_reconstructed",
            DegradeReason::ColumnLost { .. } => "column_lost",
            DegradeReason::ShardModelFallback { .. } => "shard_model_fallback",
        }
    }
}

impl std::fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradeReason::NoModel { detail } => {
                write!(f, "no covering model ({detail}); answered exactly")
            }
            DegradeReason::StaleRowCount { model, rows_at_fit, rows_now } => write!(
                f,
                "model {} fitted at {rows_at_fit} rows but table has {rows_now}; \
                 demoted to stale, answered exactly",
                model.0
            ),
            DegradeReason::ResidualDrift { model, observed, bound, seed } => write!(
                f,
                "model {} drifted: sampled residual {observed:e} exceeds bound {bound:e} \
                 (seed {seed}); demoted to stale, answered exactly",
                model.0
            ),
            DegradeReason::ColumnReconstructed { column, model, error_bound } => write!(
                f,
                "column {column:?} failed verification; reconstructed from model {}{}",
                model.0,
                match error_bound {
                    Some(b) => format!(" (±{b:e})"),
                    None => String::new(),
                }
            ),
            DegradeReason::ColumnLost { column, detail } => {
                write!(f, "column {column:?} failed verification ({detail}) and no model covers it; dropped")
            }
            DegradeReason::ShardModelFallback { shard, error_bound } => write!(
                f,
                "all replicas of shard {shard} down; answered from its captured model{}",
                match error_bound {
                    Some(b) => format!(" (±{b:e})"),
                    None => String::new(),
                }
            ),
        }
    }
}

/// An answer plus the degradation decisions taken to produce it. An
/// empty `degraded` list means the first-choice path answered.
#[derive(Debug, Clone)]
pub struct ResilientAnswer {
    /// The answer (exact or approximate).
    pub answer: Answer,
    /// Every rung of the ladder that was skipped, in decision order.
    pub degraded: Vec<DegradeReason>,
    /// `EXPLAIN ANALYZE`-style profile of the whole ladder (degradation
    /// points + the exact plan when one ran). Attached only by the
    /// profiled entry points; `None` on the plain path.
    pub profile: Option<QueryProfile>,
}

/// Engine-lifetime degradation counters — thin views over named
/// [`MetricsRegistry`] counters (`lawsdb_core_*`), so the engine's
/// health is on the same exposition path as every other metric while
/// the `snapshot()` API callers already use keeps working.
#[derive(Debug)]
pub struct HealthCounters {
    approx_answers: Arc<Counter>,
    exact_fallbacks: Arc<Counter>,
    stale_demotions: Arc<Counter>,
    drift_demotions: Arc<Counter>,
    columns_reconstructed: Arc<Counter>,
    columns_lost: Arc<Counter>,
}

impl Default for HealthCounters {
    /// Standalone counters over a private registry (tests, ad-hoc use);
    /// the engine binds to its own registry via
    /// [`HealthCounters::for_registry`].
    fn default() -> Self {
        HealthCounters::for_registry(&MetricsRegistry::new())
    }
}

/// Point-in-time copy of [`HealthCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthSnapshot {
    /// Queries the model path answered.
    pub approx_answers: u64,
    /// Queries degraded to the exact path (any reason).
    pub exact_fallbacks: u64,
    /// Models demoted for a row-count mismatch.
    pub stale_demotions: u64,
    /// Models demoted for sampled-residual drift.
    pub drift_demotions: u64,
    /// Quarantined columns re-derived from a model.
    pub columns_reconstructed: u64,
    /// Quarantined columns dropped with a warning.
    pub columns_lost: u64,
}

impl HealthCounters {
    /// Bind to named counters in `registry` (`lawsdb_core_*`), so the
    /// same increments feed both [`HealthCounters::snapshot`] and the
    /// registry's Prometheus/JSON exposition.
    pub fn for_registry(registry: &MetricsRegistry) -> HealthCounters {
        HealthCounters {
            approx_answers: registry.counter("lawsdb_core_approx_answers"),
            exact_fallbacks: registry.counter("lawsdb_core_exact_fallbacks"),
            stale_demotions: registry.counter("lawsdb_core_stale_demotions"),
            drift_demotions: registry.counter("lawsdb_core_drift_demotions"),
            columns_reconstructed: registry.counter("lawsdb_core_columns_reconstructed"),
            columns_lost: registry.counter("lawsdb_core_columns_lost"),
        }
    }

    pub(crate) fn record(&self, reason: &DegradeReason) {
        self.exact_fallbacks.inc();
        match reason {
            DegradeReason::NoModel { .. } => {}
            DegradeReason::StaleRowCount { .. } => self.stale_demotions.inc(),
            DegradeReason::ResidualDrift { .. } => self.drift_demotions.inc(),
            DegradeReason::ColumnReconstructed { .. } => {
                self.columns_reconstructed.inc();
            }
            DegradeReason::ColumnLost { .. } => self.columns_lost.inc(),
            // Counted by the cluster's own lawsdb_cluster_model_fallbacks
            // metric; here it only contributes to exact_fallbacks.
            DegradeReason::ShardModelFallback { .. } => {}
        }
    }

    pub(crate) fn record_approx(&self) {
        self.approx_answers.inc();
    }

    /// Current counter values.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            approx_answers: self.approx_answers.get(),
            exact_fallbacks: self.exact_fallbacks.get(),
            stale_demotions: self.stale_demotions.get(),
            drift_demotions: self.drift_demotions.get(),
            columns_reconstructed: self.columns_reconstructed.get(),
            columns_lost: self.columns_lost.get(),
        }
    }
}

/// The fault seed every deterministic resilience decision derives from:
/// `LAWSDB_FAULT_SEED` when set and parseable, a fixed default
/// otherwise. Shared with the storage crate's fault injector so one
/// printed seed reproduces a whole scenario.
pub fn fault_seed() -> u64 {
    std::env::var("LAWSDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0xC0FFEE)
}

/// SplitMix64 — the same tiny deterministic generator the fault
/// injector uses, so sampled row sets are reproducible from the seed.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Draw `k` distinct row indices in `0..rows` from `seed`
/// (deterministic; at most `rows` indices).
pub(crate) fn sample_rows(seed: u64, rows: usize, k: usize) -> Vec<usize> {
    let mut state = seed;
    let mut picked = std::collections::BTreeSet::new();
    let want = k.min(rows);
    // 4·k draws always suffice for k ≤ rows/2; fall back to a dense
    // scan for tiny tables where collisions dominate.
    for _ in 0..want * 4 {
        if picked.len() == want {
            break;
        }
        picked.insert((splitmix64(&mut state) % rows as u64) as usize);
    }
    let mut i = 0;
    while picked.len() < want {
        picked.insert(i);
        i += 1;
    }
    picked.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_distinct() {
        let a = sample_rows(42, 1000, 16);
        let b = sample_rows(42, 1000, 16);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        let c = sample_rows(43, 1000, 16);
        assert_ne!(a, c, "different seeds draw different rows");
    }

    #[test]
    fn sampling_small_tables_covers_everything() {
        assert_eq!(sample_rows(7, 3, 16), vec![0, 1, 2]);
        assert!(sample_rows(7, 0, 16).is_empty());
    }

    #[test]
    fn health_counters_attribute_reasons() {
        let h = HealthCounters::default();
        h.record(&DegradeReason::NoModel { detail: "x".into() });
        h.record(&DegradeReason::StaleRowCount {
            model: ModelId(1),
            rows_at_fit: 10,
            rows_now: 11,
        });
        h.record(&DegradeReason::ResidualDrift {
            model: ModelId(1),
            observed: 1.0,
            bound: 0.1,
            seed: 42,
        });
        let s = h.snapshot();
        assert_eq!(s.exact_fallbacks, 3);
        assert_eq!(s.stale_demotions, 1);
        assert_eq!(s.drift_demotions, 1);
        assert_eq!(s.approx_answers, 0);
    }

    #[test]
    fn default_seed_applies_without_env() {
        // Can't unset the var safely under parallel tests; just check
        // the parse path on the default.
        if std::env::var("LAWSDB_FAULT_SEED").is_err() {
            assert_eq!(fault_seed(), 0xC0FFEE);
        }
    }
}
