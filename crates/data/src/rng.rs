//! Distribution sampling helpers on top of `rand`'s uniform source.
//!
//! The offline `rand` crate ships without `rand_distr`; the little we
//! need (Gaussian and log-normal draws) is implemented here via the
//! Box-Muller transform.

use rand::Rng;

/// One standard-normal draw (Box-Muller, using both uniforms but
/// returning one variate for simplicity — generator throughput is not a
/// bottleneck anywhere in the workloads).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Normal draw with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Log-normal draw: `exp(N(mu, sigma))`.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn normal_scales_and_shifts() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05);
    }

    #[test]
    fn log_normal_is_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(log_normal(&mut rng, 0.0, 1.0) > 0.0);
        }
    }
}
