//! # lawsdb-data
//!
//! Synthetic workload generators with planted ground truth.
//!
//! The paper's evaluation rests on a private LOFAR sample and proposes
//! TPC-DS-style generated data for future evaluation (Section 6). This
//! crate provides faithful synthetic stand-ins (see DESIGN.md §2 for the
//! substitution argument):
//!
//! * [`lofar`] — the running example: per-source power laws
//!   `I = p·ν^α` at the paper's four frequency bands, with
//!   heteroscedastic interference noise, matching row/source counts
//!   (1,452,824 measurements over 35,692 sources at full scale), and
//!   *injected anomalous sources* (flat spectra, spectral turn-overs)
//!   whose identities are recorded as ground truth for E8.
//! * [`timeseries`] — sensor series over enumerable integer timestamps
//!   with per-sensor linear laws: the workload for analytic aggregates
//!   (E7) and the MauveDB grid comparison (E11).
//! * [`retail`] — a TPC-DS-inspired `store_sales` fact table with
//!   planted regularity (seasonality, linear growth, categorical price
//!   levels), the Section 6 proposal: "the generated datasets for
//!   popular database benchmarks … provide a playing field for
//!   model-based storage optimizations".
//!
//! All generators are deterministic under a caller-supplied seed.

pub mod lofar;
pub mod retail;
pub mod rng;
pub mod timeseries;

pub use lofar::{LofarConfig, LofarDataset};
pub use retail::{RetailConfig, RetailDataset};
pub use timeseries::{TimeSeriesConfig, TimeSeriesDataset};
