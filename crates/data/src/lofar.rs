//! Synthetic LOFAR Transients workload.
//!
//! Reproduces the statistical shape of the paper's example data set
//! (Section 2): radio sources observed at four frequency bands, each
//! source following `I = p·ν^α` with a source-specific spectral index α
//! and proportionality constant p, under heavy interference noise. At
//! full scale ([`LofarConfig::paper_scale`]) it matches the paper's
//! 1,452,824 measurements over 35,692 sources (≈ 40.7 observations per
//! source) and ~11 MB of raw column data.
//!
//! A configurable fraction of sources are **anomalous** — the pulsars,
//! quasars and gamma-ray-burst afterglows the LOFAR Transients project
//! actually hunts: their intensity is *not* a clean power law. Their
//! identities are recorded as ground truth so the anomaly-detection
//! experiment (E8) can be scored.

use crate::rng;
use lawsdb_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// The paper's four observed frequency bands (GHz).
pub const PAPER_FREQUENCIES: [f64; 4] = [0.12, 0.15, 0.16, 0.18];

/// Kinds of injected anomalies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Intensity unrelated to frequency (pure noise around a level) —
    /// the paper's "intensity is seemingly unrelated to the frequency".
    FlatNoise,
    /// Spectral turn-over: the power law bends (quadratic term in
    /// log-log space) — "sources that … have turn-overs in their
    /// spectral index".
    TurnOver,
}

/// Ground-truth record for one source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceTruth {
    /// Source id.
    pub source: i64,
    /// True proportionality constant p (NaN for FlatNoise sources).
    pub p: f64,
    /// True spectral index α (NaN for FlatNoise sources).
    pub alpha: f64,
    /// Anomaly kind, if anomalous.
    pub anomaly: Option<AnomalyKind>,
}

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct LofarConfig {
    /// Number of sources.
    pub sources: usize,
    /// Mean observations per source (actual counts vary ±25%).
    pub mean_obs_per_source: f64,
    /// Observed frequency bands.
    pub frequencies: Vec<f64>,
    /// Mean spectral index (thermal emitters cluster near −0.7).
    pub alpha_mean: f64,
    /// Spectral index spread.
    pub alpha_sd: f64,
    /// log-space location of the proportionality constant p.
    pub log_p_mu: f64,
    /// log-space spread of p.
    pub log_p_sigma: f64,
    /// Relative interference noise (fraction of the true intensity).
    pub noise_rel: f64,
    /// Fraction of anomalous sources.
    pub anomaly_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LofarConfig {
    fn default() -> Self {
        LofarConfig {
            sources: 2_000,
            mean_obs_per_source: 40.7,
            frequencies: PAPER_FREQUENCIES.to_vec(),
            alpha_mean: -0.75,
            alpha_sd: 0.2,
            log_p_mu: -2.3, // median p ≈ 0.1, like Table 1's examples
            log_p_sigma: 1.0,
            noise_rel: 0.15,
            anomaly_fraction: 0.01,
            seed: 0x10FA2,
        }
    }
}

impl LofarConfig {
    /// The paper's full scale: 35,692 sources, 1,452,824 measurements.
    pub fn paper_scale() -> LofarConfig {
        LofarConfig {
            sources: 35_692,
            mean_obs_per_source: 1_452_824.0 / 35_692.0,
            ..LofarConfig::default()
        }
    }

    /// Scale the default configuration to a source count.
    pub fn with_sources(sources: usize) -> LofarConfig {
        LofarConfig { sources, ..LofarConfig::default() }
    }
}

/// A generated data set: the relational table plus ground truth.
#[derive(Debug, Clone)]
pub struct LofarDataset {
    /// The `measurements(source, nu, intensity)` table.
    pub table: Table,
    /// Per-source truth in source order.
    pub truth: Vec<SourceTruth>,
    /// Ids of anomalous sources.
    pub anomalies: HashSet<i64>,
}

impl LofarDataset {
    /// Generate a data set.
    pub fn generate(config: &LofarConfig) -> LofarDataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let nbands = config.frequencies.len().max(1);
        let mut source_col = Vec::new();
        let mut nu_col = Vec::new();
        let mut intensity_col = Vec::new();
        let mut truth = Vec::with_capacity(config.sources);
        let mut anomalies = HashSet::new();

        for s in 0..config.sources as i64 {
            let anomaly = if rng.gen::<f64>() < config.anomaly_fraction {
                Some(if rng.gen::<bool>() {
                    AnomalyKind::FlatNoise
                } else {
                    AnomalyKind::TurnOver
                })
            } else {
                None
            };
            let alpha = rng::normal(&mut rng, config.alpha_mean, config.alpha_sd);
            let p = rng::log_normal(&mut rng, config.log_p_mu, config.log_p_sigma);
            // Observation count: mean ± 25%, at least one per band.
            let spread = config.mean_obs_per_source * 0.25;
            let nobs = (config.mean_obs_per_source + spread * (rng.gen::<f64>() * 2.0 - 1.0))
                .round()
                .max(nbands as f64) as usize;
            let level = p * 0.15_f64.powf(alpha); // typical brightness
            for i in 0..nobs {
                let nu = config.frequencies[i % nbands];
                let clean = match anomaly {
                    None => p * nu.powf(alpha),
                    Some(AnomalyKind::FlatNoise) => {
                        // Level with strong multiplicative scatter,
                        // independent of frequency.
                        level * (1.0 + rng::normal(&mut rng, 0.0, 0.8)).abs()
                    }
                    Some(AnomalyKind::TurnOver) => {
                        // log I = log p + α·log ν − 8·(log ν − log ν₀)²
                        let lognu = nu.ln();
                        let nu0 = 0.15_f64.ln();
                        (p.ln() + alpha * lognu - 8.0 * (lognu - nu0) * (lognu - nu0)).exp()
                    }
                };
                let noisy =
                    clean * (1.0 + rng::normal(&mut rng, 0.0, config.noise_rel));
                source_col.push(s);
                nu_col.push(nu);
                intensity_col.push(noisy.max(0.0));
            }
            truth.push(SourceTruth {
                source: s,
                p: if anomaly == Some(AnomalyKind::FlatNoise) { f64::NAN } else { p },
                alpha: if anomaly == Some(AnomalyKind::FlatNoise) { f64::NAN } else { alpha },
                anomaly,
            });
            if anomaly.is_some() {
                anomalies.insert(s);
            }
        }

        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", source_col);
        b.add_f64("nu", nu_col);
        b.add_f64("intensity", intensity_col);
        let table = b.build().expect("generator produces consistent columns");
        LofarDataset { table, truth, anomalies }
    }

    /// Number of measurements.
    pub fn rows(&self) -> usize {
        self.table.row_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_config() {
        let cfg = LofarConfig { sources: 100, seed: 7, ..LofarConfig::default() };
        let d = LofarDataset::generate(&cfg);
        assert_eq!(d.truth.len(), 100);
        assert_eq!(d.table.schema().names(), vec!["source", "nu", "intensity"]);
        // Mean obs/source ≈ 40.7 ± spread.
        let per = d.rows() as f64 / 100.0;
        assert!((30.0..52.0).contains(&per), "{per}");
        // Frequencies only from the band set.
        for &nu in d.table.column("nu").unwrap().f64_data().unwrap() {
            assert!(PAPER_FREQUENCIES.contains(&nu));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = LofarConfig { sources: 50, ..LofarConfig::default() };
        let a = LofarDataset::generate(&cfg);
        let b = LofarDataset::generate(&cfg);
        assert_eq!(a.table, b.table);
        let c = LofarDataset::generate(&LofarConfig { seed: 1, ..cfg });
        assert_ne!(a.table, c.table);
    }

    #[test]
    fn normal_sources_follow_their_power_law() {
        let cfg = LofarConfig {
            sources: 20,
            noise_rel: 0.0,
            anomaly_fraction: 0.0,
            ..LofarConfig::default()
        };
        let d = LofarDataset::generate(&cfg);
        let src = d.table.column("source").unwrap().i64_data().unwrap();
        let nu = d.table.column("nu").unwrap().f64_data().unwrap();
        let intensity = d.table.column("intensity").unwrap().f64_data().unwrap();
        for row in 0..d.rows() {
            let t = &d.truth[src[row] as usize];
            let expect = t.p * nu[row].powf(t.alpha);
            assert!((intensity[row] - expect).abs() < 1e-9 * expect.max(1.0));
        }
    }

    #[test]
    fn anomaly_fraction_respected() {
        let cfg = LofarConfig {
            sources: 5_000,
            anomaly_fraction: 0.02,
            mean_obs_per_source: 8.0,
            ..LofarConfig::default()
        };
        let d = LofarDataset::generate(&cfg);
        let frac = d.anomalies.len() as f64 / 5000.0;
        assert!((0.01..0.03).contains(&frac), "{frac}");
        // Truth is consistent with the set.
        for t in &d.truth {
            assert_eq!(t.anomaly.is_some(), d.anomalies.contains(&t.source));
        }
    }

    #[test]
    fn paper_scale_config_reproduces_counts() {
        let cfg = LofarConfig::paper_scale();
        assert_eq!(cfg.sources, 35_692);
        // Expected total ≈ 1,452,824; verify on a small proportional run.
        let small = LofarConfig { sources: 1000, ..cfg };
        let d = LofarDataset::generate(&small);
        let projected = d.rows() as f64 * 35.692;
        assert!(
            (1_300_000.0..1_600_000.0).contains(&projected),
            "projected total {projected}"
        );
    }

    #[test]
    fn intensities_are_non_negative() {
        let cfg = LofarConfig { sources: 200, noise_rel: 0.5, ..LofarConfig::default() };
        let d = LofarDataset::generate(&cfg);
        assert!(d
            .table
            .column("intensity")
            .unwrap()
            .f64_data()
            .unwrap()
            .iter()
            .all(|&v| v >= 0.0));
    }
}
