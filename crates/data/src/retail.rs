//! TPC-DS-inspired retail fact table with planted regularity.
//!
//! Section 6 proposes evaluating model capture on "the considerable
//! regularity in the generated datasets for popular database benchmarks
//! such as TPC-DS". This generator plants exactly that regularity in a
//! `store_sales`-like table:
//!
//! * `revenue = units · price`, where units follow a **seasonal +
//!   linear-growth** law per store: `units = base·(1 + growth·day/365)·
//!   (1 + amp·sin(2π·day/365))` plus noise;
//! * `price` is **categorical** (a small set of price points per item
//!   category) — dictionary/enumeration fodder;
//! * `day` is a stepped integer date key.
//!
//! The laws are recorded as ground truth so captured models can be
//! scored, and the table is the workload for the semantic-compression
//! comparison (E4) beyond the astronomy use case.

use crate::rng;
use lawsdb_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Number of stores.
    pub stores: usize,
    /// Days of history.
    pub days: usize,
    /// Sales rows per store-day.
    pub rows_per_store_day: usize,
    /// Relative noise on unit counts.
    pub noise_rel: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RetailConfig {
    fn default() -> Self {
        RetailConfig {
            stores: 20,
            days: 365,
            rows_per_store_day: 2,
            noise_rel: 0.05,
            seed: 0x8E7A11,
        }
    }
}

/// Ground truth for one store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreTruth {
    /// Store id.
    pub store: i64,
    /// Base daily units.
    pub base: f64,
    /// Annual growth rate.
    pub growth: f64,
    /// Seasonal amplitude.
    pub amplitude: f64,
}

/// A generated retail data set.
#[derive(Debug, Clone)]
pub struct RetailDataset {
    /// `store_sales(store, day, price, units, revenue)`.
    pub table: Table,
    /// Per-store truth.
    pub truth: Vec<StoreTruth>,
    /// The categorical price points used.
    pub price_points: Vec<f64>,
}

impl RetailDataset {
    /// Generate a data set.
    pub fn generate(config: &RetailConfig) -> RetailDataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let price_points = vec![0.99, 1.99, 4.99, 9.99, 19.99, 49.99, 99.99];
        let n = config.stores * config.days * config.rows_per_store_day;
        let mut store_col = Vec::with_capacity(n);
        let mut day_col = Vec::with_capacity(n);
        let mut price_col = Vec::with_capacity(n);
        let mut units_col = Vec::with_capacity(n);
        let mut revenue_col = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(config.stores);
        for s in 0..config.stores as i64 {
            let base = 50.0 + rng.gen::<f64>() * 200.0;
            let growth = 0.05 + rng.gen::<f64>() * 0.25;
            let amplitude = 0.1 + rng.gen::<f64>() * 0.3;
            truth.push(StoreTruth { store: s, base, growth, amplitude });
            for day in 0..config.days as i64 {
                let season = 1.0
                    + amplitude
                        * (2.0 * std::f64::consts::PI * day as f64 / 365.0).sin();
                let trend = 1.0 + growth * day as f64 / 365.0;
                for _ in 0..config.rows_per_store_day {
                    let price = price_points[rng.gen_range(0..price_points.len())];
                    let clean_units = base * season * trend;
                    let units = (clean_units
                        * (1.0 + rng::normal(&mut rng, 0.0, config.noise_rel)))
                    .max(0.0)
                    .round();
                    store_col.push(s);
                    day_col.push(day);
                    price_col.push(price);
                    units_col.push(units);
                    revenue_col.push(units * price);
                }
            }
        }
        let mut b = TableBuilder::new("store_sales");
        b.add_i64("store", store_col);
        b.add_i64("day", day_col);
        b.add_f64("price", price_col);
        b.add_f64("units", units_col);
        b.add_f64("revenue", revenue_col);
        RetailDataset { table: b.build().expect("consistent columns"), truth, price_points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::stats::{ColumnStats, Enumerability};

    #[test]
    fn shape_and_determinism() {
        let cfg = RetailConfig { stores: 3, days: 10, rows_per_store_day: 2, ..Default::default() };
        let a = RetailDataset::generate(&cfg);
        assert_eq!(a.table.row_count(), 60);
        assert_eq!(
            a.table.schema().names(),
            vec!["store", "day", "price", "units", "revenue"]
        );
        let b = RetailDataset::generate(&cfg);
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn price_is_categorical_day_is_stepped() {
        let d = RetailDataset::generate(&RetailConfig::default());
        let price_stats = ColumnStats::analyze(d.table.column("price").unwrap(), 64);
        match price_stats.enumerability {
            Enumerability::Categorical { values } => {
                assert!(values.len() <= d.price_points.len())
            }
            other => panic!("price should be categorical, got {other:?}"),
        }
        let day_stats = ColumnStats::analyze(d.table.column("day").unwrap(), 1024);
        assert_eq!(
            day_stats.enumerability,
            Enumerability::SteppedRange { lo: 0, hi: 364, step: 1 }
        );
    }

    #[test]
    fn revenue_is_exactly_units_times_price() {
        let d = RetailDataset::generate(&RetailConfig::default());
        let price = d.table.column("price").unwrap().f64_data().unwrap();
        let units = d.table.column("units").unwrap().f64_data().unwrap();
        let revenue = d.table.column("revenue").unwrap().f64_data().unwrap();
        for i in 0..d.table.row_count() {
            assert_eq!(revenue[i], units[i] * price[i]);
        }
    }

    #[test]
    fn seasonality_is_present() {
        // Summer (day ~91, sin peak) units should exceed winter
        // (day ~274, sin trough) per store, noise notwithstanding.
        let cfg = RetailConfig { noise_rel: 0.0, ..Default::default() };
        let d = RetailDataset::generate(&cfg);
        let store = d.table.column("store").unwrap().i64_data().unwrap();
        let day = d.table.column("day").unwrap().i64_data().unwrap();
        let units = d.table.column("units").unwrap().f64_data().unwrap();
        let mut peak = 0.0;
        let mut trough = 0.0;
        for i in 0..d.table.row_count() {
            if store[i] == 0 && day[i] == 91 {
                peak = units[i];
            }
            if store[i] == 0 && day[i] == 274 {
                trough = units[i];
            }
        }
        assert!(peak > trough, "peak {peak} vs trough {trough}");
    }
}
