//! Sensor time-series workload with enumerable integer timestamps.
//!
//! Section 4.2 names "continuous integer timestamps, as they appear for
//! example in tables containing time series" as the canonical enumerable
//! column. Each sensor follows a linear law `value = base + drift·t`
//! (plus noise), so this workload exercises:
//!
//! * the analytic-aggregate path (E7) — per-sensor linear models over a
//!   stepped timestamp domain;
//! * the MauveDB grid-view baseline (E11) — a 1-D grid over time.

use crate::rng;
use lawsdb_storage::{Table, TableBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TimeSeriesConfig {
    /// Number of sensors.
    pub sensors: usize,
    /// Ticks per sensor.
    pub ticks: usize,
    /// Timestamp step (the stepped-range detector must recover this).
    pub step: i64,
    /// Base-level spread across sensors.
    pub base_sd: f64,
    /// Drift spread across sensors.
    pub drift_sd: f64,
    /// Additive noise SD.
    pub noise_sd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            sensors: 50,
            ticks: 500,
            step: 10,
            base_sd: 5.0,
            drift_sd: 0.02,
            noise_sd: 0.1,
            seed: 0x7135,
        }
    }
}

/// Ground truth for one sensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorTruth {
    /// Sensor id.
    pub sensor: i64,
    /// True intercept.
    pub base: f64,
    /// True drift per tick unit.
    pub drift: f64,
}

/// A generated time-series data set.
#[derive(Debug, Clone)]
pub struct TimeSeriesDataset {
    /// The `readings(sensor, ts, value)` table.
    pub table: Table,
    /// Per-sensor truth.
    pub truth: Vec<SensorTruth>,
}

impl TimeSeriesDataset {
    /// Generate a data set.
    pub fn generate(config: &TimeSeriesConfig) -> TimeSeriesDataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sensor_col = Vec::with_capacity(config.sensors * config.ticks);
        let mut ts_col = Vec::with_capacity(config.sensors * config.ticks);
        let mut value_col = Vec::with_capacity(config.sensors * config.ticks);
        let mut truth = Vec::with_capacity(config.sensors);
        for s in 0..config.sensors as i64 {
            let base = 20.0 + rng::normal(&mut rng, 0.0, config.base_sd);
            let drift = rng::normal(&mut rng, 0.01, config.drift_sd);
            truth.push(SensorTruth { sensor: s, base, drift });
            for t in 0..config.ticks as i64 {
                let ts = t * config.step;
                sensor_col.push(s);
                ts_col.push(ts);
                value_col.push(
                    base + drift * ts as f64 + rng::normal(&mut rng, 0.0, config.noise_sd),
                );
            }
        }
        let mut b = TableBuilder::new("readings");
        b.add_i64("sensor", sensor_col);
        b.add_i64("ts", ts_col);
        b.add_f64("value", value_col);
        TimeSeriesDataset { table: b.build().expect("consistent columns"), truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lawsdb_storage::stats::{ColumnStats, Enumerability};

    #[test]
    fn timestamps_form_a_stepped_range() {
        let d = TimeSeriesDataset::generate(&TimeSeriesConfig::default());
        let stats = ColumnStats::analyze(d.table.column("ts").unwrap(), 1024);
        assert_eq!(
            stats.enumerability,
            Enumerability::SteppedRange { lo: 0, hi: 4990, step: 10 }
        );
    }

    #[test]
    fn values_follow_linear_law_without_noise() {
        let cfg = TimeSeriesConfig { noise_sd: 0.0, sensors: 5, ticks: 20, ..Default::default() };
        let d = TimeSeriesDataset::generate(&cfg);
        let sensors = d.table.column("sensor").unwrap().i64_data().unwrap();
        let ts = d.table.column("ts").unwrap().i64_data().unwrap();
        let values = d.table.column("value").unwrap().f64_data().unwrap();
        for row in 0..d.table.row_count() {
            let t = &d.truth[sensors[row] as usize];
            let expect = t.base + t.drift * ts[row] as f64;
            assert!((values[row] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn row_count_and_determinism() {
        let cfg = TimeSeriesConfig { sensors: 3, ticks: 7, ..Default::default() };
        let a = TimeSeriesDataset::generate(&cfg);
        assert_eq!(a.table.row_count(), 21);
        let b = TimeSeriesDataset::generate(&cfg);
        assert_eq!(a.table, b.table);
    }
}
