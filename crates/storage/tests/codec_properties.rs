//! Property tests over every integer/float/byte codec: round-trips for
//! arbitrary inputs, including adversarial edge values, truncation
//! rejection, and compressed-domain kernel equivalence.

use lawsdb_storage::bitmap::Bitmap;
use lawsdb_storage::compress::{bitpack, delta, dict, float, for_, huffman, lzss, rle, varint};
use lawsdb_storage::zonemap::PredOp;
use proptest::prelude::*;

const OPS: [PredOp; 6] =
    [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::get_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::put_i64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::get_i64(&buf, &mut pos).unwrap(), v);
    }

    #[test]
    fn delta_roundtrip(values in prop::collection::vec(any::<i64>(), 0..500)) {
        prop_assert_eq!(delta::decode(&delta::encode(&values)).unwrap(), values);
    }

    #[test]
    fn rle_roundtrip(values in prop::collection::vec(-50i64..50, 0..500)) {
        prop_assert_eq!(rle::decode(&rle::encode(&values)).unwrap(), values);
    }

    #[test]
    fn bitpack_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300)) {
        prop_assert_eq!(bitpack::decode(&bitpack::encode(&values)).unwrap(), values);
    }

    #[test]
    fn for_roundtrip(values in prop::collection::vec(any::<i64>(), 0..3000)) {
        prop_assert_eq!(for_::decode(&for_::encode(&values)).unwrap(), values);
    }

    #[test]
    fn float_xor_roundtrip(values in prop::collection::vec(any::<f64>(), 0..300)) {
        let back = float::decode(&float::encode(&values)).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dict_roundtrip(values in prop::collection::vec("[a-z]{0,8}", 0..200)) {
        let owned: Vec<String> = values;
        prop_assert_eq!(dict::decode(&dict::encode(&owned)).unwrap(), owned);
    }

    #[test]
    fn huffman_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        prop_assert_eq!(huffman::decode(&huffman::encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        prop_assert_eq!(lzss::decompress(&lzss::compress(&data)).unwrap(), data);
    }

    /// Every strict prefix of a valid encoding must decode to an error,
    /// never a panic and never a silently-shorter result: each format
    /// declares its length up front, so truncation is always detectable.
    #[test]
    fn rle_truncation_is_error(
        values in prop::collection::vec(-50i64..50, 1..200),
        frac in 0.0f64..1.0,
    ) {
        let enc = rle::encode(&values);
        let keep = (enc.len() as f64 * frac) as usize; // < enc.len()
        prop_assert!(rle::decode(&enc[..keep]).is_err());
        prop_assert!(rle::eval_cmp(&enc[..keep], PredOp::Eq, 0).is_err());
    }

    #[test]
    fn dict_truncation_is_error(
        values in prop::collection::vec("[a-c]{0,4}", 1..100),
        frac in 0.0f64..1.0,
    ) {
        let enc = dict::encode(&values);
        let keep = (enc.len() as f64 * frac) as usize;
        prop_assert!(dict::decode(&enc[..keep]).is_err());
        prop_assert!(dict::eval_cmp(&enc[..keep], PredOp::Eq, "a").is_err());
    }

    #[test]
    fn for_truncation_is_error(
        values in prop::collection::vec(any::<i64>(), 1..200),
        frac in 0.0f64..1.0,
    ) {
        let enc = for_::encode(&values);
        let keep = (enc.len() as f64 * frac) as usize;
        prop_assert!(for_::decode(&enc[..keep]).is_err());
        prop_assert!(for_::eval_cmp(&enc[..keep], PredOp::Eq, 0).is_err());
    }

    #[test]
    fn bitpack_truncation_is_error(
        values in prop::collection::vec(any::<u64>(), 1..200),
        frac in 0.0f64..1.0,
    ) {
        let enc = bitpack::encode(&values);
        let keep = (enc.len() as f64 * frac) as usize;
        prop_assert!(bitpack::decode(&enc[..keep]).is_err());
        prop_assert!(bitpack::eval_cmp(&enc[..keep], PredOp::Eq, 0).is_err());
    }

    /// Compressed-domain kernels must agree bit-for-bit with
    /// decode-then-compare for arbitrary inputs, operators, and
    /// thresholds — including thresholds outside the packed domain.
    #[test]
    fn rle_kernel_matches_decode_then_compare(
        values in prop::collection::vec(-20i64..20, 0..300),
        op_idx in 0usize..6,
        rhs in -25i64..25,
    ) {
        let op = OPS[op_idx];
        let fast = rle::eval_cmp(&rle::encode(&values), op, rhs).unwrap();
        let slow = Bitmap::from_fn(values.len(), |i| op.eval_i64(values[i], rhs));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn for_kernel_matches_decode_then_compare(
        values in prop::collection::vec(any::<i64>(), 0..300),
        op_idx in 0usize..6,
        rhs in any::<i64>(),
    ) {
        let op = OPS[op_idx];
        let fast = for_::eval_cmp(&for_::encode(&values), op, rhs).unwrap();
        let slow = Bitmap::from_fn(values.len(), |i| op.eval_i64(values[i], rhs));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn bitpack_kernel_matches_decode_then_compare(
        values in prop::collection::vec(any::<u64>(), 0..300),
        op_idx in 0usize..6,
        rhs in any::<u64>(),
    ) {
        let op = OPS[op_idx];
        let fast = bitpack::eval_cmp(&bitpack::encode(&values), op, rhs).unwrap();
        let slow = Bitmap::from_fn(values.len(), |i| op.eval_u64(values[i], rhs));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn dict_kernel_matches_decode_then_compare(
        values in prop::collection::vec("[a-c]{0,3}", 0..200),
        op_idx in 0usize..6,
        rhs in "[a-c]{0,3}",
    ) {
        let op = OPS[op_idx];
        let owned: Vec<String> = values;
        let fast = dict::eval_cmp(&dict::encode(&owned), op, &rhs).unwrap();
        let slow = Bitmap::from_fn(owned.len(), |i| op.eval_ord(owned[i].as_str().cmp(&rhs)));
        prop_assert_eq!(fast, slow);
    }

    /// Decoders must never panic on arbitrary garbage — errors only.
    #[test]
    fn decoders_survive_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = varint::get_u64(&data, &mut 0);
        let _ = delta::decode(&data);
        let _ = rle::decode(&data);
        let _ = bitpack::decode(&data);
        let _ = for_::decode(&data);
        let _ = float::decode(&data);
        let _ = dict::decode(&data);
        let _ = huffman::decode(&data);
        let _ = lzss::decompress(&data);
    }
}
