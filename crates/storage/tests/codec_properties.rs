//! Property tests over every integer/float/byte codec: round-trips for
//! arbitrary inputs, including adversarial edge values.

use lawsdb_storage::compress::{bitpack, delta, dict, float, for_, huffman, lzss, rle, varint};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn varint_u64_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::get_u64(&buf, &mut pos).unwrap(), v);
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_i64_roundtrip(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::put_i64(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(varint::get_i64(&buf, &mut pos).unwrap(), v);
    }

    #[test]
    fn delta_roundtrip(values in prop::collection::vec(any::<i64>(), 0..500)) {
        prop_assert_eq!(delta::decode(&delta::encode(&values)).unwrap(), values);
    }

    #[test]
    fn rle_roundtrip(values in prop::collection::vec(-50i64..50, 0..500)) {
        prop_assert_eq!(rle::decode(&rle::encode(&values)).unwrap(), values);
    }

    #[test]
    fn bitpack_roundtrip(values in prop::collection::vec(any::<u64>(), 0..300)) {
        prop_assert_eq!(bitpack::decode(&bitpack::encode(&values)).unwrap(), values);
    }

    #[test]
    fn for_roundtrip(values in prop::collection::vec(any::<i64>(), 0..3000)) {
        prop_assert_eq!(for_::decode(&for_::encode(&values)).unwrap(), values);
    }

    #[test]
    fn float_xor_roundtrip(values in prop::collection::vec(any::<f64>(), 0..300)) {
        let back = float::decode(&float::encode(&values)).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dict_roundtrip(values in prop::collection::vec("[a-z]{0,8}", 0..200)) {
        let owned: Vec<String> = values;
        prop_assert_eq!(dict::decode(&dict::encode(&owned)).unwrap(), owned);
    }

    #[test]
    fn huffman_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        prop_assert_eq!(huffman::decode(&huffman::encode(&data)).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrip(data in prop::collection::vec(any::<u8>(), 0..3000)) {
        prop_assert_eq!(lzss::decompress(&lzss::compress(&data)).unwrap(), data);
    }

    /// Decoders must never panic on arbitrary garbage — errors only.
    #[test]
    fn decoders_survive_garbage(data in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = varint::get_u64(&data, &mut 0);
        let _ = delta::decode(&data);
        let _ = rle::decode(&data);
        let _ = bitpack::decode(&data);
        let _ = for_::decode(&data);
        let _ = float::decode(&data);
        let _ = dict::decode(&data);
        let _ = huffman::decode(&data);
        let _ = lzss::decompress(&data);
    }
}
