//! The crash matrix: every device operation of a durable workload is a
//! crash point, and recovery from each one must land on exactly the
//! pre- or post-commit state — never a hybrid, never a panic.
//!
//! The harness runs the workload once fault-free to count device
//! operations (the *golden run*), then re-runs it once per operation
//! index with a fault injected there, cycling through all
//! [`FaultMode`]s. After each crash the surviving disk image is
//! re-opened with a clean device and the recovered state is compared
//! against the in-memory expectation for its commit sequence.
//!
//! The base seed is fixed for reproducibility; set `LAWSDB_FAULT_SEED`
//! to explore a different deterministic schedule (CI runs one random
//! seed per build and logs it).

use lawsdb_storage::fault::{FaultMode, FaultSchedule, FaultyDevice};
use lawsdb_storage::io::SimulatedDevice;
use lawsdb_storage::wal::DurableStore;
use lawsdb_storage::{Table, TableBuilder};

const PAGE_SIZE: usize = 256;
const WAL_PAGES: usize = 8;

type Step = Box<dyn Fn(&mut DurableStore<FaultyDevice>) -> lawsdb_storage::Result<()>>;
const DEFAULT_SEED: u64 = 0xC1D2_2015;

fn base_seed() -> u64 {
    match std::env::var("LAWSDB_FAULT_SEED") {
        Ok(s) => s.trim().parse().expect("LAWSDB_FAULT_SEED must be a u64"),
        Err(_) => DEFAULT_SEED,
    }
}

fn law_table(version: u32) -> Table {
    // A LOFAR-ish measurement table; `version` changes both shape and
    // content so pre/post states are unmistakable.
    let rows = 30 + version as usize * 10;
    let mut b = TableBuilder::new("measurements");
    b.add_i64("source", (0..rows as i64).map(|i| i / 3).collect());
    b.add_f64("intensity", (0..rows).map(|i| (i as f64 + version as f64).ln_1p()).collect());
    b.build().unwrap()
}

fn aux_table() -> Table {
    let mut b = TableBuilder::new("aux");
    b.add_str("name", vec!["cygnus".into(), "cassiopeia".into()]);
    b.add_f64_opt("flux", vec![Some(8.1), None]);
    b.build().unwrap()
}

fn catalog_image(version: u32) -> Vec<u8> {
    (0..120u32).map(|i| (i.wrapping_mul(7) ^ version) as u8).collect()
}

/// One workload step = one atomic commit attempt.
fn steps() -> Vec<Step> {
    vec![
        Box::new(|s| s.store_table(&law_table(1))),
        Box::new(|s| s.put_catalog(&catalog_image(1))),
        Box::new(|s| s.replace_table(&law_table(2))),
        Box::new(|s| s.store_table(&aux_table())),
        Box::new(|s| s.drop_table("aux")),
    ]
}

/// The exact state the store must hold at commit sequence `seq`.
fn expected_state(seq: u64) -> (Vec<Table>, Option<Vec<u8>>) {
    match seq {
        0 => (vec![], None),
        1 => (vec![law_table(1)], None),
        2 => (vec![law_table(1)], Some(catalog_image(1))),
        3 => (vec![law_table(2)], Some(catalog_image(1))),
        4 => (vec![aux_table(), law_table(2)], Some(catalog_image(1))),
        5 => (vec![law_table(2)], Some(catalog_image(1))),
        other => panic!("workload never reaches seq {other}"),
    }
}

/// Run the workload under `schedule`; returns (commits that completed,
/// surviving disk image).
fn run_workload(schedule: FaultSchedule) -> (u64, SimulatedDevice, u64) {
    let device = FaultyDevice::new(SimulatedDevice::new(PAGE_SIZE), schedule);
    let mut store = DurableStore::new(device, WAL_PAGES);
    let mut commits_ok = 0u64;
    if store.recover().is_ok() {
        for step in steps() {
            match step(&mut store) {
                Ok(()) => commits_ok += 1,
                Err(_) => break, // crashed: every later op fails too
            }
        }
    }
    let faulty = store.into_device();
    let ops = faulty.op_count();
    (commits_ok, faulty.into_inner(), ops)
}

/// Re-open a surviving image on a clean device and check it against the
/// in-memory expectation for whatever sequence it recovered to.
fn assert_recovers_cleanly(image: SimulatedDevice, commits_ok: u64, context: &str) {
    let mut store = DurableStore::new(image, WAL_PAGES);
    let report = store
        .recover()
        .unwrap_or_else(|e| panic!("{context}: recovery failed on a clean device: {e}"));
    let seq = report.seq;
    // The crashed step either never reached its commit point (state =
    // all completed commits) or crashed after it (state includes the
    // in-flight commit). Nothing else is acceptable.
    assert!(
        seq == commits_ok || seq == commits_ok + 1,
        "{context}: recovered to seq {seq}, but {commits_ok} commits completed"
    );
    let (tables, catalog) = expected_state(seq);
    let names: Vec<String> = tables.iter().map(|t| t.name().to_string()).collect();
    assert_eq!(store.table_names(), names, "{context}: table set at seq {seq}");
    for want in &tables {
        let got = store
            .read_table(want.name())
            .unwrap_or_else(|e| panic!("{context}: reading {:?}: {e}", want.name()));
        assert_eq!(&got, want, "{context}: content of {:?} at seq {seq}", want.name());
    }
    let got_catalog = store.catalog().unwrap_or_else(|e| panic!("{context}: catalog: {e}"));
    assert_eq!(got_catalog, catalog, "{context}: catalog image at seq {seq}");
}

#[test]
fn golden_run_commits_everything() {
    let (commits_ok, image, ops) = run_workload(FaultSchedule::none());
    assert_eq!(commits_ok, 5, "fault-free run completes all steps");
    assert!(ops > 20, "workload is non-trivial ({ops} ops)");
    assert_recovers_cleanly(image, commits_ok, "golden");
}

#[test]
fn every_crash_point_recovers_to_pre_or_post_state() {
    let seed = base_seed();
    let (_, _, total_ops) = run_workload(FaultSchedule::none());
    println!("crash matrix: {total_ops} crash points, seed {seed:#x}");
    for crash_op in 0..total_ops {
        let mode = FaultMode::ALL[crash_op as usize % FaultMode::ALL.len()];
        let schedule = FaultSchedule::crash_at(crash_op, mode, seed);
        let (commits_ok, image, _) = run_workload(schedule);
        assert!(commits_ok < 5, "crash at {crash_op} must bite before the workload finishes");
        let context = format!("crash at op {crash_op} ({mode:?}, seed {seed:#x})");
        assert_recovers_cleanly(image, commits_ok, &context);
    }
}

#[test]
fn every_fault_mode_covers_every_crash_point() {
    // The cycling test above gives each op one mode; this denser pass
    // gives every op *every* mode, on a shorter stride to stay fast.
    let seed = base_seed() ^ 0x5EED;
    let (_, _, total_ops) = run_workload(FaultSchedule::none());
    for crash_op in (0..total_ops).step_by(3) {
        for mode in FaultMode::ALL {
            let schedule = FaultSchedule::crash_at(crash_op, mode, seed);
            let (commits_ok, image, _) = run_workload(schedule);
            let context = format!("dense crash at op {crash_op} ({mode:?})");
            assert_recovers_cleanly(image, commits_ok, &context);
        }
    }
}

#[test]
fn double_crash_still_recovers() {
    // Crash once, recover, then crash again at every op of the *next*
    // transaction: recovery must also be crash-safe against a second
    // failure on the already-recovered image.
    let seed = base_seed().rotate_left(17);
    let (_, _, total_ops) = run_workload(FaultSchedule::none());
    let first_crash = total_ops / 2;
    for second_crash in 0..40 {
        let mode = FaultMode::ALL[second_crash as usize % FaultMode::ALL.len()];
        // First crash mid-workload.
        let (_, image, _) =
            run_workload(FaultSchedule::crash_at(first_crash, FaultMode::TornPage, seed));
        // Settle the image once (fault-free) to fix the baseline seq.
        let mut settle = DurableStore::new(image, WAL_PAGES);
        let baseline = settle.recover().expect("first recovery is fault-free").seq;
        // Now run one more commit with a second fault schedule active.
        let device =
            FaultyDevice::new(settle.into_device(), FaultSchedule::crash_at(second_crash, mode, seed));
        let mut store = DurableStore::new(device, WAL_PAGES);
        let mut commits_ok = baseline;
        if store.recover().is_ok() && store.put_catalog(&catalog_image(9)).is_ok() {
            commits_ok += 1;
        }
        let image = store.into_device().into_inner();
        // After the dust settles the image must open cleanly to exactly
        // the pre- or post-commit sequence with intact contents.
        let mut clean = DurableStore::new(image, WAL_PAGES);
        let report = clean
            .recover()
            .unwrap_or_else(|e| panic!("double crash at {second_crash}: {e}"));
        for name in clean.table_names() {
            clean
                .read_table(&name)
                .unwrap_or_else(|e| panic!("double crash at {second_crash}: {name}: {e}"));
        }
        clean.catalog().unwrap_or_else(|e| panic!("double crash at {second_crash}: {e}"));
        assert!(
            report.seq == commits_ok || report.seq == commits_ok + 1,
            "double crash at {second_crash}: seq {} vs {commits_ok} commits",
            report.seq
        );
    }
}
