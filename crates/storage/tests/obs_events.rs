//! Satellite (b): `storage::fault` and `storage::retry` emit structured
//! events, so resilience tests can assert on the event stream instead
//! of side-channel counters. This file owns its process, so installing
//! the global tracer races with nothing; the tests still serialize on a
//! mutex because `cargo test` runs them on threads.

use lawsdb_obs::trace::{tracer, FieldValue};
use lawsdb_obs::MockClock;
use lawsdb_storage::fault::{FaultMode, FaultSchedule, FaultyDevice};
use lawsdb_storage::io::{BlockDevice, SimulatedDevice};
use lawsdb_storage::retry::{RetryPolicy, RetryingDevice};
use std::sync::{Arc, Mutex, PoisonError};

static LOCK: Mutex<()> = Mutex::new(());

fn faulty(schedule: FaultSchedule) -> FaultyDevice {
    let mut inner = SimulatedDevice::new(128);
    let p = inner.allocate();
    inner.write_page(p, b"payload").unwrap();
    FaultyDevice::new(inner, schedule)
}

#[test]
fn fault_lifecycle_is_on_the_event_stream() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = lawsdb_obs::RingBufferSink::new(64);
    tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));

    let d = faulty(FaultSchedule::crash_at(0, FaultMode::IoError, 99));
    assert!(d.read_page_owned(0).is_err());
    tracer().uninstall();

    let events = sink.drain();
    let armed: Vec<_> =
        events.iter().filter(|e| e.name == "storage.fault.armed").collect();
    assert_eq!(armed.len(), 1);
    assert_eq!(armed[0].field("op").and_then(FieldValue::as_u64), Some(0));
    assert_eq!(armed[0].field("mode").and_then(FieldValue::as_str), Some("io_error"));
    assert_eq!(armed[0].field("seed").and_then(FieldValue::as_u64), Some(99));

    let fired: Vec<_> =
        events.iter().filter(|e| e.name == "storage.fault.fired").collect();
    assert_eq!(fired.len(), 1);
    assert_eq!(fired[0].field("mode").and_then(FieldValue::as_str), Some("io_error"));
    assert_eq!(fired[0].field("crashes"), Some(&FieldValue::Bool(true)));
    // Armed strictly precedes fired.
    assert!(armed[0].seq < fired[0].seq);
}

#[test]
fn retry_recovery_emits_attempt_then_recovered() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = lawsdb_obs::RingBufferSink::new(64);
    tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));

    let d = RetryingDevice::new(
        faulty(FaultSchedule::crash_at(0, FaultMode::Transient, 1234)),
        RetryPolicy::default_reads(),
    );
    d.read_page_owned(0).expect("transient run is within the retry budget");
    tracer().uninstall();

    let events = sink.drain();
    let attempts: Vec<_> =
        events.iter().filter(|e| e.name == "storage.retry.attempt").collect();
    assert!(!attempts.is_empty(), "at least one backoff was scheduled");
    // Backoff doubles from the policy base and is attached per attempt.
    assert_eq!(
        attempts[0].field("backoff_us").and_then(FieldValue::as_u64),
        Some(RetryPolicy::default_reads().base_delay_us)
    );
    let recovered: Vec<_> =
        events.iter().filter(|e| e.name == "storage.retry.recovered").collect();
    assert_eq!(recovered.len(), 1);
    let total_attempts =
        recovered[0].field("attempts").and_then(FieldValue::as_u64).unwrap();
    assert_eq!(total_attempts, attempts.len() as u64 + 1);
    // The fault fired exactly once, before any retry succeeded.
    let fired_seq = events
        .iter()
        .find(|e| e.name == "storage.fault.fired")
        .map(|e| e.seq)
        .unwrap();
    assert!(fired_seq < recovered[0].seq);
}

#[test]
fn retry_exhaustion_is_a_terminal_event() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let sink = lawsdb_obs::RingBufferSink::new(64);
    tracer().install(Arc::clone(&sink), Arc::new(MockClock::new(1)));

    let d = RetryingDevice::new(
        faulty(FaultSchedule::crash_at(0, FaultMode::IoError, 7)),
        RetryPolicy::default_reads(),
    );
    assert!(d.read_page_owned(0).is_err());
    tracer().uninstall();

    let events = sink.drain();
    let attempts =
        events.iter().filter(|e| e.name == "storage.retry.attempt").count();
    assert_eq!(attempts as u32, RetryPolicy::default_reads().max_attempts - 1);
    let exhausted: Vec<_> =
        events.iter().filter(|e| e.name == "storage.retry.exhausted").collect();
    assert_eq!(exhausted.len(), 1);
    assert_eq!(
        exhausted[0].field("attempts").and_then(FieldValue::as_u64),
        Some(u64::from(RetryPolicy::default_reads().max_attempts))
    );
    assert!(events.iter().all(|e| e.name != "storage.retry.recovered"));
}

#[test]
fn no_subscriber_means_no_events_but_counters_still_count() {
    let _g = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    assert!(!tracer().is_enabled());
    let before = lawsdb_obs::global_metrics()
        .snapshot()
        .counter("lawsdb_storage_retry_recovered");
    let d = RetryingDevice::new(
        faulty(FaultSchedule::crash_at(0, FaultMode::Transient, 1234)),
        RetryPolicy::default_reads(),
    );
    d.read_page_owned(0).expect("recovers");
    let after = lawsdb_obs::global_metrics()
        .snapshot()
        .counter("lawsdb_storage_retry_recovered");
    assert_eq!(after - before, 1, "registry counters are always on");
}
