//! Typed column buffers with validity bitmaps.

use crate::bitmap::Bitmap;
use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// A typed column of values plus a validity bitmap.
///
/// Data lives in a dense typed buffer (`Vec<i64>`, `Vec<f64>`, …);
/// validity is tracked separately so numeric kernels can run over the
/// raw buffer and consult the bitmap only when nulls are present.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Dense values (entries at invalid positions are unspecified).
        data: Vec<i64>,
        /// Validity bitmap, one bit per row.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float64 {
        /// Dense values.
        data: Vec<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 strings.
    Str {
        /// Dense values.
        data: Vec<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Booleans (stored as a bitmap themselves).
    Bool {
        /// Truth bitmap.
        data: Bitmap,
        /// Validity bitmap.
        validity: Bitmap,
    },
}

impl Column {
    /// All-valid integer column.
    pub fn from_i64(data: Vec<i64>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Int64 { data, validity }
    }

    /// All-valid float column.
    pub fn from_f64(data: Vec<f64>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Float64 { data, validity }
    }

    /// All-valid string column.
    pub fn from_str(data: Vec<String>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Str { data, validity }
    }

    /// All-valid boolean column.
    pub fn from_bool(values: &[bool]) -> Column {
        let mut data = Bitmap::new();
        for &v in values {
            data.push(v);
        }
        let validity = Bitmap::filled(values.len(), true);
        Column::Bool { data, validity }
    }

    /// Column from optional floats; `None` becomes NULL.
    pub fn from_f64_opt(values: Vec<Option<f64>>) -> Column {
        let mut data = Vec::with_capacity(values.len());
        let mut validity = Bitmap::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    validity.push(true);
                }
                None => {
                    data.push(0.0);
                    validity.push(false);
                }
            }
        }
        Column::Float64 { data, validity }
    }

    /// Column from optional ints; `None` becomes NULL.
    pub fn from_i64_opt(values: Vec<Option<i64>>) -> Column {
        let mut data = Vec::with_capacity(values.len());
        let mut validity = Bitmap::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    validity.push(true);
                }
                None => {
                    data.push(0);
                    validity.push(false);
                }
            }
        }
        Column::Int64 { data, validity }
    }

    /// Data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Str { .. } => DataType::Str,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity,
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.len() - self.validity().count_set()
    }

    /// Read one row as a dynamic [`Value`].
    pub fn value(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(StorageError::RowOutOfRange { row, len: self.len() });
        }
        if !self.validity().get(row) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Int64 { data, .. } => Value::Int(data[row]),
            Column::Float64 { data, .. } => Value::Float(data[row]),
            Column::Str { data, .. } => Value::Str(data[row].clone()),
            Column::Bool { data, .. } => Value::Bool(data.get(row)),
        })
    }

    /// Borrow the raw f64 buffer (floats only).
    pub fn f64_data(&self) -> Result<&[f64]> {
        match self {
            Column::Float64 { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "f64_data",
                expected: "Float64",
                got: other.data_type().name(),
            }),
        }
    }

    /// Borrow the raw i64 buffer (ints only).
    pub fn i64_data(&self) -> Result<&[i64]> {
        match self {
            Column::Int64 { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "i64_data",
                expected: "Int64",
                got: other.data_type().name(),
            }),
        }
    }

    /// Borrow the raw string buffer (strings only).
    pub fn str_data(&self) -> Result<&[String]> {
        match self {
            Column::Str { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "str_data",
                expected: "Str",
                got: other.data_type().name(),
            }),
        }
    }

    /// Numeric view of the column as f64s: ints widen, valid floats pass
    /// through, NULLs become NaN. Used by the fitting layer, which treats
    /// NaN rows as missing observations.
    ///
    /// Errors for non-numeric columns.
    pub fn to_f64_lossy(&self) -> Result<Vec<f64>> {
        match self {
            Column::Float64 { data, validity } => {
                if validity.all_set() {
                    Ok(data.clone())
                } else {
                    Ok(data
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| if validity.get(i) { v } else { f64::NAN })
                        .collect())
                }
            }
            Column::Int64 { data, validity } => Ok(data
                .iter()
                .enumerate()
                .map(|(i, &v)| if validity.get(i) { v as f64 } else { f64::NAN })
                .collect()),
            other => Err(StorageError::TypeMismatch {
                op: "to_f64_lossy",
                expected: "numeric",
                got: other.data_type().name(),
            }),
        }
    }

    /// Gather the rows at `indices` into a new column (selection vector
    /// materialization — the executor's filter output path).
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        for &i in indices {
            if i >= self.len() {
                return Err(StorageError::RowOutOfRange { row: i, len: self.len() });
            }
        }
        Ok(match self {
            Column::Int64 { data, validity } => {
                let new_data: Vec<i64> = indices.iter().map(|&i| data[i]).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Int64 { data: new_data, validity: v }
            }
            Column::Float64 { data, validity } => {
                let new_data: Vec<f64> = indices.iter().map(|&i| data[i]).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Float64 { data: new_data, validity: v }
            }
            Column::Str { data, validity } => {
                let new_data: Vec<String> = indices.iter().map(|&i| data[i].clone()).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Str { data: new_data, validity: v }
            }
            Column::Bool { data, validity } => {
                let mut new_data = Bitmap::new();
                let mut v = Bitmap::new();
                for &i in indices {
                    new_data.push(data.get(i));
                    v.push(validity.get(i));
                }
                Column::Bool { data: new_data, validity: v }
            }
        })
    }

    /// Contiguous slice `rows[offset..offset+len]` as a new column.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        let end = offset.checked_add(len).filter(|&e| e <= self.len()).ok_or(
            StorageError::RowOutOfRange { row: offset + len, len: self.len() },
        )?;
        let indices: Vec<usize> = (offset..end).collect();
        self.take(&indices)
    }

    /// Append another column of the same type (ingest path for the
    /// data-change experiments).
    pub fn append(&mut self, other: &Column) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                op: "append",
                expected: self.data_type().name(),
                got: other.data_type().name(),
            });
        }
        let n = other.len();
        match (self, other) {
            (
                Column::Int64 { data, validity },
                Column::Int64 { data: od, validity: ov },
            ) => {
                data.extend_from_slice(od);
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (
                Column::Float64 { data, validity },
                Column::Float64 { data: od, validity: ov },
            ) => {
                data.extend_from_slice(od);
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (Column::Str { data, validity }, Column::Str { data: od, validity: ov }) => {
                data.extend_from_slice(od);
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (
                Column::Bool { data, validity },
                Column::Bool { data: od, validity: ov },
            ) => {
                for i in 0..n {
                    data.push(od.get(i));
                    validity.push(ov.get(i));
                }
            }
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// In-memory footprint of the value buffers in bytes (what "11 MB of
    /// observations" is measured with in the Table 1 experiment).
    pub fn byte_size(&self) -> usize {
        let validity_bytes = self.validity().len().div_ceil(8);
        validity_bytes
            + match self {
                Column::Int64 { data, .. } => data.len() * 8,
                Column::Float64 { data, .. } => data.len() * 8,
                Column::Str { data, .. } => {
                    data.iter().map(|s| s.len() + 8).sum::<usize>()
                }
                Column::Bool { data, .. } => data.len().div_ceil(8),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_basic_access() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.value(1).unwrap(), Value::Int(2));
        assert!(c.value(3).is_err());
    }

    #[test]
    fn nullable_columns() {
        let c = Column::from_f64_opt(vec![Some(1.5), None, Some(2.5)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0).unwrap(), Value::Float(1.5));
        assert_eq!(c.value(1).unwrap(), Value::Null);
        let lossy = c.to_f64_lossy().unwrap();
        assert!(lossy[1].is_nan());
        assert_eq!(lossy[2], 2.5);
    }

    #[test]
    fn int_column_widens_to_f64() {
        let c = Column::from_i64_opt(vec![Some(3), None]);
        let f = c.to_f64_lossy().unwrap();
        assert_eq!(f[0], 3.0);
        assert!(f[1].is_nan());
    }

    #[test]
    fn strings_are_not_numeric() {
        let c = Column::from_str(vec!["a".into()]);
        assert!(c.to_f64_lossy().is_err());
        assert!(c.f64_data().is_err());
        assert_eq!(c.str_data().unwrap()[0], "a");
    }

    #[test]
    fn take_gathers_with_validity() {
        let c = Column::from_i64_opt(vec![Some(10), None, Some(30), Some(40)]);
        let t = c.take(&[3, 1, 0]).unwrap();
        assert_eq!(t.value(0).unwrap(), Value::Int(40));
        assert_eq!(t.value(1).unwrap(), Value::Null);
        assert_eq!(t.value(2).unwrap(), Value::Int(10));
        assert!(c.take(&[4]).is_err());
    }

    #[test]
    fn slice_is_contiguous_take() {
        let c = Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]);
        let s = c.slice(1, 2).unwrap();
        assert_eq!(s.f64_data().unwrap(), &[2.0, 3.0]);
        assert!(c.slice(3, 2).is_err());
    }

    #[test]
    fn append_same_type() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_i64_opt(vec![None, Some(2)]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 1);
        assert_eq!(a.value(2).unwrap(), Value::Int(2));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_f64(vec![1.0]);
        assert!(matches!(a.append(&b), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn bool_column_roundtrip() {
        let c = Column::from_bool(&[true, false, true]);
        assert_eq!(c.value(0).unwrap(), Value::Bool(true));
        assert_eq!(c.value(1).unwrap(), Value::Bool(false));
        let t = c.take(&[1, 2]).unwrap();
        assert_eq!(t.value(1).unwrap(), Value::Bool(true));
    }

    #[test]
    fn byte_size_counts_buffers() {
        let c = Column::from_f64(vec![0.0; 100]);
        // 800 data bytes + 13 validity bytes.
        assert_eq!(c.byte_size(), 800 + 13);
    }
}
