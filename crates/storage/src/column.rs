//! Typed column buffers with validity bitmaps.

use crate::bitmap::Bitmap;
use crate::buffer::Buffer;
use crate::error::{Result, StorageError};
use crate::value::{DataType, Value};

/// Partial numeric-aggregate state over one column, produced by
/// [`Column::numeric_agg`].
///
/// States from disjoint row ranges combine with [`NumericAggState::merge`],
/// which is how the morsel-parallel executor folds per-morsel partials
/// into a full-column aggregate. NULL rows and NaN values are excluded
/// (they are "missing observations", matching `to_f64_lossy`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NumericAggState {
    /// Number of non-missing values seen.
    pub count: u64,
    /// Sum of non-missing values.
    pub sum: f64,
    /// Minimum, `None` until a value is seen.
    pub min: Option<f64>,
    /// Maximum, `None` until a value is seen.
    pub max: Option<f64>,
}

impl NumericAggState {
    /// Fold one value in.
    ///
    /// Min/max use keep-first strict comparisons (`v < min` / `v > max`)
    /// rather than `f64::min`/`f64::max`: on a `-0.0`/`+0.0` tie the
    /// first value seen wins, which is the exact behavior of the
    /// executor's accumulator and the zone-map build fold — the three
    /// must agree bit-for-bit for aggregate pushdown to substitute one
    /// for another.
    #[inline]
    pub fn update(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        match self.min {
            Some(m) if !(v < m) => {}
            _ => self.min = Some(v),
        }
        match self.max {
            Some(m) if !(v > m) => {}
            _ => self.max = Some(v),
        }
    }

    /// Combine with the state of a *later*, disjoint row range (the
    /// earlier side's bound wins ties, keeping row-order semantics).
    pub fn merge(&mut self, other: &NumericAggState) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(if b < a { b } else { a }),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(if b > a { b } else { a }),
            (a, b) => a.or(b),
        };
    }

    /// Mean of the values seen, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }
}

/// A typed column of values plus a validity bitmap.
///
/// Data lives in a dense typed [`Buffer`] (`Arc`'d storage with an
/// `(offset, len)` window), so cloning a column or slicing a contiguous
/// row range never copies values; validity is tracked separately so
/// numeric kernels can run over the raw buffer and consult the bitmap
/// only when nulls are present.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int64 {
        /// Dense values (entries at invalid positions are unspecified).
        data: Buffer<i64>,
        /// Validity bitmap, one bit per row.
        validity: Bitmap,
    },
    /// 64-bit floats.
    Float64 {
        /// Dense values.
        data: Buffer<f64>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// UTF-8 strings.
    Str {
        /// Dense values.
        data: Buffer<String>,
        /// Validity bitmap.
        validity: Bitmap,
    },
    /// Booleans (stored as a bitmap themselves).
    Bool {
        /// Truth bitmap.
        data: Bitmap,
        /// Validity bitmap.
        validity: Bitmap,
    },
}

impl Column {
    /// All-valid integer column.
    pub fn from_i64(data: Vec<i64>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Int64 { data: data.into(), validity }
    }

    /// All-valid float column.
    pub fn from_f64(data: Vec<f64>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Float64 { data: data.into(), validity }
    }

    /// All-valid string column.
    pub fn from_str(data: Vec<String>) -> Column {
        let validity = Bitmap::filled(data.len(), true);
        Column::Str { data: data.into(), validity }
    }

    /// All-valid boolean column.
    pub fn from_bool(values: &[bool]) -> Column {
        let mut data = Bitmap::new();
        for &v in values {
            data.push(v);
        }
        let validity = Bitmap::filled(values.len(), true);
        Column::Bool { data, validity }
    }

    /// Column from optional floats; `None` becomes NULL.
    pub fn from_f64_opt(values: Vec<Option<f64>>) -> Column {
        let mut data = Vec::with_capacity(values.len());
        let mut validity = Bitmap::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    validity.push(true);
                }
                None => {
                    data.push(0.0);
                    validity.push(false);
                }
            }
        }
        Column::Float64 { data: data.into(), validity }
    }

    /// Column from optional ints; `None` becomes NULL.
    pub fn from_i64_opt(values: Vec<Option<i64>>) -> Column {
        let mut data = Vec::with_capacity(values.len());
        let mut validity = Bitmap::new();
        for v in values {
            match v {
                Some(x) => {
                    data.push(x);
                    validity.push(true);
                }
                None => {
                    data.push(0);
                    validity.push(false);
                }
            }
        }
        Column::Int64 { data: data.into(), validity }
    }

    /// Data type of this column.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64 { .. } => DataType::Int64,
            Column::Float64 { .. } => DataType::Float64,
            Column::Str { .. } => DataType::Str,
            Column::Bool { .. } => DataType::Bool,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64 { data, .. } => data.len(),
            Column::Float64 { data, .. } => data.len(),
            Column::Str { data, .. } => data.len(),
            Column::Bool { data, .. } => data.len(),
        }
    }

    /// True when the column has zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Int64 { validity, .. }
            | Column::Float64 { validity, .. }
            | Column::Str { validity, .. }
            | Column::Bool { validity, .. } => validity,
        }
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        self.len() - self.validity().count_set()
    }

    /// Read one row as a dynamic [`Value`].
    pub fn value(&self, row: usize) -> Result<Value> {
        if row >= self.len() {
            return Err(StorageError::RowOutOfRange { row, len: self.len() });
        }
        if !self.validity().get(row) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Int64 { data, .. } => Value::Int(data[row]),
            Column::Float64 { data, .. } => Value::Float(data[row]),
            Column::Str { data, .. } => Value::Str(data[row].clone()),
            Column::Bool { data, .. } => Value::Bool(data.get(row)),
        })
    }

    /// Borrow the raw f64 buffer (floats only).
    pub fn f64_data(&self) -> Result<&[f64]> {
        match self {
            Column::Float64 { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "f64_data",
                expected: "Float64",
                got: other.data_type().name(),
            }),
        }
    }

    /// Borrow the raw i64 buffer (ints only).
    pub fn i64_data(&self) -> Result<&[i64]> {
        match self {
            Column::Int64 { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "i64_data",
                expected: "Int64",
                got: other.data_type().name(),
            }),
        }
    }

    /// Borrow the raw string buffer (strings only).
    pub fn str_data(&self) -> Result<&[String]> {
        match self {
            Column::Str { data, .. } => Ok(data),
            other => Err(StorageError::TypeMismatch {
                op: "str_data",
                expected: "Str",
                got: other.data_type().name(),
            }),
        }
    }

    /// Numeric view of the column as f64s: ints widen, valid floats pass
    /// through, NULLs become NaN. Used by the fitting layer, which treats
    /// NaN rows as missing observations.
    ///
    /// Errors for non-numeric columns.
    pub fn to_f64_lossy(&self) -> Result<Vec<f64>> {
        match self {
            Column::Float64 { data, validity } => {
                if validity.all_set() {
                    Ok(data.to_vec())
                } else {
                    Ok(data
                        .iter()
                        .enumerate()
                        .map(|(i, &v)| if validity.get(i) { v } else { f64::NAN })
                        .collect())
                }
            }
            Column::Int64 { data, validity } => Ok(data
                .iter()
                .enumerate()
                .map(|(i, &v)| if validity.get(i) { v as f64 } else { f64::NAN })
                .collect()),
            other => Err(StorageError::TypeMismatch {
                op: "to_f64_lossy",
                expected: "numeric",
                got: other.data_type().name(),
            }),
        }
    }

    /// Gather the rows at `indices` into a new column (selection vector
    /// materialization — the executor's filter output path).
    pub fn take(&self, indices: &[usize]) -> Result<Column> {
        for &i in indices {
            if i >= self.len() {
                return Err(StorageError::RowOutOfRange { row: i, len: self.len() });
            }
        }
        Ok(match self {
            Column::Int64 { data, validity } => {
                let new_data: Vec<i64> = indices.iter().map(|&i| data[i]).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Int64 { data: new_data.into(), validity: v }
            }
            Column::Float64 { data, validity } => {
                let new_data: Vec<f64> = indices.iter().map(|&i| data[i]).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Float64 { data: new_data.into(), validity: v }
            }
            Column::Str { data, validity } => {
                let new_data: Vec<String> = indices.iter().map(|&i| data[i].clone()).collect();
                let mut v = Bitmap::new();
                for &i in indices {
                    v.push(validity.get(i));
                }
                Column::Str { data: new_data.into(), validity: v }
            }
            Column::Bool { data, validity } => {
                let mut new_data = Bitmap::new();
                let mut v = Bitmap::new();
                for &i in indices {
                    new_data.push(data.get(i));
                    v.push(validity.get(i));
                }
                Column::Bool { data: new_data, validity: v }
            }
        })
    }

    /// Contiguous slice `rows[offset..offset+len]` as a new column.
    ///
    /// Value buffers are shared, not copied (O(1) for the values; the
    /// validity bitmap is a word-level shift-copy, O(len/64)). This is
    /// the morsel-splitting path of the parallel executor.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Column> {
        if offset.checked_add(len).is_none_or(|end| end > self.len()) {
            return Err(StorageError::RowOutOfRange {
                row: offset.saturating_add(len),
                len: self.len(),
            });
        }
        Ok(match self {
            Column::Int64 { data, validity } => Column::Int64 {
                data: data.slice(offset, len),
                validity: validity.slice(offset, len),
            },
            Column::Float64 { data, validity } => Column::Float64 {
                data: data.slice(offset, len),
                validity: validity.slice(offset, len),
            },
            Column::Str { data, validity } => Column::Str {
                data: data.slice(offset, len),
                validity: validity.slice(offset, len),
            },
            Column::Bool { data, validity } => Column::Bool {
                data: data.slice(offset, len),
                validity: validity.slice(offset, len),
            },
        })
    }

    /// Append another column of the same type (ingest path for the
    /// data-change experiments).
    pub fn append(&mut self, other: &Column) -> Result<()> {
        if self.data_type() != other.data_type() {
            return Err(StorageError::TypeMismatch {
                op: "append",
                expected: self.data_type().name(),
                got: other.data_type().name(),
            });
        }
        let n = other.len();
        match (self, other) {
            (
                Column::Int64 { data, validity },
                Column::Int64 { data: od, validity: ov },
            ) => {
                data.with_mut(|v| v.extend_from_slice(od));
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (
                Column::Float64 { data, validity },
                Column::Float64 { data: od, validity: ov },
            ) => {
                data.with_mut(|v| v.extend_from_slice(od));
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (Column::Str { data, validity }, Column::Str { data: od, validity: ov }) => {
                data.with_mut(|v| v.extend_from_slice(od));
                for i in 0..n {
                    validity.push(ov.get(i));
                }
            }
            (
                Column::Bool { data, validity },
                Column::Bool { data: od, validity: ov },
            ) => {
                for i in 0..n {
                    data.push(od.get(i));
                    validity.push(ov.get(i));
                }
            }
            _ => unreachable!("type equality checked above"),
        }
        Ok(())
    }

    /// Compute count/sum/min/max in one pass over the raw value buffer
    /// (numeric columns only), optionally restricted to the rows set in
    /// `sel` (a filter's selection bitmap).
    ///
    /// NULL rows and NaN values are skipped, matching the missing-value
    /// semantics of [`Column::to_f64_lossy`]. This is the executor's
    /// aggregate kernel: no per-row `Value` or `Option<f64>` is ever
    /// materialized.
    pub fn numeric_agg(&self, sel: Option<&Bitmap>) -> Result<NumericAggState> {
        fn run(
            n: usize,
            sel: Option<&Bitmap>,
            validity: &Bitmap,
            get: impl Fn(usize) -> f64,
        ) -> NumericAggState {
            let mut state = NumericAggState::default();
            let all_valid = validity.all_set();
            let mut fold = |i: usize| {
                if all_valid || validity.get(i) {
                    let v = get(i);
                    if !v.is_nan() {
                        state.update(v);
                    }
                }
            };
            match sel {
                Some(sel) => sel.iter_set().for_each(&mut fold),
                None => (0..n).for_each(&mut fold),
            }
            state
        }
        if let Some(sel) = sel {
            if sel.len() != self.len() {
                return Err(StorageError::ColumnLengthMismatch {
                    expected: self.len(),
                    column: "selection bitmap".to_string(),
                    got: sel.len(),
                });
            }
        }
        match self {
            Column::Float64 { data, validity } => {
                Ok(run(data.len(), sel, validity, |i| data[i]))
            }
            Column::Int64 { data, validity } => {
                Ok(run(data.len(), sel, validity, |i| data[i] as f64))
            }
            other => Err(StorageError::TypeMismatch {
                op: "numeric_agg",
                expected: "numeric",
                got: other.data_type().name(),
            }),
        }
    }

    /// In-memory footprint of the value buffers in bytes (what "11 MB of
    /// observations" is measured with in the Table 1 experiment).
    pub fn byte_size(&self) -> usize {
        let validity_bytes = self.validity().len().div_ceil(8);
        validity_bytes
            + match self {
                Column::Int64 { data, .. } => data.len() * 8,
                Column::Float64 { data, .. } => data.len() * 8,
                Column::Str { data, .. } => {
                    data.iter().map(|s| s.len() + 8).sum::<usize>()
                }
                Column::Bool { data, .. } => data.len().div_ceil(8),
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_basic_access() {
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.null_count(), 0);
        assert_eq!(c.value(1).unwrap(), Value::Int(2));
        assert!(c.value(3).is_err());
    }

    #[test]
    fn nullable_columns() {
        let c = Column::from_f64_opt(vec![Some(1.5), None, Some(2.5)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value(0).unwrap(), Value::Float(1.5));
        assert_eq!(c.value(1).unwrap(), Value::Null);
        let lossy = c.to_f64_lossy().unwrap();
        assert!(lossy[1].is_nan());
        assert_eq!(lossy[2], 2.5);
    }

    #[test]
    fn int_column_widens_to_f64() {
        let c = Column::from_i64_opt(vec![Some(3), None]);
        let f = c.to_f64_lossy().unwrap();
        assert_eq!(f[0], 3.0);
        assert!(f[1].is_nan());
    }

    #[test]
    fn strings_are_not_numeric() {
        let c = Column::from_str(vec!["a".into()]);
        assert!(c.to_f64_lossy().is_err());
        assert!(c.f64_data().is_err());
        assert_eq!(c.str_data().unwrap()[0], "a");
    }

    #[test]
    fn take_gathers_with_validity() {
        let c = Column::from_i64_opt(vec![Some(10), None, Some(30), Some(40)]);
        let t = c.take(&[3, 1, 0]).unwrap();
        assert_eq!(t.value(0).unwrap(), Value::Int(40));
        assert_eq!(t.value(1).unwrap(), Value::Null);
        assert_eq!(t.value(2).unwrap(), Value::Int(10));
        assert!(c.take(&[4]).is_err());
    }

    #[test]
    fn slice_is_contiguous_take() {
        let c = Column::from_f64(vec![1.0, 2.0, 3.0, 4.0]);
        let s = c.slice(1, 2).unwrap();
        assert_eq!(s.f64_data().unwrap(), &[2.0, 3.0]);
        assert!(c.slice(3, 2).is_err());
    }

    #[test]
    fn slice_preserves_validity() {
        let c = Column::from_f64_opt(vec![Some(1.0), None, Some(3.0), None, Some(5.0)]);
        let s = c.slice(1, 3).unwrap();
        assert_eq!(s.value(0).unwrap(), Value::Null);
        assert_eq!(s.value(1).unwrap(), Value::Float(3.0));
        assert_eq!(s.value(2).unwrap(), Value::Null);
    }

    #[test]
    fn clone_and_slice_share_value_buffers() {
        // The zero-copy invariant: neither cloning a column nor slicing
        // a row range may copy the value buffer.
        let c = Column::from_f64((0..1000).map(|i| i as f64).collect());
        let cloned = c.clone();
        assert!(std::ptr::eq(
            c.f64_data().unwrap().as_ptr(),
            cloned.f64_data().unwrap().as_ptr()
        ));
        let s = c.slice(100, 50).unwrap();
        assert!(std::ptr::eq(&c.f64_data().unwrap()[100], &s.f64_data().unwrap()[0]));

        let ints = Column::from_i64((0..100).collect());
        let s = ints.slice(10, 20).unwrap();
        assert!(std::ptr::eq(&ints.i64_data().unwrap()[10], &s.i64_data().unwrap()[0]));

        let strs = Column::from_str((0..50).map(|i| i.to_string()).collect());
        let s = strs.slice(5, 10).unwrap();
        assert!(std::ptr::eq(&strs.str_data().unwrap()[5], &s.str_data().unwrap()[0]));
    }

    #[test]
    fn append_does_not_disturb_shared_clones() {
        let mut a = Column::from_i64(vec![1, 2, 3]);
        let snapshot = a.clone();
        a.append(&Column::from_i64(vec![4])).unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(snapshot.len(), 3);
        assert_eq!(snapshot.i64_data().unwrap(), &[1, 2, 3]);
    }

    #[test]
    fn append_same_type() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_i64_opt(vec![None, Some(2)]);
        a.append(&b).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.null_count(), 1);
        assert_eq!(a.value(2).unwrap(), Value::Int(2));
    }

    #[test]
    fn append_type_mismatch() {
        let mut a = Column::from_i64(vec![1]);
        let b = Column::from_f64(vec![1.0]);
        assert!(matches!(a.append(&b), Err(StorageError::TypeMismatch { .. })));
    }

    #[test]
    fn bool_column_roundtrip() {
        let c = Column::from_bool(&[true, false, true]);
        assert_eq!(c.value(0).unwrap(), Value::Bool(true));
        assert_eq!(c.value(1).unwrap(), Value::Bool(false));
        let t = c.take(&[1, 2]).unwrap();
        assert_eq!(t.value(1).unwrap(), Value::Bool(true));
    }

    #[test]
    fn numeric_agg_skips_nulls_and_nans() {
        let c = Column::from_f64_opt(vec![
            Some(1.0),
            None,
            Some(f64::NAN),
            Some(-3.0),
            Some(4.0),
        ]);
        let s = c.numeric_agg(None).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.min, Some(-3.0));
        assert_eq!(s.max, Some(4.0));
        assert_eq!(s.mean(), Some(2.0 / 3.0));
    }

    #[test]
    fn numeric_agg_respects_selection() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        let sel = Bitmap::from_fn(4, |i| i % 2 == 1); // rows 1, 3
        let s = c.numeric_agg(Some(&sel)).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 60.0);
        assert_eq!(s.min, Some(20.0));
        assert_eq!(s.max, Some(40.0));
        let wrong_len = Bitmap::filled(3, true);
        assert!(c.numeric_agg(Some(&wrong_len)).is_err());
        assert!(Column::from_str(vec!["a".into()]).numeric_agg(None).is_err());
    }

    #[test]
    fn numeric_agg_merge_equals_whole_column_pass() {
        let vals: Vec<Option<f64>> = (0..100)
            .map(|i| if i % 7 == 0 { None } else { Some((i as f64) - 50.0) })
            .collect();
        let c = Column::from_f64_opt(vals);
        let whole = c.numeric_agg(None).unwrap();
        // Morsel-style: aggregate disjoint slices, merge in order.
        let mut merged = NumericAggState::default();
        for start in (0..100).step_by(33) {
            let len = (100 - start).min(33);
            let part = c.slice(start, len).unwrap().numeric_agg(None).unwrap();
            merged.merge(&part);
        }
        assert_eq!(merged, whole);
        // Merging an empty state is the identity.
        let mut empty = NumericAggState::default();
        empty.merge(&whole);
        assert_eq!(empty, whole);
    }

    #[test]
    fn byte_size_counts_buffers() {
        let c = Column::from_f64(vec![0.0; 100]);
        // 800 data bytes + 13 validity bytes.
        assert_eq!(c.byte_size(), 800 + 13);
    }
}
