//! Tables: a schema plus equal-length columns.

use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::schema::{DataType, Field, Schema};
use crate::value::Value;
use crate::zonemap::{ColumnZones, TableSynopsis, ZoneSource, DEFAULT_ZONE_ROWS};
use std::sync::Arc;

/// An immutable-by-convention columnar table.
///
/// The ingestion path goes through [`TableBuilder`]; appends (for the
/// data-change experiments) go through [`Table::append_rows`], which
/// keeps column lengths in lock-step.
///
/// Tables built through the write paths carry a [`TableSynopsis`] —
/// per-zone min/max/null-count/constant bounds used by the scan pruner.
/// The synopsis is derived metadata: it never participates in equality,
/// and row-level derivations (`take`, `slice`) drop it rather than pay
/// to rebuild it per morsel.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
    synopsis: Option<Arc<TableSynopsis>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        // The synopsis is derived metadata, excluded on purpose: a table
        // read back from pages compares equal to the one stored.
        self.name == other.name
            && self.schema == other.schema
            && self.columns == other.columns
            && self.rows == other.rows
    }
}

impl Table {
    /// Construct from parts; validates lengths and name uniqueness.
    pub fn new(name: impl Into<String>, schema: Schema, columns: Vec<Column>) -> Result<Table> {
        let name = name.into();
        if schema.len() != columns.len() {
            return Err(StorageError::InvalidTable {
                reason: "schema and column counts differ",
            });
        }
        if schema.is_empty() {
            return Err(StorageError::InvalidTable { reason: "table needs at least one column" });
        }
        let mut seen: Vec<&str> = Vec::with_capacity(schema.len());
        for f in schema.fields() {
            if seen.contains(&f.name.as_str()) {
                return Err(StorageError::DuplicateColumn { name: f.name.clone() });
            }
            seen.push(&f.name);
        }
        let rows = columns[0].len();
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.len() != rows {
                return Err(StorageError::ColumnLengthMismatch {
                    expected: rows,
                    column: f.name.clone(),
                    got: c.len(),
                });
            }
            if c.data_type() != f.data_type {
                return Err(StorageError::TypeMismatch {
                    op: "table construction",
                    expected: f.data_type.name(),
                    got: c.data_type().name(),
                });
            }
        }
        Ok(Table { name, schema, columns, rows, synopsis: None })
    }

    /// The table's zone-map synopsis, when one has been built.
    pub fn synopsis(&self) -> Option<&TableSynopsis> {
        self.synopsis.as_deref()
    }

    /// Build (or rebuild) zone maps for every non-string column at the
    /// default granularity. Called by the write paths; scans only ever
    /// read the result.
    pub fn rebuild_synopsis(&mut self) {
        self.rebuild_synopsis_with(DEFAULT_ZONE_ROWS);
    }

    /// Build (or rebuild) zone maps with an explicit zone granularity.
    pub fn rebuild_synopsis_with(&mut self, zone_rows: usize) {
        let mut s = TableSynopsis::new();
        for (f, c) in self.schema.fields().iter().zip(&self.columns) {
            if let Some(z) = ColumnZones::build(c, zone_rows) {
                s.insert(f.name.clone(), z);
            }
        }
        self.synopsis = Some(Arc::new(s));
    }

    /// New table whose `column` zones are replaced by model-provenance
    /// bounds (`prediction ± residual_bound`). This is the semantic-
    /// compression view: once a model covers the column, its synopsis
    /// comes from the model, not from materialized pages, and pruning
    /// against it is accounted as zero-IO model pruning.
    ///
    /// Errors when the column does not exist or the bounds do not cover
    /// the table's rows.
    pub fn with_model_zones(&self, column: &str, zones: ColumnZones) -> Result<Table> {
        if self.schema.index_of(column).is_none() {
            return Err(StorageError::ColumnNotFound { name: column.to_string() });
        }
        if zones.source != ZoneSource::Model {
            return Err(StorageError::InvalidTable {
                reason: "with_model_zones requires model-provenance zones",
            });
        }
        if zones.row_count() != self.rows {
            return Err(StorageError::InvalidTable {
                reason: "model zone bounds do not cover the table's rows",
            });
        }
        let mut s = self.synopsis.as_deref().cloned().unwrap_or_default();
        s.insert(column.to_string(), zones);
        let mut t = self.clone();
        t.synopsis = Some(Arc::new(s));
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::ColumnNotFound { name: name.to_string() })?;
        Ok(&self.columns[idx])
    }

    /// One row as dynamic values (API/debug path, not the scan path).
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.rows {
            return Err(StorageError::RowOutOfRange { row, len: self.rows });
        }
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Total byte footprint of all column buffers.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(Column::byte_size).sum()
    }

    /// Append a batch of rows given as one column per field, in schema
    /// order. Types and lengths must match.
    pub fn append_rows(&mut self, batch: &[Column]) -> Result<()> {
        if batch.len() != self.columns.len() {
            return Err(StorageError::InvalidTable {
                reason: "append batch has wrong column count",
            });
        }
        let n = batch[0].len();
        for (f, c) in self.schema.fields().iter().zip(batch) {
            if c.len() != n {
                return Err(StorageError::ColumnLengthMismatch {
                    expected: n,
                    column: f.name.clone(),
                    got: c.len(),
                });
            }
        }
        // Validate all types before mutating anything, so a failed append
        // leaves the table unchanged.
        for (mine, theirs) in self.columns.iter().zip(batch) {
            if mine.data_type() != theirs.data_type() {
                return Err(StorageError::TypeMismatch {
                    op: "append_rows",
                    expected: mine.data_type().name(),
                    got: theirs.data_type().name(),
                });
            }
        }
        for (mine, theirs) in self.columns.iter_mut().zip(batch) {
            mine.append(theirs).expect("types validated above");
        }
        self.rows += n;
        // Appending is a write: refresh the synopsis so zone bounds keep
        // covering every row. Model-provenance zones are dropped (the
        // engine invalidates covering models on append anyway).
        if self.synopsis.is_some() {
            self.rebuild_synopsis();
        }
        Ok(())
    }

    /// New table with only the named columns (projection).
    pub fn project(&self, names: &[&str]) -> Result<Table> {
        let mut fields = Vec::with_capacity(names.len());
        let mut cols = Vec::with_capacity(names.len());
        for n in names {
            let idx = self
                .schema
                .index_of(n)
                .ok_or_else(|| StorageError::ColumnNotFound { name: n.to_string() })?;
            fields.push(self.schema.fields()[idx].clone());
            cols.push(self.columns[idx].clone());
        }
        let mut t = Table::new(self.name.clone(), Schema::new(fields), cols)?;
        // Projection keeps rows intact, so the surviving columns' zones
        // stay valid — carry them over instead of rebuilding.
        if let Some(s) = &self.synopsis {
            let mut kept = TableSynopsis::new();
            for n in names {
                if let Some(z) = s.column(n) {
                    kept.insert(n.to_string(), z.clone());
                }
            }
            if !kept.is_empty() {
                t.synopsis = Some(Arc::new(kept));
            }
        }
        Ok(t)
    }

    /// New table keeping only the rows at `indices`.
    pub fn take(&self, indices: &[usize]) -> Result<Table> {
        let cols: Result<Vec<Column>> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table::new(self.name.clone(), self.schema.clone(), cols?)
    }

    /// Contiguous row range `[offset, offset + len)` as a new table.
    ///
    /// Value buffers are shared with `self` (zero-copy); this is how
    /// the parallel executor splits a base table into morsels.
    pub fn slice(&self, offset: usize, len: usize) -> Result<Table> {
        let cols: Result<Vec<Column>> =
            self.columns.iter().map(|c| c.slice(offset, len)).collect();
        Table::new(self.name.clone(), self.schema.clone(), cols?)
    }
}

/// Builder assembling a table column by column.
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    fields: Vec<Field>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Start building a table with the given name.
    pub fn new(name: impl Into<String>) -> TableBuilder {
        TableBuilder { name: name.into(), fields: Vec::new(), columns: Vec::new() }
    }

    /// Add a non-nullable integer column.
    pub fn add_i64(&mut self, name: impl Into<String>, data: Vec<i64>) -> &mut Self {
        self.fields.push(Field::new(name, DataType::Int64));
        self.columns.push(Column::from_i64(data));
        self
    }

    /// Add a non-nullable float column.
    pub fn add_f64(&mut self, name: impl Into<String>, data: Vec<f64>) -> &mut Self {
        self.fields.push(Field::new(name, DataType::Float64));
        self.columns.push(Column::from_f64(data));
        self
    }

    /// Add a nullable float column.
    pub fn add_f64_opt(&mut self, name: impl Into<String>, data: Vec<Option<f64>>) -> &mut Self {
        self.fields.push(Field::nullable(name, DataType::Float64));
        self.columns.push(Column::from_f64_opt(data));
        self
    }

    /// Add a non-nullable string column.
    pub fn add_str(&mut self, name: impl Into<String>, data: Vec<String>) -> &mut Self {
        self.fields.push(Field::new(name, DataType::Str));
        self.columns.push(Column::from_str(data));
        self
    }

    /// Add a non-nullable boolean column.
    pub fn add_bool(&mut self, name: impl Into<String>, data: &[bool]) -> &mut Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self.columns.push(Column::from_bool(data));
        self
    }

    /// Add an already-built column with an explicit field definition.
    pub fn add_column(&mut self, field: Field, column: Column) -> &mut Self {
        self.fields.push(field);
        self.columns.push(column);
        self
    }

    /// Finish, validating shape and types. The built table carries a
    /// zone-map synopsis computed in one extra pass (write-time cost,
    /// scan-time payoff).
    pub fn build(&mut self) -> Result<Table> {
        let mut t = Table::new(
            std::mem::take(&mut self.name),
            Schema::new(std::mem::take(&mut self.fields)),
            std::mem::take(&mut self.columns),
        )?;
        t.rebuild_synopsis();
        Ok(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lofar_like() -> Table {
        let mut b = TableBuilder::new("measurements");
        b.add_i64("source", vec![1, 1, 2, 2]);
        b.add_f64("nu", vec![0.12, 0.15, 0.12, 0.15]);
        b.add_f64("intensity", vec![0.23, 0.34, 1.59, 1.41]);
        b.build().unwrap()
    }

    #[test]
    fn builder_builds_consistent_table() {
        let t = lofar_like();
        assert_eq!(t.name(), "measurements");
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.schema().names(), vec!["source", "nu", "intensity"]);
        assert_eq!(t.column("nu").unwrap().f64_data().unwrap()[1], 0.15);
        assert!(t.column("zz").is_err());
    }

    #[test]
    fn ragged_columns_rejected() {
        let mut b = TableBuilder::new("bad");
        b.add_i64("a", vec![1, 2]);
        b.add_f64("b", vec![1.0]);
        assert!(matches!(b.build(), Err(StorageError::ColumnLengthMismatch { .. })));
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut b = TableBuilder::new("bad");
        b.add_i64("a", vec![1]);
        b.add_f64("a", vec![1.0]);
        assert!(matches!(b.build(), Err(StorageError::DuplicateColumn { .. })));
    }

    #[test]
    fn empty_table_rejected() {
        let mut b = TableBuilder::new("bad");
        assert!(matches!(b.build(), Err(StorageError::InvalidTable { .. })));
    }

    #[test]
    fn row_access() {
        let t = lofar_like();
        let r = t.row(2).unwrap();
        assert_eq!(r, vec![Value::Int(2), Value::Float(0.12), Value::Float(1.59)]);
        assert!(t.row(4).is_err());
    }

    #[test]
    fn append_rows_grows_table() {
        let mut t = lofar_like();
        let batch = vec![
            Column::from_i64(vec![3]),
            Column::from_f64(vec![0.16]),
            Column::from_f64(vec![2.0]),
        ];
        t.append_rows(&batch).unwrap();
        assert_eq!(t.row_count(), 5);
        assert_eq!(t.row(4).unwrap()[0], Value::Int(3));
    }

    #[test]
    fn append_rejects_bad_types_without_mutating() {
        let mut t = lofar_like();
        let batch = vec![
            Column::from_f64(vec![3.0]), // wrong: should be i64
            Column::from_f64(vec![0.16]),
            Column::from_f64(vec![2.0]),
        ];
        assert!(t.append_rows(&batch).is_err());
        assert_eq!(t.row_count(), 4);
    }

    #[test]
    fn projection_and_take() {
        let t = lofar_like();
        let p = t.project(&["intensity", "source"]).unwrap();
        assert_eq!(p.schema().names(), vec!["intensity", "source"]);
        let s = t.take(&[0, 3]).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row(1).unwrap()[2], Value::Float(1.41));
    }

    #[test]
    fn byte_size_of_paper_shape() {
        // Three 8-byte columns over 4 rows + 3 validity bytes.
        let t = lofar_like();
        assert_eq!(t.byte_size(), 3 * (4 * 8 + 1));
    }

    #[test]
    fn builder_attaches_zone_synopsis() {
        let t = lofar_like();
        let s = t.synopsis().expect("write path builds a synopsis");
        let z = s.column("intensity").unwrap();
        assert_eq!((z.entries[0].min, z.entries[0].max), (0.23, 1.59));
        assert!(s.column("nu").is_some());
        // Derived row subsets drop the (now-invalid) synopsis.
        assert!(t.take(&[0, 2]).unwrap().synopsis().is_none());
        assert!(t.slice(1, 2).unwrap().synopsis().is_none());
    }

    #[test]
    fn append_refreshes_zone_bounds() {
        let mut t = lofar_like();
        t.append_rows(&[
            Column::from_i64(vec![3]),
            Column::from_f64(vec![0.16]),
            Column::from_f64(vec![99.0]),
        ])
        .unwrap();
        let z = t.synopsis().unwrap().column("intensity").unwrap();
        assert_eq!(z.entries[0].max, 99.0);
        assert_eq!(z.row_count(), 5);
    }

    #[test]
    fn projection_carries_surviving_zones() {
        let t = lofar_like();
        let p = t.project(&["nu"]).unwrap();
        let s = p.synopsis().unwrap();
        assert!(s.column("nu").is_some());
        assert!(s.column("intensity").is_none());
    }

    #[test]
    fn model_zones_replace_data_zones() {
        use crate::zonemap::{ColumnZones, PredOp, ZoneSource};
        let t = lofar_like();
        let zones = ColumnZones::from_model_bounds(&[0.2, 0.3, 1.5, 1.5], 0.1, 4096);
        let t2 = t.with_model_zones("intensity", zones).unwrap();
        let z = t2.synopsis().unwrap().column("intensity").unwrap();
        assert_eq!(z.source, ZoneSource::Model);
        assert!(!z.range_may_match(0, 4, PredOp::Gt, 2.0));
        // Equality ignores the synopsis.
        assert_eq!(t, t2);
        // Wrong coverage or missing column is an error.
        let short = ColumnZones::from_model_bounds(&[0.2], 0.1, 4096);
        assert!(t.with_model_zones("intensity", short).is_err());
        let ok = ColumnZones::from_model_bounds(&[0.2, 0.3, 1.5, 1.5], 0.1, 4096);
        assert!(t.with_model_zones("zz", ok).is_err());
    }

    #[test]
    fn slice_rows_and_share_buffers() {
        let t = lofar_like();
        let s = t.slice(1, 2).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.row(0).unwrap(), t.row(1).unwrap());
        assert_eq!(s.row(1).unwrap(), t.row(2).unwrap());
        assert!(t.slice(3, 2).is_err());
        // Zero-copy: clone, project, and slice all alias the original
        // value buffers instead of copying them.
        let cloned = t.clone();
        let projected = t.project(&["nu"]).unwrap();
        assert!(std::ptr::eq(
            t.column("nu").unwrap().f64_data().unwrap().as_ptr(),
            cloned.column("nu").unwrap().f64_data().unwrap().as_ptr()
        ));
        assert!(std::ptr::eq(
            t.column("nu").unwrap().f64_data().unwrap().as_ptr(),
            projected.column("nu").unwrap().f64_data().unwrap().as_ptr()
        ));
        assert!(std::ptr::eq(
            &t.column("nu").unwrap().f64_data().unwrap()[1],
            &s.column("nu").unwrap().f64_data().unwrap()[0]
        ));
    }
}
