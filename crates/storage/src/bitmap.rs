//! Validity bitmap: one bit per row, set = valid (non-null).

use std::sync::Arc;

/// A growable bitmap, LSB-first within each word.
///
/// The word storage is `Arc`'d so cloning a bitmap (e.g. cloning a
/// column's validity during a zero-copy `Scan`) is O(1); mutation is
/// copy-on-write through `Arc::make_mut`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bitmap {
    words: Arc<Vec<u64>>,
    len: usize,
}

impl Bitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Bitmap::default()
    }

    /// Bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(64);
        let word = if value { u64::MAX } else { 0 };
        let mut b = Bitmap { words: Arc::new(vec![word; nwords]), len };
        b.mask_tail();
        b
    }

    /// Bitmap of `len` bits where bit `i` is `f(i)`. Builds whole words
    /// locally, so it is the preferred constructor inside kernels (no
    /// per-bit copy-on-write checks).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut words = vec![0u64; len.div_ceil(64)];
        for i in 0..len {
            if f(i) {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Bitmap { words: Arc::new(words), len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, value: bool) {
        let word = self.len / 64;
        let bit = self.len % 64;
        let words = Arc::make_mut(&mut self.words);
        if word == words.len() {
            words.push(0);
        }
        if value {
            words[word] |= 1 << bit;
        }
        self.len += 1;
    }

    /// Read bit `i`; panics when out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`; panics when out of range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit {i} out of range ({} bits)", self.len);
        let words = Arc::make_mut(&mut self.words);
        if value {
            words[i / 64] |= 1 << (i % 64);
        } else {
            words[i / 64] &= !(1 << (i % 64));
        }
    }

    /// Set bits `[start, end)` in one word-speed pass (run-level kernel
    /// path: an accepted RLE run sets its whole range at once).
    pub fn set_range(&mut self, start: usize, end: usize) {
        assert!(start <= end && end <= self.len, "range [{start}, {end}) out of bounds");
        if start == end {
            return;
        }
        let words = Arc::make_mut(&mut self.words);
        let (w0, b0) = (start / 64, start % 64);
        let (w1, b1) = ((end - 1) / 64, (end - 1) % 64 + 1);
        let head = u64::MAX << b0;
        let tail = if b1 == 64 { u64::MAX } else { (1u64 << b1) - 1 };
        if w0 == w1 {
            words[w0] |= head & tail;
        } else {
            words[w0] |= head;
            for w in &mut words[w0 + 1..w1] {
                *w = u64::MAX;
            }
            words[w1] |= tail;
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set (an all-valid column can skip null
    /// checks on the scan fast path).
    pub fn all_set(&self) -> bool {
        self.count_set() == self.len
    }

    /// Bitwise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words =
            self.words.iter().zip(other.words.iter()).map(|(a, b)| a & b).collect();
        Bitmap { words: Arc::new(words), len: self.len }
    }

    /// Bitwise OR of two equal-length bitmaps.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words =
            self.words.iter().zip(other.words.iter()).map(|(a, b)| a | b).collect();
        Bitmap { words: Arc::new(words), len: self.len }
    }

    /// Bits set in `self` but not in `other` (`self AND NOT other`).
    pub fn and_not(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let words =
            self.words.iter().zip(other.words.iter()).map(|(a, b)| a & !b).collect();
        Bitmap { words: Arc::new(words), len: self.len }
    }

    /// Bits `[offset, offset + len)` as a new bitmap. Word-level
    /// shift-copy: O(len/64), used when splitting columns into morsels.
    pub fn slice(&self, offset: usize, len: usize) -> Bitmap {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "bitmap slice [{offset}, {offset}+{len}) out of range ({} bits)",
            self.len
        );
        let shift = offset % 64;
        let first = offset / 64;
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        for i in 0..nwords {
            let lo = self.words.get(first + i).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words.get(first + i + 1).copied().unwrap_or(0) << (64 - shift)
            };
            words.push(lo | hi);
        }
        let mut b = Bitmap { words: Arc::new(words), len };
        b.mask_tail();
        b
    }

    /// Iterator over the indices of set bits.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let len = self.len;
            let mut w = w;
            std::iter::from_fn(move || {
                while w != 0 {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    let idx = wi * 64 + bit;
                    if idx < len {
                        return Some(idx);
                    }
                }
                None
            })
        })
    }

    /// Clear bits beyond `len` so whole-word operations stay exact.
    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = Arc::make_mut(&mut self.words).last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Serialize to `(len, words)`, used by the page layer.
    pub fn to_parts(&self) -> (usize, &[u64]) {
        (self.len, &self.words)
    }

    /// Rebuild from serialized parts.
    pub fn from_parts(len: usize, words: Vec<u64>) -> Self {
        let mut b = Bitmap { words: Arc::new(words), len };
        b.mask_tail();
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set_roundtrip() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(1, true);
        assert!(b.get(1));
        b.set(0, false);
        assert!(!b.get(0));
    }

    #[test]
    fn filled_and_counts() {
        let t = Bitmap::filled(100, true);
        assert_eq!(t.count_set(), 100);
        assert!(t.all_set());
        let f = Bitmap::filled(100, false);
        assert_eq!(f.count_set(), 0);
        assert!(!f.all_set());
        assert!(Bitmap::filled(0, true).all_set()); // vacuously
    }

    #[test]
    fn filled_true_masks_tail_bits() {
        // 65 bits: second word must only have 1 bit set.
        let t = Bitmap::filled(65, true);
        assert_eq!(t.count_set(), 65);
    }

    #[test]
    fn and_intersects() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in 0..10 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        let c = a.and(&b);
        let set: Vec<usize> = c.iter_set().collect();
        assert_eq!(set, vec![0, 6]);
    }

    #[test]
    fn iter_set_crosses_word_boundaries() {
        let mut b = Bitmap::filled(200, false);
        for &i in &[0, 63, 64, 127, 128, 199] {
            b.set(i, true);
        }
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn or_and_not() {
        let mut a = Bitmap::new();
        let mut b = Bitmap::new();
        for i in 0..10 {
            a.push(i % 2 == 0);
            b.push(i % 3 == 0);
        }
        assert_eq!(a.or(&b).iter_set().collect::<Vec<_>>(), vec![0, 2, 3, 4, 6, 8, 9]);
        assert_eq!(a.and_not(&b).iter_set().collect::<Vec<_>>(), vec![2, 4, 8]);
    }

    #[test]
    fn slice_at_arbitrary_offsets() {
        let mut b = Bitmap::new();
        for i in 0..200 {
            b.push(i % 7 == 0);
        }
        for &(offset, len) in &[(0, 200), (1, 64), (63, 65), (64, 64), (100, 0), (130, 70)] {
            let s = b.slice(offset, len);
            assert_eq!(s.len(), len);
            for i in 0..len {
                assert_eq!(s.get(i), b.get(offset + i), "offset {offset} bit {i}");
            }
        }
    }

    #[test]
    fn clone_is_shared_until_mutated() {
        let mut a = Bitmap::filled(100, true);
        let b = a.clone();
        a.set(5, false);
        assert!(!a.get(5));
        assert!(b.get(5), "clone must not observe copy-on-write mutation");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        Bitmap::filled(3, true).get(3);
    }

    #[test]
    fn set_range_matches_per_bit_sets() {
        for &(start, end) in &[(0, 0), (0, 1), (3, 61), (0, 64), (63, 65), (10, 200), (64, 128)] {
            let mut fast = Bitmap::filled(200, false);
            fast.set_range(start, end);
            let slow = Bitmap::from_fn(200, |i| i >= start && i < end);
            assert_eq!(fast, slow, "[{start}, {end})");
        }
        let mut b = Bitmap::filled(100, false);
        b.set_range(10, 20);
        b.set_range(15, 30); // overlapping ranges accumulate
        assert_eq!(b.count_set(), 20);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_range_rejects_overflow() {
        Bitmap::filled(10, false).set_range(5, 11);
    }

    #[test]
    fn parts_roundtrip() {
        let mut b = Bitmap::new();
        for i in 0..77 {
            b.push(i % 5 == 1);
        }
        let (len, words) = b.to_parts();
        let b2 = Bitmap::from_parts(len, words.to_vec());
        assert_eq!(b, b2);
    }
}
