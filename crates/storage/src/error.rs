//! Error type for the storage engine.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Errors produced by the columnar store, pager and codecs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column was addressed by a name the schema does not contain.
    ColumnNotFound {
        /// The missing column name.
        name: String,
    },
    /// A table was addressed by a name the catalog does not contain.
    TableNotFound {
        /// The missing table name.
        name: String,
    },
    /// A table with this name already exists.
    TableExists {
        /// The duplicate name.
        name: String,
    },
    /// Column lengths within one table differ.
    ColumnLengthMismatch {
        /// Expected row count.
        expected: usize,
        /// Conflicting column name.
        column: String,
        /// Its row count.
        got: usize,
    },
    /// The value's type does not match the column's type.
    TypeMismatch {
        /// What the caller tried to do.
        op: &'static str,
        /// Expected data type name.
        expected: &'static str,
        /// Supplied data type name.
        got: &'static str,
    },
    /// Row index out of range.
    RowOutOfRange {
        /// The requested row.
        row: usize,
        /// Number of rows present.
        len: usize,
    },
    /// A page id was requested that the store has never written.
    PageNotFound {
        /// The missing page id.
        page: u64,
    },
    /// A codec met bytes it cannot decode.
    CorruptData {
        /// Which codec failed.
        codec: &'static str,
        /// Details.
        detail: String,
    },
    /// Codec input violated a precondition (e.g. residual codec given
    /// mismatched prediction length).
    CodecInput {
        /// Which codec rejected its input.
        codec: &'static str,
        /// Details.
        detail: String,
    },
    /// A duplicate column name within one table.
    DuplicateColumn {
        /// The duplicate name.
        name: String,
    },
    /// An empty schema or other structurally invalid table definition.
    InvalidTable {
        /// Explanation.
        reason: &'static str,
    },
    /// A page's content no longer matches the checksum recorded when it
    /// was written. The page is quarantined: its bytes must not be
    /// trusted, and the caller should fall back to model-based
    /// reconstruction or degrade the result.
    ChecksumMismatch {
        /// The corrupt page.
        page: u64,
        /// CRC-32 recorded at write time.
        expected: u32,
        /// CRC-32 of the bytes actually read.
        got: u32,
    },
    /// A device-level IO failure: an oversized write, an injected
    /// fault, or any operation attempted after a simulated crash.
    Io {
        /// The operation that failed (`"read"`, `"write"`, …).
        op: &'static str,
        /// The page involved.
        page: u64,
        /// Details.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ColumnNotFound { name } => write!(f, "column {name:?} not found"),
            StorageError::TableNotFound { name } => write!(f, "table {name:?} not found"),
            StorageError::TableExists { name } => write!(f, "table {name:?} already exists"),
            StorageError::ColumnLengthMismatch { expected, column, got } => write!(
                f,
                "column {column:?} has {got} rows, table expects {expected}"
            ),
            StorageError::TypeMismatch { op, expected, got } => {
                write!(f, "{op}: expected {expected}, got {got}")
            }
            StorageError::RowOutOfRange { row, len } => {
                write!(f, "row {row} out of range (table has {len} rows)")
            }
            StorageError::PageNotFound { page } => write!(f, "page {page} not found"),
            StorageError::CorruptData { codec, detail } => {
                write!(f, "corrupt {codec} data: {detail}")
            }
            StorageError::CodecInput { codec, detail } => {
                write!(f, "invalid input to {codec} codec: {detail}")
            }
            StorageError::DuplicateColumn { name } => {
                write!(f, "duplicate column name {name:?}")
            }
            StorageError::InvalidTable { reason } => write!(f, "invalid table: {reason}"),
            StorageError::ChecksumMismatch { page, expected, got } => write!(
                f,
                "page {page} checksum mismatch (expected {expected:#010x}, got {got:#010x}); \
                 page quarantined"
            ),
            StorageError::Io { op, page, detail } => {
                write!(f, "io error during {op} of page {page}: {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}
