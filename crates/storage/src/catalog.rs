//! Concurrent table catalog.

use crate::error::{Result, StorageError};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A thread-safe registry of named tables.
///
/// Tables are handed out as `Arc<Table>` snapshots: readers (query
/// execution, model fitting) never block each other, and replacing a
/// table (the append/recompress paths) swaps the Arc atomically — the
/// same copy-on-write discipline analytic engines use for immutable
/// column chunks.
///
/// Every mutation (register, replace, drop) bumps a monotonically
/// increasing *epoch*. Plan caches key on it: a cached physical plan is
/// valid only for the epoch it was built against, so any change to row
/// counts, synopses, or table shapes invalidates it without the cache
/// having to understand what changed.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    epoch: AtomicU64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Current statistics epoch. Bumped on every `register`, `replace`
    /// and `drop_table`; never decreases.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Register a new table; fails if the name is taken.
    pub fn register(&self, table: Table) -> Result<Arc<Table>> {
        let mut guard = self.tables.write();
        if guard.contains_key(table.name()) {
            return Err(StorageError::TableExists { name: table.name().to_string() });
        }
        let arc = Arc::new(table);
        guard.insert(arc.name().to_string(), Arc::clone(&arc));
        drop(guard);
        self.bump_epoch();
        Ok(arc)
    }

    /// Replace an existing table (or insert if absent), returning the
    /// previous version when there was one.
    pub fn replace(&self, table: Table) -> Option<Arc<Table>> {
        let arc = Arc::new(table);
        let prev = self.tables.write().insert(arc.name().to_string(), arc);
        self.bump_epoch();
        prev
    }

    /// Snapshot of a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound { name: name.to_string() })
    }

    /// Drop a table; returns it if present.
    pub fn drop_table(&self, name: &str) -> Option<Arc<Table>> {
        let prev = self.tables.write().remove(name);
        if prev.is_some() {
            self.bump_epoch();
        }
        prev
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn t(name: &str) -> Table {
        let mut b = TableBuilder::new(name);
        b.add_i64("x", vec![1, 2]);
        b.build().unwrap()
    }

    #[test]
    fn register_get_drop() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register(t("a")).unwrap();
        c.register(t("b")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.get("a").unwrap().row_count(), 2);
        assert!(matches!(c.get("zz"), Err(StorageError::TableNotFound { .. })));
        assert!(c.drop_table("a").is_some());
        assert!(c.drop_table("a").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_registration_fails() {
        let c = Catalog::new();
        c.register(t("a")).unwrap();
        assert!(matches!(c.register(t("a")), Err(StorageError::TableExists { .. })));
    }

    #[test]
    fn replace_swaps_snapshot_without_touching_old_readers() {
        let c = Catalog::new();
        c.register(t("a")).unwrap();
        let old = c.get("a").unwrap();
        let mut b = TableBuilder::new("a");
        b.add_i64("x", vec![1, 2, 3]);
        let prev = c.replace(b.build().unwrap());
        assert_eq!(prev.unwrap().row_count(), 2);
        // Old snapshot is unaffected; new lookups see the replacement.
        assert_eq!(old.row_count(), 2);
        assert_eq!(c.get("a").unwrap().row_count(), 3);
    }

    #[test]
    fn epoch_advances_on_every_mutation() {
        let c = Catalog::new();
        let e0 = c.epoch();
        c.register(t("a")).unwrap();
        let e1 = c.epoch();
        assert!(e1 > e0);
        c.replace(t("a"));
        let e2 = c.epoch();
        assert!(e2 > e1);
        c.drop_table("a");
        let e3 = c.epoch();
        assert!(e3 > e2);
        // Dropping a missing table is not a statistics change.
        c.drop_table("a");
        assert_eq!(c.epoch(), e3);
        // A failed (duplicate) registration changes nothing.
        c.register(t("b")).unwrap();
        let e4 = c.epoch();
        assert!(c.register(t("b")).is_err());
        assert_eq!(c.epoch(), e4);
    }

    #[test]
    fn concurrent_readers() {
        let c = Arc::new(Catalog::new());
        c.register(t("a")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        assert_eq!(c.get("a").unwrap().row_count(), 2);
                    }
                });
            }
        });
    }
}
