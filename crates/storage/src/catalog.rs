//! Concurrent table catalog.

use crate::error::{Result, StorageError};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe registry of named tables.
///
/// Tables are handed out as `Arc<Table>` snapshots: readers (query
/// execution, model fitting) never block each other, and replacing a
/// table (the append/recompress paths) swaps the Arc atomically — the
/// same copy-on-write discipline analytic engines use for immutable
/// column chunks.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a new table; fails if the name is taken.
    pub fn register(&self, table: Table) -> Result<Arc<Table>> {
        let mut guard = self.tables.write();
        if guard.contains_key(table.name()) {
            return Err(StorageError::TableExists { name: table.name().to_string() });
        }
        let arc = Arc::new(table);
        guard.insert(arc.name().to_string(), Arc::clone(&arc));
        Ok(arc)
    }

    /// Replace an existing table (or insert if absent), returning the
    /// previous version when there was one.
    pub fn replace(&self, table: Table) -> Option<Arc<Table>> {
        let arc = Arc::new(table);
        self.tables.write().insert(arc.name().to_string(), arc)
    }

    /// Snapshot of a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound { name: name.to_string() })
    }

    /// Drop a table; returns it if present.
    pub fn drop_table(&self, name: &str) -> Option<Arc<Table>> {
        self.tables.write().remove(name)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn t(name: &str) -> Table {
        let mut b = TableBuilder::new(name);
        b.add_i64("x", vec![1, 2]);
        b.build().unwrap()
    }

    #[test]
    fn register_get_drop() {
        let c = Catalog::new();
        assert!(c.is_empty());
        c.register(t("a")).unwrap();
        c.register(t("b")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.get("a").unwrap().row_count(), 2);
        assert!(matches!(c.get("zz"), Err(StorageError::TableNotFound { .. })));
        assert!(c.drop_table("a").is_some());
        assert!(c.drop_table("a").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_registration_fails() {
        let c = Catalog::new();
        c.register(t("a")).unwrap();
        assert!(matches!(c.register(t("a")), Err(StorageError::TableExists { .. })));
    }

    #[test]
    fn replace_swaps_snapshot_without_touching_old_readers() {
        let c = Catalog::new();
        c.register(t("a")).unwrap();
        let old = c.get("a").unwrap();
        let mut b = TableBuilder::new("a");
        b.add_i64("x", vec![1, 2, 3]);
        let prev = c.replace(b.build().unwrap());
        assert_eq!(prev.unwrap().row_count(), 2);
        // Old snapshot is unaffected; new lookups see the replacement.
        assert_eq!(old.row_count(), 2);
        assert_eq!(c.get("a").unwrap().row_count(), 3);
    }

    #[test]
    fn concurrent_readers() {
        let c = Arc::new(Catalog::new());
        c.register(t("a")).unwrap();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        assert_eq!(c.get("a").unwrap().row_count(), 2);
                    }
                });
            }
        });
    }
}
