//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//!
//! The durability layer checksums every WAL frame, superblock and data
//! blob so recovery can tell a torn or bit-flipped write from a good
//! one. Implemented from scratch (offline build, no `crc` crate) with a
//! compile-time lookup table; CRC-32 detects all single-bit errors and
//! every burst error up to 32 bits, which covers the fault models the
//! crash-matrix harness injects.

/// Byte-at-a-time lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = make_table();

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (init `0xFFFFFFFF`, final xor `0xFFFFFFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"the laws of data nature".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn zero_runs_are_distinguished_from_empty() {
        assert_ne!(crc32(&[0u8; 16]), crc32(&[0u8; 17]));
        assert_ne!(crc32(&[0u8; 16]), 0);
    }
}
