//! Column chunk ⇄ byte serialization for the paged store.
//!
//! A column is serialized into one contiguous byte stream — a small
//! header (type tag, row count, validity length) followed by the
//! validity words and the raw value data — and the pager splits that
//! stream across fixed-size pages. Little-endian throughout.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};

/// Type tags in the serialized header.
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Serialize a column into bytes.
pub fn encode_column(col: &Column) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(col.byte_size() + 64);
    let (len, words) = col.validity().to_parts();
    let tag = match col {
        Column::Int64 { .. } => TAG_I64,
        Column::Float64 { .. } => TAG_F64,
        Column::Str { .. } => TAG_STR,
        Column::Bool { .. } => TAG_BOOL,
    };
    buf.put_u8(tag);
    buf.put_u64_le(len as u64);
    buf.put_u64_le(words.len() as u64);
    for &w in words {
        buf.put_u64_le(w);
    }
    match col {
        Column::Int64 { data, .. } => {
            for &v in data {
                buf.put_i64_le(v);
            }
        }
        Column::Float64 { data, .. } => {
            for &v in data {
                buf.put_f64_le(v);
            }
        }
        Column::Str { data, .. } => {
            for s in data {
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
        Column::Bool { data, .. } => {
            let (blen, bwords) = data.to_parts();
            buf.put_u64_le(blen as u64);
            buf.put_u64_le(bwords.len() as u64);
            for &w in bwords {
                buf.put_u64_le(w);
            }
        }
    }
    buf.to_vec()
}

/// Deserialize a column from bytes produced by [`encode_column`].
pub fn decode_column(bytes: &[u8]) -> Result<Column> {
    let mut buf = bytes;
    let corrupt = |detail: &str| StorageError::CorruptData {
        codec: "page",
        detail: detail.to_string(),
    };
    if buf.remaining() < 17 {
        return Err(corrupt("truncated header"));
    }
    let tag = buf.get_u8();
    let len = buf.get_u64_le() as usize;
    let nwords = buf.get_u64_le() as usize;
    if buf.remaining() < nwords * 8 {
        return Err(corrupt("truncated validity words"));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(buf.get_u64_le());
    }
    if nwords != len.div_ceil(64) {
        return Err(corrupt("validity word count does not match row count"));
    }
    let validity = Bitmap::from_parts(len, words);
    match tag {
        TAG_I64 => {
            if buf.remaining() < len * 8 {
                return Err(corrupt("truncated i64 data"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(buf.get_i64_le());
            }
            Ok(Column::Int64 { data: data.into(), validity })
        }
        TAG_F64 => {
            if buf.remaining() < len * 8 {
                return Err(corrupt("truncated f64 data"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(buf.get_f64_le());
            }
            Ok(Column::Float64 { data: data.into(), validity })
        }
        TAG_STR => {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated string length"));
                }
                let slen = buf.get_u32_le() as usize;
                if buf.remaining() < slen {
                    return Err(corrupt("truncated string body"));
                }
                let s = std::str::from_utf8(&buf[..slen])
                    .map_err(|_| corrupt("invalid UTF-8 in string column"))?
                    .to_string();
                buf.advance(slen);
                data.push(s);
            }
            Ok(Column::Str { data: data.into(), validity })
        }
        TAG_BOOL => {
            if buf.remaining() < 16 {
                return Err(corrupt("truncated bool header"));
            }
            let blen = buf.get_u64_le() as usize;
            let bwordn = buf.get_u64_le() as usize;
            if buf.remaining() < bwordn * 8 {
                return Err(corrupt("truncated bool words"));
            }
            if blen != len || bwordn != blen.div_ceil(64) {
                return Err(corrupt("bool bitmap length mismatch"));
            }
            let mut bwords = Vec::with_capacity(bwordn);
            for _ in 0..bwordn {
                bwords.push(buf.get_u64_le());
            }
            Ok(Column::Bool { data: Bitmap::from_parts(blen, bwords), validity })
        }
        other => Err(corrupt(&format!("unknown type tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(c: &Column) {
        let bytes = encode_column(c);
        let back = decode_column(&bytes).unwrap();
        assert_eq!(&back, c);
    }

    #[test]
    fn roundtrips_all_types() {
        roundtrip(&Column::from_i64(vec![1, -5, i64::MAX, i64::MIN]));
        roundtrip(&Column::from_f64(vec![0.0, -1.5, f64::INFINITY, 1e-300]));
        roundtrip(&Column::from_str(vec!["".into(), "héllo".into(), "x".repeat(1000)]));
        roundtrip(&Column::from_bool(&[true, false, true, true]));
    }

    #[test]
    fn roundtrips_nulls() {
        roundtrip(&Column::from_f64_opt(vec![Some(1.0), None, Some(3.0)]));
        roundtrip(&Column::from_i64_opt(vec![None, None]));
    }

    #[test]
    fn roundtrips_nan_payload() {
        let c = Column::from_f64(vec![f64::NAN]);
        let bytes = encode_column(&c);
        let back = decode_column(&bytes).unwrap();
        assert!(back.f64_data().unwrap()[0].is_nan());
    }

    #[test]
    fn empty_column_roundtrips() {
        roundtrip(&Column::from_i64(vec![]));
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicking() {
        assert!(decode_column(&[]).is_err());
        assert!(decode_column(&[9, 0, 0]).is_err());
        // Valid header, truncated body.
        let good = encode_column(&Column::from_i64(vec![1, 2, 3]));
        assert!(decode_column(&good[..good.len() - 4]).is_err());
        // Unknown tag.
        let mut bad = good.clone();
        bad[0] = 99;
        assert!(decode_column(&bad).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = encode_column(&Column::from_str(vec!["ab".into()]));
        // Corrupt the string payload (last two bytes).
        let n = bytes.len();
        bytes[n - 2] = 0xFF;
        bytes[n - 1] = 0xFE;
        assert!(decode_column(&bytes).is_err());
    }
}
