//! Column chunk ⇄ byte serialization for the paged store.
//!
//! A column is serialized into one contiguous byte stream — a small
//! header (type tag, row count, validity length) followed by the
//! validity words and the raw value data — and the pager splits that
//! stream across fixed-size pages. Little-endian throughout.

use crate::bitmap::Bitmap;
use crate::column::Column;
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};

/// Type tags in the serialized header.
const TAG_I64: u8 = 1;
const TAG_F64: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL: u8 = 4;

/// Size of the fixed stream header (tag + row count + validity words).
pub const HEADER_BYTES: usize = 17;

/// Serialize a column into bytes.
pub fn encode_column(col: &Column) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(col.byte_size() + 64);
    let (len, words) = col.validity().to_parts();
    let tag = match col {
        Column::Int64 { .. } => TAG_I64,
        Column::Float64 { .. } => TAG_F64,
        Column::Str { .. } => TAG_STR,
        Column::Bool { .. } => TAG_BOOL,
    };
    buf.put_u8(tag);
    buf.put_u64_le(len as u64);
    buf.put_u64_le(words.len() as u64);
    for &w in words {
        buf.put_u64_le(w);
    }
    match col {
        Column::Int64 { data, .. } => {
            for &v in data {
                buf.put_i64_le(v);
            }
        }
        Column::Float64 { data, .. } => {
            for &v in data {
                buf.put_f64_le(v);
            }
        }
        Column::Str { data, .. } => {
            for s in data {
                buf.put_u32_le(s.len() as u32);
                buf.put_slice(s.as_bytes());
            }
        }
        Column::Bool { data, .. } => {
            let (blen, bwords) = data.to_parts();
            buf.put_u64_le(blen as u64);
            buf.put_u64_le(bwords.len() as u64);
            for &w in bwords {
                buf.put_u64_le(w);
            }
        }
    }
    buf.to_vec()
}

/// Deserialize a column from bytes produced by [`encode_column`].
pub fn decode_column(bytes: &[u8]) -> Result<Column> {
    let mut buf = bytes;
    let corrupt = |detail: &str| StorageError::CorruptData {
        codec: "page",
        detail: detail.to_string(),
    };
    if buf.remaining() < 17 {
        return Err(corrupt("truncated header"));
    }
    let tag = buf.get_u8();
    let len = buf.get_u64_le() as usize;
    let nwords = buf.get_u64_le() as usize;
    if buf.remaining() < nwords * 8 {
        return Err(corrupt("truncated validity words"));
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(buf.get_u64_le());
    }
    if nwords != len.div_ceil(64) {
        return Err(corrupt("validity word count does not match row count"));
    }
    let validity = Bitmap::from_parts(len, words);
    match tag {
        TAG_I64 => {
            if buf.remaining() < len * 8 {
                return Err(corrupt("truncated i64 data"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(buf.get_i64_le());
            }
            Ok(Column::Int64 { data: data.into(), validity })
        }
        TAG_F64 => {
            if buf.remaining() < len * 8 {
                return Err(corrupt("truncated f64 data"));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(buf.get_f64_le());
            }
            Ok(Column::Float64 { data: data.into(), validity })
        }
        TAG_STR => {
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                if buf.remaining() < 4 {
                    return Err(corrupt("truncated string length"));
                }
                let slen = buf.get_u32_le() as usize;
                if buf.remaining() < slen {
                    return Err(corrupt("truncated string body"));
                }
                let s = std::str::from_utf8(&buf[..slen])
                    .map_err(|_| corrupt("invalid UTF-8 in string column"))?
                    .to_string();
                buf.advance(slen);
                data.push(s);
            }
            Ok(Column::Str { data: data.into(), validity })
        }
        TAG_BOOL => {
            if buf.remaining() < 16 {
                return Err(corrupt("truncated bool header"));
            }
            let blen = buf.get_u64_le() as usize;
            let bwordn = buf.get_u64_le() as usize;
            if buf.remaining() < bwordn * 8 {
                return Err(corrupt("truncated bool words"));
            }
            if blen != len || bwordn != blen.div_ceil(64) {
                return Err(corrupt("bool bitmap length mismatch"));
            }
            let mut bwords = Vec::with_capacity(bwordn);
            for _ in 0..bwordn {
                bwords.push(buf.get_u64_le());
            }
            Ok(Column::Bool { data: Bitmap::from_parts(blen, bwords), validity })
        }
        other => Err(corrupt(&format!("unknown type tag {other}"))),
    }
}

/// The three byte ranges of an encoded fixed-width (Int64/Float64)
/// column stream needed to materialize rows `[row0, row1)`: header,
/// covering validity words, and value data. The pager reads exactly
/// these ranges — pages outside them are never touched, which is what
/// makes zone-map pruning zero-IO at page granularity.
pub fn partial_read_plan(
    total_rows: usize,
    row0: usize,
    row1: usize,
) -> [(usize, usize); 3] {
    debug_assert!(row0 <= row1 && row1 <= total_rows);
    let w0 = row0 / 64;
    let w1 = row1.div_ceil(64);
    let validity = (HEADER_BYTES + w0 * 8, HEADER_BYTES + w1 * 8);
    let data_start = HEADER_BYTES + total_rows.div_ceil(64) * 8;
    [
        (0, HEADER_BYTES),
        validity,
        (data_start + row0 * 8, data_start + row1 * 8),
    ]
}

/// Assemble rows `[row0, row1)` of a fixed-width column from the bytes
/// of a [`partial_read_plan`]. `header`/`validity`/`data` must be the
/// exact ranges the plan named.
pub fn decode_partial_column(
    header: &[u8],
    validity: &[u8],
    data: &[u8],
    total_rows: usize,
    row0: usize,
    row1: usize,
) -> Result<Column> {
    let corrupt = |detail: &str| StorageError::CorruptData {
        codec: "page",
        detail: detail.to_string(),
    };
    let mut h = header;
    if h.remaining() < HEADER_BYTES {
        return Err(corrupt("truncated header"));
    }
    let tag = h.get_u8();
    let len = h.get_u64_le() as usize;
    let nwords = h.get_u64_le() as usize;
    if len != total_rows || nwords != len.div_ceil(64) {
        return Err(corrupt("header does not match catalog row count"));
    }
    if tag != TAG_I64 && tag != TAG_F64 {
        return Err(StorageError::TypeMismatch {
            op: "partial column read",
            expected: "fixed-width numeric",
            got: if tag == TAG_STR { "Str" } else { "Bool/unknown" },
        });
    }
    let n = row1 - row0;
    let w0 = row0 / 64;
    let w1 = row1.div_ceil(64);
    if validity.len() != (w1.saturating_sub(w0)) * 8 {
        return Err(corrupt("validity byte range does not match plan"));
    }
    let mut v = validity;
    let mut words = Vec::with_capacity(w1.saturating_sub(w0));
    while v.remaining() >= 8 {
        words.push(v.get_u64_le());
    }
    let vbits = Bitmap::from_parts(words.len() * 64, words);
    let vslice = if n == 0 {
        Bitmap::new()
    } else {
        vbits.slice(row0 - w0 * 64, n)
    };
    if data.len() != n * 8 {
        return Err(corrupt("value byte range does not match plan"));
    }
    let mut d = data;
    if tag == TAG_I64 {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d.get_i64_le());
        }
        Ok(Column::Int64 { data: out.into(), validity: vslice })
    } else {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(d.get_f64_le());
        }
        Ok(Column::Float64 { data: out.into(), validity: vslice })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(c: &Column) {
        let bytes = encode_column(c);
        let back = decode_column(&bytes).unwrap();
        assert_eq!(&back, c);
    }

    #[test]
    fn roundtrips_all_types() {
        roundtrip(&Column::from_i64(vec![1, -5, i64::MAX, i64::MIN]));
        roundtrip(&Column::from_f64(vec![0.0, -1.5, f64::INFINITY, 1e-300]));
        roundtrip(&Column::from_str(vec!["".into(), "héllo".into(), "x".repeat(1000)]));
        roundtrip(&Column::from_bool(&[true, false, true, true]));
    }

    #[test]
    fn roundtrips_nulls() {
        roundtrip(&Column::from_f64_opt(vec![Some(1.0), None, Some(3.0)]));
        roundtrip(&Column::from_i64_opt(vec![None, None]));
    }

    #[test]
    fn roundtrips_nan_payload() {
        let c = Column::from_f64(vec![f64::NAN]);
        let bytes = encode_column(&c);
        let back = decode_column(&bytes).unwrap();
        assert!(back.f64_data().unwrap()[0].is_nan());
    }

    #[test]
    fn empty_column_roundtrips() {
        roundtrip(&Column::from_i64(vec![]));
    }

    #[test]
    fn corrupt_inputs_are_rejected_not_panicking() {
        assert!(decode_column(&[]).is_err());
        assert!(decode_column(&[9, 0, 0]).is_err());
        // Valid header, truncated body.
        let good = encode_column(&Column::from_i64(vec![1, 2, 3]));
        assert!(decode_column(&good[..good.len() - 4]).is_err());
        // Unknown tag.
        let mut bad = good.clone();
        bad[0] = 99;
        assert!(decode_column(&bad).is_err());
    }

    #[test]
    fn partial_decode_matches_full_decode() {
        let cols = [
            Column::from_i64((0..300).collect()),
            Column::from_f64((0..300).map(|i| i as f64 * 0.25).collect()),
            Column::from_f64_opt((0..300).map(|i| (i % 7 != 0).then_some(i as f64)).collect()),
        ];
        for c in &cols {
            let bytes = encode_column(c);
            for &(r0, r1) in &[(0, 300), (0, 0), (1, 2), (60, 70), (63, 65), (128, 300), (299, 300)] {
                let [h, v, d] = partial_read_plan(300, r0, r1);
                let got = decode_partial_column(
                    &bytes[h.0..h.1],
                    &bytes[v.0..v.1],
                    &bytes[d.0..d.1],
                    300,
                    r0,
                    r1,
                )
                .unwrap();
                let want = c.slice(r0, r1 - r0).unwrap();
                assert_eq!(got, want, "rows [{r0},{r1})");
            }
        }
    }

    #[test]
    fn partial_decode_rejects_strings_and_bad_headers() {
        let s = encode_column(&Column::from_str(vec!["a".into(), "b".into()]));
        let [h, v, d] = partial_read_plan(2, 0, 1);
        assert!(decode_partial_column(&s[h.0..h.1], &s[v.0..v.1], &s[d.0..d.1.min(s.len())], 2, 0, 1)
            .is_err());
        let i = encode_column(&Column::from_i64(vec![1, 2]));
        // Catalog says 3 rows but the stream was encoded with 2.
        assert!(decode_partial_column(&i[0..17], &[0u8; 8], &[0u8; 8], 3, 0, 1).is_err());
        assert!(decode_partial_column(&[], &[], &[], 0, 0, 0).is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut bytes = encode_column(&Column::from_str(vec!["ab".into()]));
        // Corrupt the string payload (last two bytes).
        let n = bytes.len();
        bytes[n - 2] = 0xFF;
        bytes[n - 1] = 0xFE;
        assert!(decode_column(&bytes).is_err());
    }
}
