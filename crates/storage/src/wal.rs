//! Write-ahead log + atomic-commit protocol: the durability layer.
//!
//! The paper's premise is that captured models *outlive* the fitting
//! session — "we can store the models in their source code form inside
//! the database" (Section 3). This module makes that survival a proved
//! property rather than an asserted one: a [`DurableStore`] keeps the
//! model-catalog image and paged tables on a [`BlockDevice`] behind a
//! commit protocol that recovers to exactly the pre- or post-commit
//! state from any crash the fault injector ([`crate::fault`]) can
//! produce.
//!
//! ## Device layout
//!
//! ```text
//! page 0, 1        superblock slots A/B (alternating by commit seq)
//! page 2..2+W      WAL region (W = wal_pages, one frame per page)
//! page 2+W..       data area: shadow-written blobs (column images,
//!                  catalog images, directory images); never overwritten
//! ```
//!
//! ## Commit protocol
//!
//! 1. New data (column blobs, catalog image, directory image) is
//!    shadow-written to freshly allocated pages; live pages are never
//!    overwritten, so a torn data write can only damage the in-flight
//!    transaction.
//! 2. The new *root* (commit seq, catalog extent, directory extent —
//!    each extent checksummed) is written to the WAL as checksummed
//!    frames, terminated by a commit frame carrying the CRC of the
//!    whole record. **The commit-frame write is the commit point.**
//! 3. The root is written to the superblock slot `seq % 2`; the other
//!    slot still holds the previous root, so a torn superblock write
//!    is always survivable.
//!
//! ## Recovery ([`DurableStore::recover`])
//!
//! Pick the valid superblock with the highest seq; scan the WAL. A
//! complete, checksummed WAL record newer than the superblock is
//! **replayed** (the crash hit between commit point and superblock
//! write); a torn or incomplete WAL tail is **rolled back** (discarded
//! — its shadow pages were never reachable). Either way the store
//! opens to exactly one committed state.

use crate::checksum::crc32;
use crate::column::Column;
use crate::error::{Result, StorageError};
use crate::io::{BlockDevice, IoStats};
use crate::page::{decode_column, encode_column};
use crate::schema::{DataType, Field, Schema};
use crate::table::Table;
use lawsdb_obs::{event, global_metrics};
use std::collections::BTreeMap;

const SB_MAGIC: &[u8; 4] = b"LWSB";
const WAL_MAGIC: &[u8; 4] = b"LWFR";
const FORMAT_VERSION: u32 = 1;
const SB_HEADER: usize = 16; // crc + magic + format + root_len
const FRAME_HEADER: usize = 20; // crc + magic + seq + kind + index + len
const FRAME_DATA: u8 = 1;
const FRAME_COMMIT: u8 = 2;

/// Location and checksum of one shadow-written byte blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Extent {
    /// First page id (meaningless when `byte_len == 0`).
    pub start: u64,
    /// Exact byte length (the final page is partially used).
    pub byte_len: u64,
    /// CRC-32 of the blob's bytes.
    pub crc: u32,
}

impl Extent {
    fn pages(&self, page_size: usize) -> u64 {
        self.byte_len.div_ceil(page_size as u64)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&self.byte_len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<Extent> {
        Ok(Extent {
            start: get_u64(buf, pos)?,
            byte_len: get_u64(buf, pos)?,
            crc: get_u32(buf, pos)?,
        })
    }
}

/// The committed root: everything needed to reach all live data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Root {
    seq: u64,
    catalog: Option<Extent>,
    directory: Option<Extent>,
}

/// What [`DurableStore::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// The device held no committed state; a fresh store was formatted.
    pub formatted: bool,
    /// A committed-but-not-superblocked WAL record was replayed.
    pub replayed: bool,
    /// A torn or incomplete WAL tail was discarded.
    pub rolled_back: bool,
    /// Commit sequence the store opened at.
    pub seq: u64,
}

/// One durably stored table: schema + checksummed column extents.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTable {
    /// Schema in column order.
    pub schema: Schema,
    /// Row count.
    pub rows: usize,
    /// One extent per column.
    pub columns: Vec<Extent>,
}

/// Crash-safe store for the model catalog and paged tables.
///
/// Construct with [`DurableStore::new`], then call
/// [`DurableStore::recover`] before anything else — it formats an
/// empty device, replays or rolls back a crashed one, and is the only
/// entry point after a crash. Every mutating call commits one atomic
/// transaction.
#[derive(Debug)]
pub struct DurableStore<D: BlockDevice> {
    dev: D,
    wal_pages: usize,
    opened: bool,
    seq: u64,
    catalog: Option<Extent>,
    tables: BTreeMap<String, StoredTable>,
}

impl<D: BlockDevice> DurableStore<D> {
    /// Wrap a device. Performs no IO; call [`DurableStore::recover`]
    /// next. `wal_pages` bounds the WAL region (8 is plenty — a root
    /// record is ~50 bytes).
    pub fn new(device: D, wal_pages: usize) -> DurableStore<D> {
        assert!(wal_pages >= 2, "need at least a data and a commit frame");
        DurableStore {
            dev: device,
            wal_pages,
            opened: false,
            seq: 0,
            catalog: None,
            tables: BTreeMap::new(),
        }
    }

    /// Pages reserved ahead of the data area.
    fn reserved(&self) -> usize {
        2 + self.wal_pages
    }

    /// Open the store: format an empty device, or recover a used one by
    /// replaying a committed WAL record / rolling back a torn one. Safe
    /// to call on any surviving disk image; until it succeeds, all data
    /// operations refuse.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        let ps = self.dev.page_size();
        if ps < 128 {
            return Err(StorageError::Io {
                op: "open",
                page: 0,
                detail: format!("durable store needs pages of at least 128 bytes, got {ps}"),
            });
        }
        let mut report = RecoveryReport::default();
        while self.dev.page_count() < self.reserved() {
            self.dev.allocate();
        }
        // Best committed superblock.
        let mut best: Option<Root> = None;
        for slot in 0..2u64 {
            if let Some(root) = self.read_superblock(slot)? {
                if best.as_ref().is_none_or(|b| root.seq > b.seq) {
                    best = Some(root);
                }
            }
        }
        // The WAL may hold a newer committed record (crash between
        // commit point and superblock write) or a torn tail.
        let best_seq = best.as_ref().map_or(0, |r| r.seq);
        match self.scan_wal()? {
            WalScan::Committed(root) if best.is_none() || root.seq > best_seq => {
                report.replayed = true;
                self.write_superblock(&root)?;
                best = Some(root);
            }
            WalScan::Committed(_) => {} // already superblocked
            WalScan::Torn => report.rolled_back = true,
            WalScan::Empty => {}
        }
        match best {
            Some(root) => {
                self.tables = match &root.directory {
                    Some(ext) => decode_directory(&self.read_extent(ext)?)?,
                    None => BTreeMap::new(),
                };
                self.catalog = root.catalog;
                self.seq = root.seq;
            }
            None => {
                // Nothing ever committed (fresh device, or a crash
                // mid-format): format from scratch.
                report.formatted = true;
                self.seq = 0;
                self.catalog = None;
                self.tables = BTreeMap::new();
                self.write_superblock(&Root::default())?;
            }
        }
        self.opened = true;
        report.seq = self.seq;
        event!(
            "storage.wal.recovered",
            seq = report.seq,
            formatted = report.formatted,
            replayed = report.replayed,
            rolled_back = report.rolled_back
        );
        let reg = global_metrics();
        reg.counter("lawsdb_storage_wal_recoveries").inc();
        if report.replayed {
            reg.counter("lawsdb_storage_wal_replays").inc();
        }
        if report.rolled_back {
            reg.counter("lawsdb_storage_wal_rollbacks").inc();
        }
        Ok(report)
    }

    /// Commit sequence of the opened store.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Names of all stored tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Metadata of one stored table.
    pub fn stored_table(&self, name: &str) -> Result<&StoredTable> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::TableNotFound { name: name.to_string() })
    }

    /// Durably store a table (one atomic commit).
    pub fn store_table(&mut self, table: &Table) -> Result<()> {
        self.ensure_open()?;
        if self.tables.contains_key(table.name()) {
            return Err(StorageError::TableExists { name: table.name().to_string() });
        }
        let stored = self.write_table_blobs(table)?;
        self.tables.insert(table.name().to_string(), stored);
        self.commit()
    }

    /// Replace a stored table (or store it fresh) in one atomic commit.
    /// The old version's pages are abandoned, exactly like
    /// [`crate::pager::Pager::replace_table`].
    pub fn replace_table(&mut self, table: &Table) -> Result<()> {
        self.ensure_open()?;
        let stored = self.write_table_blobs(table)?;
        self.tables.insert(table.name().to_string(), stored);
        self.commit()
    }

    /// Drop a stored table in one atomic commit.
    pub fn drop_table(&mut self, name: &str) -> Result<()> {
        self.ensure_open()?;
        if self.tables.remove(name).is_none() {
            return Err(StorageError::TableNotFound { name: name.to_string() });
        }
        self.commit()
    }

    /// Read a stored table back, verifying every column's checksum.
    pub fn read_table(&self, name: &str) -> Result<Table> {
        self.ensure_open()?;
        let st = self.stored_table(name)?;
        let mut cols = Vec::with_capacity(st.columns.len());
        for ext in &st.columns {
            cols.push(decode_column(&self.read_extent(ext)?)?);
        }
        Table::new(name.to_string(), st.schema.clone(), cols)
    }

    /// Read one column of a stored table, checksum-verified. Columns
    /// live in separate extents, so corruption in one column leaves the
    /// others readable — this is the hook `lawsdb-core`'s resilient
    /// reader uses to salvage a table around a quarantined page.
    pub fn read_column(&self, name: &str, index: usize) -> Result<Column> {
        self.ensure_open()?;
        let st = self.stored_table(name)?;
        let ext = st.columns.get(index).ok_or_else(|| StorageError::ColumnNotFound {
            name: format!("{name}[{index}]"),
        })?;
        decode_column(&self.read_extent(ext)?)
    }

    /// Durably store the (opaque) model-catalog image in one atomic
    /// commit. `lawsdb-models` writes its `LAWM` serialization here.
    pub fn put_catalog(&mut self, bytes: &[u8]) -> Result<()> {
        self.ensure_open()?;
        let ext = self.write_blob(bytes)?;
        self.catalog = Some(ext);
        self.commit()
    }

    /// The stored catalog image, checksum-verified; `None` if no
    /// catalog was ever stored.
    pub fn catalog(&self) -> Result<Option<Vec<u8>>> {
        self.ensure_open()?;
        match &self.catalog {
            Some(ext) => Ok(Some(self.read_extent(ext)?)),
            None => Ok(None),
        }
    }

    /// Device access counters.
    pub fn stats(&self) -> IoStats {
        self.dev.stats()
    }

    /// Reset the device counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.dev.reset_stats()
    }

    /// The wrapped device.
    pub fn device(&self) -> &D {
        &self.dev
    }

    /// Surrender the device (e.g. to re-open after a simulated crash).
    pub fn into_device(self) -> D {
        self.dev
    }

    // ---- internals ----

    fn ensure_open(&self) -> Result<()> {
        if self.opened {
            Ok(())
        } else {
            Err(StorageError::Io {
                op: "open",
                page: 0,
                detail: "store not recovered; call recover() first".to_string(),
            })
        }
    }

    /// Shadow-write all columns of `table`, returning its metadata.
    fn write_table_blobs(&mut self, table: &Table) -> Result<StoredTable> {
        let mut columns = Vec::with_capacity(table.columns().len());
        for col in table.columns() {
            let bytes = encode_column(col);
            columns.push(self.write_blob(&bytes)?);
        }
        Ok(StoredTable { schema: table.schema().clone(), rows: table.row_count(), columns })
    }

    /// Shadow-write one blob to freshly allocated contiguous pages.
    fn write_blob(&mut self, bytes: &[u8]) -> Result<Extent> {
        let ps = self.dev.page_size();
        let ext = Extent { start: self.dev.page_count() as u64, byte_len: bytes.len() as u64, crc: crc32(bytes) };
        for chunk in bytes.chunks(ps) {
            let id = self.dev.allocate();
            self.dev.write_page(id, chunk)?;
        }
        Ok(ext)
    }

    /// Read a blob back and verify its checksum.
    fn read_extent(&self, ext: &Extent) -> Result<Vec<u8>> {
        let ps = self.dev.page_size();
        // Cap the preallocation: `byte_len` is checksummed upstream, but
        // an implausible value must degrade to an error, not an abort.
        let mut out = Vec::with_capacity(ext.byte_len.min(1 << 20) as usize);
        for i in 0..ext.pages(ps) {
            let page = self.dev.read_page_owned(ext.start + i)?;
            let want = (ext.byte_len - i * ps as u64).min(ps as u64) as usize;
            out.extend_from_slice(&page[..want]);
        }
        if crc32(&out) != ext.crc {
            event!(
                "storage.page.quarantine",
                page = ext.start,
                expected = ext.crc,
                got = crc32(&out)
            );
            return Err(StorageError::CorruptData {
                codec: "blob",
                detail: format!(
                    "checksum mismatch reading {} bytes at page {}",
                    ext.byte_len, ext.start
                ),
            });
        }
        Ok(out)
    }

    /// One atomic transaction: shadow-write the directory, log the new
    /// root to the WAL (commit point), then update the superblock.
    fn commit(&mut self) -> Result<()> {
        let dir = encode_directory(&self.tables);
        let dir_ext = self.write_blob(&dir)?;
        let root = Root {
            seq: self.seq + 1,
            catalog: self.catalog.clone(),
            directory: Some(dir_ext),
        };
        self.write_wal(&root)?; // ← commit point
        self.seq = root.seq;
        global_metrics().counter("lawsdb_storage_wal_commits").inc();
        event!("storage.wal.commit", seq = self.seq);
        self.write_superblock(&root)
    }

    fn write_wal(&mut self, root: &Root) -> Result<()> {
        let ps = self.dev.page_size();
        let record = encode_root(root);
        let cap = ps - FRAME_HEADER;
        let chunks: Vec<&[u8]> = record.chunks(cap).collect();
        if chunks.len() + 1 > self.wal_pages {
            return Err(StorageError::Io {
                op: "write",
                page: 2,
                detail: format!("root record of {} bytes overflows the WAL", record.len()),
            });
        }
        for (i, chunk) in chunks.iter().enumerate() {
            let frame = encode_frame(root.seq, FRAME_DATA, i as u8, chunk);
            self.dev.write_page(2 + i as u64, &frame)?;
        }
        let commit =
            encode_frame(root.seq, FRAME_COMMIT, chunks.len() as u8, &crc32(&record).to_le_bytes());
        self.dev.write_page(2 + chunks.len() as u64, &commit)
    }

    fn scan_wal(&self) -> Result<WalScan> {
        let mut record = Vec::new();
        let mut seq = 0u64;
        for i in 0..self.wal_pages {
            let page = self.dev.read_page_owned(2 + i as u64)?;
            let Some(frame) = decode_frame(&page) else {
                // Frame i is invalid. An untouched (all-zero) first
                // page means the WAL was never written; anything else
                // is a torn in-flight record.
                return if i == 0 && page.iter().all(|&b| b == 0) {
                    Ok(WalScan::Empty)
                } else {
                    Ok(WalScan::Torn)
                };
            };
            if i == 0 {
                seq = frame.seq;
            }
            if frame.seq != seq || frame.index as usize != i {
                return Ok(WalScan::Torn); // stale leftover from an older record
            }
            match frame.kind {
                FRAME_DATA => record.extend_from_slice(frame.payload),
                FRAME_COMMIT => {
                    let want = frame.payload.get(..4).map(|b| {
                        u32::from_le_bytes(b.try_into().expect("4 bytes"))
                    });
                    if want != Some(crc32(&record)) {
                        return Ok(WalScan::Torn);
                    }
                    let mut pos = 0;
                    let root = decode_root(&record, &mut pos)?;
                    if root.seq != seq {
                        return Ok(WalScan::Torn);
                    }
                    return Ok(WalScan::Committed(root));
                }
                _ => return Ok(WalScan::Torn),
            }
        }
        // Ran out of WAL pages without a commit frame.
        Ok(WalScan::Torn)
    }

    fn write_superblock(&mut self, root: &Root) -> Result<()> {
        let body = encode_root(root);
        let mut page = Vec::with_capacity(SB_HEADER + body.len());
        page.extend_from_slice(&[0; 4]); // crc placeholder
        page.extend_from_slice(SB_MAGIC);
        page.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        page.extend_from_slice(&(body.len() as u32).to_le_bytes());
        page.extend_from_slice(&body);
        let crc = crc32(&page[4..]).to_le_bytes();
        page[..4].copy_from_slice(&crc);
        self.dev.write_page(root.seq % 2, &page)
    }

    /// Parse one superblock slot; `Ok(None)` when the slot is torn,
    /// unwritten or otherwise invalid (never an error — the other slot
    /// or the WAL decides).
    fn read_superblock(&self, slot: u64) -> Result<Option<Root>> {
        let page = self.dev.read_page_owned(slot)?;
        if page.len() < SB_HEADER || &page[4..8] != SB_MAGIC {
            return Ok(None);
        }
        let stored = u32::from_le_bytes(page[..4].try_into().expect("4 bytes"));
        let format = u32::from_le_bytes(page[8..12].try_into().expect("4 bytes"));
        let root_len = u32::from_le_bytes(page[12..16].try_into().expect("4 bytes")) as usize;
        if format != FORMAT_VERSION || SB_HEADER + root_len > page.len() {
            return Ok(None);
        }
        if crc32(&page[4..SB_HEADER + root_len]) != stored {
            return Ok(None);
        }
        let mut pos = 0;
        match decode_root(&page[SB_HEADER..SB_HEADER + root_len], &mut pos) {
            Ok(root) => Ok(Some(root)),
            Err(_) => Ok(None),
        }
    }
}

enum WalScan {
    /// No WAL record present.
    Empty,
    /// A complete, checksummed record.
    Committed(Root),
    /// An incomplete or corrupt record — discard.
    Torn,
}

struct Frame<'a> {
    seq: u64,
    kind: u8,
    index: u8,
    payload: &'a [u8],
}

fn encode_frame(seq: u64, kind: u8, index: u8, payload: &[u8]) -> Vec<u8> {
    let mut page = Vec::with_capacity(FRAME_HEADER + payload.len());
    page.extend_from_slice(&[0; 4]); // crc placeholder
    page.extend_from_slice(WAL_MAGIC);
    page.extend_from_slice(&seq.to_le_bytes());
    page.push(kind);
    page.push(index);
    page.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    page.extend_from_slice(payload);
    let crc = crc32(&page[4..]).to_le_bytes();
    page[..4].copy_from_slice(&crc);
    page
}

fn decode_frame(page: &[u8]) -> Option<Frame<'_>> {
    if page.len() < FRAME_HEADER || &page[4..8] != WAL_MAGIC {
        return None;
    }
    let stored = u32::from_le_bytes(page[..4].try_into().expect("4 bytes"));
    let seq = u64::from_le_bytes(page[8..16].try_into().expect("8 bytes"));
    let kind = page[16];
    let index = page[17];
    let len = u16::from_le_bytes(page[18..20].try_into().expect("2 bytes")) as usize;
    if FRAME_HEADER + len > page.len() {
        return None;
    }
    if crc32(&page[4..FRAME_HEADER + len]) != stored {
        return None;
    }
    Some(Frame { seq, kind, index, payload: &page[FRAME_HEADER..FRAME_HEADER + len] })
}

fn encode_root(root: &Root) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&root.seq.to_le_bytes());
    for ext in [&root.catalog, &root.directory] {
        match ext {
            None => out.push(0),
            Some(e) => {
                out.push(1);
                e.encode(&mut out);
            }
        }
    }
    out
}

fn decode_root(buf: &[u8], pos: &mut usize) -> Result<Root> {
    let seq = get_u64(buf, pos)?;
    let mut exts = [None, None];
    for slot in &mut exts {
        *slot = match get_u8(buf, pos)? {
            0 => None,
            1 => Some(Extent::decode(buf, pos)?),
            other => {
                return Err(corrupt(format!("bad extent tag {other}")));
            }
        };
    }
    let [catalog, directory] = exts;
    Ok(Root { seq, catalog, directory })
}

// ---- table-directory serialization ----

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Str => 3,
        DataType::Bool => 4,
    }
}

fn tag_dtype(tag: u8) -> Result<DataType> {
    match tag {
        1 => Ok(DataType::Int64),
        2 => Ok(DataType::Float64),
        3 => Ok(DataType::Str),
        4 => Ok(DataType::Bool),
        other => Err(corrupt(format!("unknown data-type tag {other}"))),
    }
}

fn encode_directory(tables: &BTreeMap<String, StoredTable>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for (name, t) in tables {
        put_str(&mut out, name);
        out.extend_from_slice(&(t.rows as u64).to_le_bytes());
        out.extend_from_slice(&(t.schema.len() as u32).to_le_bytes());
        for (field, ext) in t.schema.fields().iter().zip(&t.columns) {
            put_str(&mut out, &field.name);
            out.push(dtype_tag(field.data_type));
            out.push(field.nullable as u8);
            ext.encode(&mut out);
        }
    }
    out
}

fn decode_directory(buf: &[u8]) -> Result<BTreeMap<String, StoredTable>> {
    let mut pos = 0;
    let n_tables = get_u32(buf, &mut pos)? as usize;
    if n_tables > buf.len() {
        return Err(corrupt("implausible table count".to_string()));
    }
    let mut tables = BTreeMap::new();
    for _ in 0..n_tables {
        let name = get_str(buf, &mut pos)?;
        let rows = get_u64(buf, &mut pos)? as usize;
        let n_fields = get_u32(buf, &mut pos)? as usize;
        if n_fields > buf.len() {
            return Err(corrupt("implausible field count".to_string()));
        }
        let mut fields = Vec::with_capacity(n_fields);
        let mut columns = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let fname = get_str(buf, &mut pos)?;
            let dt = tag_dtype(get_u8(buf, &mut pos)?)?;
            let nullable = get_u8(buf, &mut pos)? != 0;
            fields.push(if nullable {
                Field::nullable(fname, dt)
            } else {
                Field::new(fname, dt)
            });
            columns.push(Extent::decode(buf, &mut pos)?);
        }
        tables.insert(name, StoredTable { schema: Schema::new(fields), rows, columns });
    }
    Ok(tables)
}

// ---- bounds-checked little-endian primitives ----

fn corrupt(detail: String) -> StorageError {
    StorageError::CorruptData { codec: "wal", detail }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_u32(buf, pos)? as usize;
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("truncated string".to_string()))?;
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| corrupt("invalid UTF-8".to_string()))?
        .to_string();
    *pos = end;
    Ok(s)
}

fn get_u8(buf: &[u8], pos: &mut usize) -> Result<u8> {
    let v = *buf.get(*pos).ok_or_else(|| corrupt("truncated u8".to_string()))?;
    *pos += 1;
    Ok(v)
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let end = pos
        .checked_add(4)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("truncated u32".to_string()))?;
    let v = u32::from_le_bytes(buf[*pos..end].try_into().expect("4 bytes"));
    *pos = end;
    Ok(v)
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt("truncated u64".to_string()))?;
    let v = u64::from_le_bytes(buf[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimulatedDevice;
    use crate::table::TableBuilder;

    fn demo_table(name: &str, rows: usize) -> Table {
        let mut b = TableBuilder::new(name);
        b.add_i64("id", (0..rows as i64).collect());
        b.add_f64("v", (0..rows).map(|i| i as f64 * 0.25).collect());
        b.build().unwrap()
    }

    fn open(ps: usize) -> DurableStore<SimulatedDevice> {
        let mut s = DurableStore::new(SimulatedDevice::new(ps), 8);
        assert!(s.recover().unwrap().formatted);
        s
    }

    fn reopen(store: DurableStore<SimulatedDevice>) -> (DurableStore<SimulatedDevice>, RecoveryReport) {
        let mut s = DurableStore::new(store.into_device(), 8);
        let r = s.recover().unwrap();
        (s, r)
    }

    #[test]
    fn table_survives_reopen() {
        let mut s = open(256);
        let t = demo_table("demo", 100);
        s.store_table(&t).unwrap();
        let (s, report) = reopen(s);
        assert!(!report.formatted && !report.replayed && !report.rolled_back);
        assert_eq!(report.seq, 1);
        assert_eq!(s.read_table("demo").unwrap(), t);
    }

    #[test]
    fn catalog_blob_survives_reopen() {
        let mut s = open(256);
        assert_eq!(s.catalog().unwrap(), None);
        s.put_catalog(b"LAWM catalog image").unwrap();
        let (s, _) = reopen(s);
        assert_eq!(s.catalog().unwrap().as_deref(), Some(&b"LAWM catalog image"[..]));
    }

    #[test]
    fn multiple_commits_alternate_superblocks_and_keep_latest() {
        let mut s = open(256);
        for i in 0..5u8 {
            s.put_catalog(&[i; 37]).unwrap();
        }
        assert_eq!(s.seq(), 5);
        let (s, report) = reopen(s);
        assert_eq!(report.seq, 5);
        assert_eq!(s.catalog().unwrap(), Some(vec![4u8; 37]));
    }

    #[test]
    fn replace_and_drop_are_atomic_commits() {
        let mut s = open(256);
        s.store_table(&demo_table("a", 10)).unwrap();
        s.store_table(&demo_table("b", 10)).unwrap();
        assert!(s.store_table(&demo_table("a", 5)).is_err(), "duplicate refused");
        s.replace_table(&demo_table("a", 20)).unwrap();
        s.drop_table("b").unwrap();
        assert!(s.drop_table("zz").is_err());
        let (s, report) = reopen(s);
        assert_eq!(report.seq, 4);
        assert_eq!(s.table_names(), vec!["a".to_string()]);
        assert_eq!(s.read_table("a").unwrap().row_count(), 20);
    }

    #[test]
    fn wal_replay_covers_missing_superblock() {
        // Commit, then manually roll the superblock back to the
        // previous root — recovery must replay from the WAL.
        let mut s = open(256);
        s.put_catalog(b"v1").unwrap();
        let old_root = Root { seq: s.seq(), catalog: s.catalog.clone(), directory: None };
        s.put_catalog(b"v2").unwrap(); // seq 2, superblock slot 0
        // Clobber slot 0 with the seq-1 root again (as if the slot-0
        // write never happened). Slot 1 holds seq 1 as well.
        let mut fake = Root { seq: 1, ..old_root };
        fake.directory = None;
        let body = encode_root(&fake);
        let mut page = vec![0u8; 16 + body.len()];
        page[4..8].copy_from_slice(SB_MAGIC);
        page[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        page[12..16].copy_from_slice(&(body.len() as u32).to_le_bytes());
        page[16..].copy_from_slice(&body);
        let crc = crc32(&page[4..]).to_le_bytes();
        page[..4].copy_from_slice(&crc);
        let mut dev = s.into_device();
        dev.write_page(0, &page).unwrap();
        let mut s = DurableStore::new(dev, 8);
        let report = s.recover().unwrap();
        assert!(report.replayed, "{report:?}");
        assert_eq!(report.seq, 2);
        assert_eq!(s.catalog().unwrap().as_deref(), Some(&b"v2"[..]));
    }

    #[test]
    fn torn_wal_tail_rolls_back() {
        let mut s = open(256);
        s.put_catalog(b"committed").unwrap();
        let mut dev = s.into_device();
        // Scribble a half-written frame for a phantom seq-2 txn.
        let mut junk = encode_frame(2, FRAME_DATA, 0, b"half-written root record");
        let n = junk.len();
        junk.truncate(n - 5); // torn: crc no longer matches
        dev.write_page(2, &junk).unwrap();
        let mut s = DurableStore::new(dev, 8);
        let report = s.recover().unwrap();
        assert!(report.rolled_back, "{report:?}");
        assert_eq!(report.seq, 1, "pre-commit state");
        assert_eq!(s.catalog().unwrap().as_deref(), Some(&b"committed"[..]));
    }

    #[test]
    fn operations_refuse_before_recover() {
        let mut s: DurableStore<SimulatedDevice> =
            DurableStore::new(SimulatedDevice::new(256), 8);
        assert!(s.store_table(&demo_table("t", 3)).is_err());
        assert!(s.catalog().is_err());
        assert!(s.read_table("t").is_err());
    }

    #[test]
    fn tiny_pages_are_refused() {
        let mut s = DurableStore::new(SimulatedDevice::new(64), 8);
        assert!(s.recover().is_err());
    }

    #[test]
    fn corrupt_data_page_is_detected_by_checksum() {
        let mut s = open(256);
        s.put_catalog(&[0xAB; 300]).unwrap();
        let ext = s.catalog.clone().unwrap();
        let mut dev = s.into_device();
        let mut page = dev.peek_page(ext.start).unwrap().to_vec();
        page[17] ^= 0x40;
        dev.write_page(ext.start, &page).unwrap();
        let mut s = DurableStore::new(dev, 8);
        s.recover().unwrap();
        let err = s.catalog().unwrap_err();
        assert!(matches!(err, StorageError::CorruptData { codec: "blob", .. }), "{err}");
    }

    #[test]
    fn string_and_null_columns_roundtrip_durably() {
        let mut b = TableBuilder::new("mixed");
        b.add_str("s", vec!["α".into(), "".into(), "xyz".into()]);
        b.add_f64_opt("v", vec![Some(1.5), None, Some(-2.0)]);
        let t = b.build().unwrap();
        let mut s = open(128);
        s.store_table(&t).unwrap();
        let (s, _) = reopen(s);
        assert_eq!(s.read_table("mixed").unwrap(), t);
    }
}
