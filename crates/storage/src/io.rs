//! Simulated block IO device with exact access accounting.
//!
//! The paper frames "zero-IO scans" as turning an IO-bound problem into
//! a CPU-bound one (Section 4.1). The authors' substrate was a disk;
//! ours is a device model: an in-memory block store that *counts* every
//! page read/write and converts the counts into simulated elapsed time
//! under a configurable latency/bandwidth profile. That makes the E5
//! experiment exact and reproducible — the IO cost of a scan is
//! `pages × latency + bytes / bandwidth` by construction, and a
//! model-backed answer is *provably* zero-IO because its page counter
//! stays at zero.

use std::sync::atomic::{AtomicU64, Ordering};

/// Device performance profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Per-operation latency in microseconds (seek/queue cost).
    pub latency_us: f64,
    /// Sustained bandwidth in MB/s.
    pub bandwidth_mb_s: f64,
}

impl DeviceProfile {
    /// A 2015-era spinning disk: ~8 ms seek, 150 MB/s sequential.
    pub fn spinning_disk() -> DeviceProfile {
        DeviceProfile { latency_us: 8000.0, bandwidth_mb_s: 150.0 }
    }

    /// A SATA SSD: ~80 µs, 500 MB/s.
    pub fn sata_ssd() -> DeviceProfile {
        DeviceProfile { latency_us: 80.0, bandwidth_mb_s: 500.0 }
    }

    /// An NVMe SSD: ~20 µs, 3 GB/s.
    pub fn nvme_ssd() -> DeviceProfile {
        DeviceProfile { latency_us: 20.0, bandwidth_mb_s: 3000.0 }
    }

    /// Simulated time to transfer `bytes` in `ops` operations, in
    /// microseconds.
    pub fn cost_us(&self, ops: u64, bytes: u64) -> f64 {
        ops as f64 * self.latency_us + bytes as f64 / self.bandwidth_mb_s
    }
}

/// Cumulative access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read from the device (cache misses only).
    pub pages_read: u64,
    /// Pages written.
    pub pages_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Reads satisfied by the page cache (no device access).
    pub cache_hits: u64,
}

impl IoStats {
    /// Simulated elapsed device time under a profile, in microseconds.
    pub fn simulated_us(&self, profile: &DeviceProfile) -> f64 {
        profile.cost_us(self.pages_read + self.pages_written, self.bytes_read + self.bytes_written)
    }
}

/// The block-device abstraction the pager and the durability layer
/// write through.
///
/// [`SimulatedDevice`] is the plain implementation;
/// [`crate::fault::FaultyDevice`] wraps one and injects scheduled
/// faults, which is how the crash-matrix harness exercises every
/// recovery path without a real disk.
pub trait BlockDevice {
    /// Page size in bytes.
    fn page_size(&self) -> usize;

    /// Number of pages ever allocated.
    fn page_count(&self) -> usize;

    /// Allocate a fresh zeroed page, returning its id. Allocation is
    /// metadata (no media access) and is not a fault point.
    fn allocate(&mut self) -> u64;

    /// Write a full page; `data` longer than the page size is an
    /// error, shorter data is zero-padded.
    fn write_page(&mut self, id: u64, data: &[u8]) -> crate::Result<()>;

    /// Read a full page into an owned buffer (counted as one device
    /// operation).
    fn read_page_owned(&self, id: u64) -> crate::Result<Vec<u8>>;

    /// Current access counters.
    fn stats(&self) -> IoStats;

    /// Reset all counters (between benchmark phases).
    fn reset_stats(&self);
}

/// An in-memory "device" of fixed-size pages with atomic counters.
///
/// Thread-safe for counting; page content operations take `&mut self`
/// because the pager is the only writer.
#[derive(Debug)]
pub struct SimulatedDevice {
    page_size: usize,
    pages: Vec<Vec<u8>>,
    pages_read: AtomicU64,
    pages_written: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

impl SimulatedDevice {
    /// New empty device with the given page size (bytes).
    pub fn new(page_size: usize) -> SimulatedDevice {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        SimulatedDevice {
            page_size,
            pages: Vec::new(),
            pages_read: AtomicU64::new(0),
            pages_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of pages ever allocated.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Allocate a fresh zeroed page, returning its id.
    pub fn allocate(&mut self) -> u64 {
        self.pages.push(vec![0; self.page_size]);
        (self.pages.len() - 1) as u64
    }

    /// Write a full page. `data` longer than the page size is an error;
    /// shorter data is zero-padded.
    pub fn write_page(&mut self, id: u64, data: &[u8]) -> crate::Result<()> {
        let page = self
            .pages
            .get_mut(id as usize)
            .ok_or(crate::StorageError::PageNotFound { page: id })?;
        if data.len() > page.len() {
            return Err(crate::StorageError::Io {
                op: "write",
                page: id,
                detail: format!("write of {} bytes exceeds page size {}", data.len(), page.len()),
            });
        }
        page[..data.len()].copy_from_slice(data);
        page[data.len()..].fill(0);
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(self.page_size as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Read a full page (counted as one device operation).
    pub fn read_page(&self, id: u64) -> crate::Result<&[u8]> {
        let page = self
            .pages
            .get(id as usize)
            .ok_or(crate::StorageError::PageNotFound { page: id })?;
        self.pages_read.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(self.page_size as u64, Ordering::Relaxed);
        Ok(page)
    }

    /// Uncounted raw view of a page's current content, if allocated.
    /// Support for fault injection (torn writes must mix old and new
    /// bytes) and post-mortem inspection — never a data path.
    pub fn peek_page(&self, id: u64) -> Option<&[u8]> {
        self.pages.get(id as usize).map(Vec::as_slice)
    }

    /// Uncounted mutable access to a page's raw content — the
    /// fault-injection twin of [`peek_page`](SimulatedDevice::peek_page),
    /// letting a harness corrupt stored bytes behind the pager's back.
    /// Never a data path.
    pub fn poke_page(&mut self, id: u64) -> Option<&mut [u8]> {
        self.pages.get_mut(id as usize).map(Vec::as_mut_slice)
    }

    /// Current counters (cache hits are tracked by the pager, not here).
    pub fn stats(&self) -> IoStats {
        IoStats {
            pages_read: self.pages_read.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            cache_hits: 0,
        }
    }

    /// Reset all counters (between benchmark phases).
    pub fn reset_stats(&self) {
        self.pages_read.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
    }
}

impl BlockDevice for SimulatedDevice {
    fn page_size(&self) -> usize {
        SimulatedDevice::page_size(self)
    }

    fn page_count(&self) -> usize {
        SimulatedDevice::page_count(self)
    }

    fn allocate(&mut self) -> u64 {
        SimulatedDevice::allocate(self)
    }

    fn write_page(&mut self, id: u64, data: &[u8]) -> crate::Result<()> {
        SimulatedDevice::write_page(self, id, data)
    }

    fn read_page_owned(&self, id: u64) -> crate::Result<Vec<u8>> {
        SimulatedDevice::read_page(self, id).map(<[u8]>::to_vec)
    }

    fn stats(&self) -> IoStats {
        SimulatedDevice::stats(self)
    }

    fn reset_stats(&self) {
        SimulatedDevice::reset_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read_roundtrip() {
        let mut d = SimulatedDevice::new(128);
        let p0 = d.allocate();
        let p1 = d.allocate();
        assert_eq!((p0, p1), (0, 1));
        d.write_page(p1, b"hello").unwrap();
        let back = d.read_page(p1).unwrap();
        assert_eq!(&back[..5], b"hello");
        assert!(back[5..].iter().all(|&b| b == 0));
    }

    #[test]
    fn counters_track_operations() {
        let mut d = SimulatedDevice::new(256);
        let p = d.allocate();
        d.write_page(p, &[1; 100]).unwrap();
        d.read_page(p).unwrap();
        d.read_page(p).unwrap();
        let s = d.stats();
        assert_eq!(s.pages_written, 1);
        assert_eq!(s.pages_read, 2);
        assert_eq!(s.bytes_read, 512);
        assert_eq!(s.bytes_written, 256);
        d.reset_stats();
        assert_eq!(d.stats(), IoStats::default());
    }

    #[test]
    fn oversized_write_rejected() {
        let mut d = SimulatedDevice::new(64);
        let p = d.allocate();
        // Must be a structured IO error, and the page must be untouched.
        let err = d.write_page(p, &[7; 65]).unwrap_err();
        assert!(
            matches!(err, crate::StorageError::Io { op: "write", page, .. } if page == p),
            "{err}"
        );
        assert!(d.peek_page(p).unwrap().iter().all(|&b| b == 0));
        // The failed attempt is not billed as a completed write.
        assert_eq!(d.stats().pages_written, 0);
        // An exactly page-sized write is fine.
        assert!(d.write_page(p, &[7; 64]).is_ok());
    }

    #[test]
    fn missing_page_errors() {
        let d = SimulatedDevice::new(64);
        assert!(matches!(d.read_page(0), Err(crate::StorageError::PageNotFound { .. })));
    }

    #[test]
    fn simulated_time_follows_profile() {
        let profile = DeviceProfile { latency_us: 100.0, bandwidth_mb_s: 1.0 };
        let stats = IoStats {
            pages_read: 2,
            pages_written: 0,
            bytes_read: 2_000_000,
            bytes_written: 0,
            cache_hits: 0,
        };
        // 2 ops × 100 µs + 2 MB / 1 MB/s = 200 + 2,000,000 µs... note
        // bandwidth is MB/s so bytes/bandwidth is in µs when bytes are in
        // MB × 1e6 / 1e6 — cost_us treats bytes/(MB/s) directly.
        let t = stats.simulated_us(&profile);
        assert!((t - (200.0 + 2_000_000.0)).abs() < 1e-9);
    }

    #[test]
    fn device_profiles_are_ordered_sensibly() {
        let hdd = DeviceProfile::spinning_disk();
        let ssd = DeviceProfile::sata_ssd();
        let nvme = DeviceProfile::nvme_ssd();
        let cost = |p: &DeviceProfile| p.cost_us(100, 100 << 20);
        assert!(cost(&hdd) > cost(&ssd));
        assert!(cost(&ssd) > cost(&nvme));
    }
}
