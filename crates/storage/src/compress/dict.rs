//! Dictionary encoding for string columns: unique values stored once,
//! rows become bit-packed codes.

use super::{bitpack, varint};
use crate::bitmap::Bitmap;
use crate::error::{Result, StorageError};
use crate::zonemap::PredOp;
use std::collections::HashMap;

/// Encode a string slice as dictionary + codes.
///
/// Layout: varint dict size, per entry (varint len, bytes), bit-packed
/// code array.
pub fn encode(values: &[String]) -> Vec<u8> {
    let mut dict: Vec<&str> = Vec::new();
    let mut lookup: HashMap<&str, u64> = HashMap::new();
    let mut codes: Vec<u64> = Vec::with_capacity(values.len());
    for v in values {
        let code = match lookup.get(v.as_str()) {
            Some(&c) => c,
            None => {
                let c = dict.len() as u64;
                dict.push(v);
                lookup.insert(v, c);
                c
            }
        };
        codes.push(code);
    }
    let mut out = Vec::new();
    varint::put_u64(&mut out, dict.len() as u64);
    for entry in &dict {
        varint::put_u64(&mut out, entry.len() as u64);
        out.extend_from_slice(entry.as_bytes());
    }
    out.extend_from_slice(&bitpack::encode(&codes));
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<String>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "dict", detail: d.to_string() };
    let mut pos = 0;
    let dict_len = varint::get_u64(buf, &mut pos)? as usize;
    if dict_len > buf.len() {
        return Err(corrupt("implausible dictionary size"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let slen = varint::get_u64(buf, &mut pos)? as usize;
        let end = pos.checked_add(slen).filter(|&e| e <= buf.len()).ok_or_else(|| {
            corrupt("truncated dictionary entry")
        })?;
        let s = std::str::from_utf8(&buf[pos..end])
            .map_err(|_| corrupt("invalid UTF-8 in dictionary"))?;
        dict.push(s.to_string());
        pos = end;
    }
    let codes = bitpack::decode(&buf[pos..])?;
    codes
        .into_iter()
        .map(|c| {
            dict.get(c as usize)
                .cloned()
                .ok_or_else(|| corrupt(&format!("code {c} out of dictionary range")))
        })
        .collect()
}

/// Evaluate `value <op> rhs` without reconstructing the strings: the
/// comparison runs once per *distinct* value to build an acceptance
/// table, then the packed codes are scanned for set membership.
pub fn eval_cmp(buf: &[u8], op: PredOp, rhs: &str) -> Result<Bitmap> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "dict", detail: d.to_string() };
    let mut pos = 0;
    let dict_len = varint::get_u64(buf, &mut pos)? as usize;
    if dict_len > buf.len() {
        return Err(corrupt("implausible dictionary size"));
    }
    let mut accept = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let slen = varint::get_u64(buf, &mut pos)? as usize;
        let end = pos.checked_add(slen).filter(|&e| e <= buf.len()).ok_or_else(|| {
            corrupt("truncated dictionary entry")
        })?;
        let s = std::str::from_utf8(&buf[pos..end])
            .map_err(|_| corrupt("invalid UTF-8 in dictionary"))?;
        accept.push(op.eval_ord(s.cmp(rhs)));
        pos = end;
    }
    bitpack::eval_in_table(&buf[pos..], &accept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn roundtrip() {
        for values in [
            strs(&[]),
            strs(&["a"]),
            strs(&["red", "green", "red", "blue", "red"]),
            strs(&["", "", "x"]),
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values);
        }
    }

    #[test]
    fn low_cardinality_compresses() {
        // A categorical retail column: 8 distinct values over 10k rows.
        let cats = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun", "Hol"];
        let values: Vec<String> = (0..10_000).map(|i| cats[i % 8].to_string()).collect();
        let raw: usize = values.iter().map(|s| s.len() + 8).sum();
        let enc = encode(&values);
        // 3-bit codes: 30k bits ≈ 3.75 KB vs ~110 KB raw.
        assert!(enc.len() * 10 < raw, "{} vs {}", enc.len(), raw);
        assert_eq!(decode(&enc).unwrap(), values);
    }

    #[test]
    fn eval_cmp_matches_decode_then_compare() {
        use crate::bitmap::Bitmap;
        let inputs: Vec<Vec<String>> = vec![
            strs(&[]),
            strs(&["a"]),
            strs(&["red", "green", "red", "blue", "red", "blue"]),
            strs(&["", "", "x", "zz"]),
            (0..300).map(|i| format!("cat{}", i % 9)).collect(),
        ];
        let ops = [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne];
        for values in &inputs {
            let enc = encode(values);
            for &op in &ops {
                for rhs in ["", "a", "blue", "cat4", "red", "zzz"] {
                    let fast = eval_cmp(&enc, op, rhs).unwrap();
                    let slow = Bitmap::from_fn(values.len(), |i| {
                        op.eval_ord(values[i].as_str().cmp(rhs))
                    });
                    assert_eq!(fast, slow, "{op:?} rhs={rhs:?} n={}", values.len());
                }
            }
        }
    }

    #[test]
    fn eval_cmp_rejects_corruption() {
        // Code 5 against a 1-entry dictionary.
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 1);
        varint::put_u64(&mut buf, 1);
        buf.push(b'a');
        buf.extend_from_slice(&bitpack::encode(&[5]));
        assert!(eval_cmp(&buf, PredOp::Eq, "a").is_err());
        let enc = encode(&strs(&["a", "b"]));
        assert!(eval_cmp(&enc[..2], PredOp::Eq, "a").is_err());
    }

    #[test]
    fn corrupt_code_rejected() {
        let enc = encode(&strs(&["a", "b"]));
        // Append garbage that decodes codes out of range: craft manually.
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 1); // dict size 1
        varint::put_u64(&mut buf, 1);
        buf.push(b'a');
        buf.extend_from_slice(&bitpack::encode(&[5])); // code 5, dict has 1
        assert!(decode(&buf).is_err());
        // Truncation of a valid buffer.
        assert!(decode(&enc[..2]).is_err());
    }
}
