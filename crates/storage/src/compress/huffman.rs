//! Canonical Huffman coding over bytes — the entropy stage of the
//! deflate-like generic baseline.
//!
//! Header: 256 code-length bytes + varint symbol count; body: the
//! bitstream, LSB-first within each byte. Code lengths come from a
//! standard two-queue Huffman construction; canonical code assignment
//! makes the decoder table-driven and the header compact.

use super::varint;
use crate::error::{Result, StorageError};

/// Encode a byte stream.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut freq = [0u64; 256];
    for &b in data {
        freq[b as usize] += 1;
    }
    let lengths = code_lengths(&freq);
    let codes = canonical_codes(&lengths);

    let mut out = Vec::with_capacity(data.len() / 2 + 300);
    out.extend_from_slice(&lengths);
    varint::put_u64(&mut out, data.len() as u64);
    let mut acc: u64 = 0;
    let mut nbits: u32 = 0;
    for &b in data {
        let (code, len) = codes[b as usize];
        acc |= (code as u64) << nbits;
        nbits += len as u32;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<u8>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "huffman", detail: d.to_string() };
    if buf.len() < 256 {
        return Err(corrupt("missing code-length table"));
    }
    let lengths: [u8; 256] = buf[..256].try_into().expect("length checked");
    let mut pos = 256;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n == 0 {
        return Ok(Vec::new());
    }
    let codes = canonical_codes(&lengths);
    // Decoding table: for each (length, canonical code) → symbol.
    // Max code length from our builder is < 64; a sorted lookup per
    // length keeps this simple and fast enough for the baseline.
    let mut by_len: Vec<Vec<(u32, u8)>> = vec![Vec::new(); 65];
    for sym in 0..256usize {
        let (code, len) = codes[sym];
        if len > 0 {
            by_len[len as usize].push((code, sym as u8));
        }
    }
    for v in &mut by_len {
        v.sort_unstable();
    }
    let mut out = Vec::with_capacity(n);
    let mut bitpos = 0usize;
    let body = &buf[pos..];
    let total_bits = body.len() * 8;
    'outer: while out.len() < n {
        let mut code: u32 = 0;
        let mut len: usize = 0;
        loop {
            if bitpos >= total_bits {
                return Err(corrupt("bitstream exhausted mid-symbol"));
            }
            let bit = (body[bitpos / 8] >> (bitpos % 8)) & 1;
            bitpos += 1;
            // Our writer emits code LSB-first, so bit k of the code is
            // the k-th bit read.
            code |= (bit as u32) << len;
            len += 1;
            if len > 64 {
                return Err(corrupt("code longer than any table entry"));
            }
            if let Ok(idx) = by_len[len].binary_search_by_key(&code, |&(c, _)| c) {
                out.push(by_len[len][idx].1);
                continue 'outer;
            }
        }
    }
    Ok(out)
}

/// Huffman code lengths from frequencies (two-queue algorithm on a
/// sorted leaf list). Symbols with zero frequency get length 0; a
/// single-symbol alphabet gets length 1.
fn code_lengths(freq: &[u64; 256]) -> [u8; 256] {
    let mut lengths = [0u8; 256];
    let mut nodes: Vec<(u64, usize)> = freq
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(s, &f)| (f, s))
        .collect();
    match nodes.len() {
        0 => return lengths,
        1 => {
            lengths[nodes[0].1] = 1;
            return lengths;
        }
        _ => {}
    }
    // Tree as parent pointers; leaves 0..k, internals k...
    nodes.sort_unstable();
    let k = nodes.len();
    let mut weight: Vec<u64> = nodes.iter().map(|&(f, _)| f).collect();
    let mut parent: Vec<usize> = vec![usize::MAX; k];
    let mut leaf_q = 0usize; // next unconsumed leaf
    let mut int_q = k; // next unconsumed internal node
    let mut next_int = k;
    while next_int < 2 * k - 1 {
        // Pick the two smallest among remaining leaves and internals.
        let mut picks = [0usize; 2];
        for pick in &mut picks {
            let take_leaf = if leaf_q < k && int_q < next_int {
                weight[leaf_q] <= weight[int_q]
            } else {
                leaf_q < k
            };
            *pick = if take_leaf {
                leaf_q += 1;
                leaf_q - 1
            } else {
                int_q += 1;
                int_q - 1
            };
        }
        weight.push(weight[picks[0]] + weight[picks[1]]);
        parent.push(usize::MAX);
        parent[picks[0]] = next_int;
        parent[picks[1]] = next_int;
        next_int += 1;
    }
    for (i, &(_, sym)) in nodes.iter().enumerate() {
        let mut depth = 0u8;
        let mut node = i;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lengths[sym] = depth;
    }
    lengths
}

/// Canonical code assignment from lengths; returns `(code, length)` per
/// symbol, with codes stored LSB-first-readable (bit-reversed canonical).
fn canonical_codes(lengths: &[u8; 256]) -> [(u32, u8); 256] {
    let mut codes = [(0u32, 0u8); 256];
    // Sort symbols by (length, symbol).
    let mut order: Vec<usize> = (0..256).filter(|&s| lengths[s] > 0).collect();
    order.sort_by_key(|&s| (lengths[s], s));
    let mut code: u32 = 0;
    let mut prev_len = 0u8;
    for &sym in &order {
        let len = lengths[sym];
        code <<= len - prev_len;
        // Reverse the canonical code's bits so the LSB-first bit writer
        // and reader agree on prefix-freeness.
        let rev = code.reverse_bits() >> (32 - len as u32);
        codes[sym] = (rev, len);
        code += 1;
        prev_len = len;
    }
    codes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = encode(data);
        assert_eq!(decode(&c).unwrap(), data);
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"aaaaaaaaaa");
        roundtrip(b"abracadabra");
        roundtrip(&(0..=255u8).collect::<Vec<u8>>());
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 90% one symbol → strongly below 8 bits/symbol.
        let mut data = vec![b'x'; 9000];
        data.extend((0..1000u32).map(|i| (i % 256) as u8));
        let c = encode(&data);
        assert!(c.len() < data.len() / 2 + 300, "{} vs {}", c.len(), data.len());
        assert_eq!(decode(&c).unwrap(), data);
    }

    #[test]
    fn uniform_bytes_roundtrip_with_little_gain() {
        let data: Vec<u8> = (0..10_000u64)
            .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_pathological_tree_roundtrips() {
        // Fibonacci-like frequencies create maximal code-length skew.
        let mut data = Vec::new();
        let mut f = 1u64;
        let mut g = 1u64;
        for sym in 0..20u8 {
            for _ in 0..f.min(100_000) {
                data.push(sym);
            }
            let h = f + g;
            f = g;
            g = h;
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_input_errors() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0u8; 100]).is_err());
        let c = encode(b"hello world hello world");
        assert!(decode(&c[..c.len() - 1]).is_err());
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let mut freq = [0u64; 256];
        for (i, f) in freq.iter_mut().enumerate() {
            *f = (i as u64 * 13) % 97;
        }
        let lengths = code_lengths(&freq);
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!(kraft <= 1.0 + 1e-12, "Kraft inequality violated: {kraft}");
    }
}
