//! The semantic residual codec — the paper's "true semantic compression"
//! (Section 4.1).
//!
//! > "A straightforward compression method would be to store only the
//! > differences between the predicted and observed values. Using the
//! > model and trained parameters, we can then recompute the original
//! > dataset without loss of information."
//!
//! Two modes:
//!
//! * [`encode_lossless`] — store `observed.to_bits() XOR
//!   predicted.to_bits()` as LEB128. Reconstruction is **bit-exact** for
//!   every IEEE value (including NaN payloads), because XOR is its own
//!   inverse; a good model makes the XOR small, so well-predicted values
//!   cost 1–3 bytes instead of 8.
//! * [`encode_quantized`] — store `round((observed − predicted)/eps)` as
//!   zigzag LEB128. Reconstruction error is bounded by `eps/2` (plus one
//!   ulp of the final addition); well-predicted values cost exactly one
//!   byte. This is the mode that realizes the paper's ≈5% Table 1 ratio,
//!   and the error bound is surfaced to approximate-query consumers.
//!
//! The codec takes predictions as a plain slice so that the storage
//! layer stays model-agnostic; `lawsdb-models` supplies the predictions.

use super::varint;
use crate::error::{Result, StorageError};

fn check_lengths(codec: &'static str, observed: usize, predicted: usize) -> Result<()> {
    if observed != predicted {
        return Err(StorageError::CodecInput {
            codec,
            detail: format!("{observed} observed values but {predicted} predictions"),
        });
    }
    Ok(())
}

/// Lossless semantic encoding: XOR against predictions.
pub fn encode_lossless(observed: &[f64], predicted: &[f64]) -> Result<Vec<u8>> {
    check_lengths("residual-lossless", observed.len(), predicted.len())?;
    let mut out = Vec::with_capacity(observed.len() * 3 + 9);
    varint::put_u64(&mut out, observed.len() as u64);
    for (&o, &p) in observed.iter().zip(predicted) {
        varint::put_u64(&mut out, o.to_bits() ^ p.to_bits());
    }
    Ok(out)
}

/// Bit-exact reconstruction from [`encode_lossless`] output.
pub fn decode_lossless(buf: &[u8], predicted: &[f64]) -> Result<Vec<f64>> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    check_lengths("residual-lossless", n, predicted.len())?;
    let mut out = Vec::with_capacity(n);
    for &p in predicted {
        let x = varint::get_u64(buf, &mut pos)?;
        out.push(f64::from_bits(p.to_bits() ^ x));
    }
    Ok(out)
}

/// Quantized semantic encoding with error bound `eps/2`.
///
/// `eps` must be positive and finite. Residuals whose quantized
/// magnitude overflows i64 (wild outliers vs a tiny eps) are stored as
/// exceptions: a sentinel code followed by the raw bits.
pub fn encode_quantized(observed: &[f64], predicted: &[f64], eps: f64) -> Result<Vec<u8>> {
    check_lengths("residual-quantized", observed.len(), predicted.len())?;
    if !(eps > 0.0) || !eps.is_finite() {
        return Err(StorageError::CodecInput {
            codec: "residual-quantized",
            detail: format!("eps must be positive and finite, got {eps}"),
        });
    }
    let mut out = Vec::with_capacity(observed.len() + 17);
    varint::put_u64(&mut out, observed.len() as u64);
    out.extend_from_slice(&eps.to_le_bytes());
    // Reserve the most negative zigzag code as the exception sentinel.
    const SENTINEL: i64 = i64::MIN;
    for (&o, &p) in observed.iter().zip(predicted) {
        let r = (o - p) / eps;
        if r.is_finite() && r.abs() < 9.0e18 {
            let q = r.round() as i64;
            if q != SENTINEL {
                varint::put_i64(&mut out, q);
                continue;
            }
        }
        // Exception path: sentinel then raw bits.
        varint::put_i64(&mut out, SENTINEL);
        out.extend_from_slice(&o.to_le_bytes());
    }
    Ok(out)
}

/// Reconstruct approximate values (within `eps/2`) from
/// [`encode_quantized`] output.
pub fn decode_quantized(buf: &[u8], predicted: &[f64]) -> Result<Vec<f64>> {
    let corrupt = |d: &str| StorageError::CorruptData {
        codec: "residual-quantized",
        detail: d.to_string(),
    };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    check_lengths("residual-quantized", n, predicted.len())?;
    if buf.len() < pos + 8 {
        return Err(corrupt("missing eps"));
    }
    let eps = f64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes checked"));
    pos += 8;
    const SENTINEL: i64 = i64::MIN;
    let mut out = Vec::with_capacity(n);
    for &p in predicted {
        let q = varint::get_i64(buf, &mut pos)?;
        if q == SENTINEL {
            if buf.len() < pos + 8 {
                return Err(corrupt("truncated exception value"));
            }
            let raw =
                f64::from_le_bytes(buf[pos..pos + 8].try_into().expect("8 bytes checked"));
            pos += 8;
            out.push(raw);
        } else {
            out.push(p + q as f64 * eps);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A power-law "model" and noisy "observations" like the LOFAR data.
    fn synthetic(n: usize) -> (Vec<f64>, Vec<f64>) {
        let mut observed = Vec::with_capacity(n);
        let mut predicted = Vec::with_capacity(n);
        for i in 0..n {
            let nu = 0.12 + 0.02 * ((i % 4) as f64);
            let p = 2.0 * nu.powf(-0.7);
            // Deterministic pseudo-noise.
            let noise = (((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5)
                * 0.01;
            predicted.push(p);
            observed.push(p + noise);
        }
        (observed, predicted)
    }

    #[test]
    fn lossless_is_bit_exact() {
        let (obs, pred) = synthetic(5000);
        let enc = encode_lossless(&obs, &pred).unwrap();
        let back = decode_lossless(&enc, &pred).unwrap();
        for (a, b) in obs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A close model → far fewer than 8 bytes per value.
        assert!(enc.len() < obs.len() * 8, "{} vs {}", enc.len(), obs.len() * 8);
    }

    #[test]
    fn lossless_handles_nan_and_infinity() {
        let obs = vec![f64::NAN, f64::INFINITY, -0.0];
        let pred = vec![1.0, 2.0, 3.0];
        let back = decode_lossless(&encode_lossless(&obs, &pred).unwrap(), &pred).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f64::INFINITY);
        assert_eq!(back[2].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn quantized_respects_error_bound() {
        let (obs, pred) = synthetic(5000);
        let eps = 1e-4;
        let enc = encode_quantized(&obs, &pred, eps).unwrap();
        let back = decode_quantized(&enc, &pred).unwrap();
        for (a, b) in obs.iter().zip(&back) {
            assert!((a - b).abs() <= eps / 2.0 + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn quantized_achieves_semantic_ratio() {
        // Perfect model: residuals all zero → ~1 byte per value + header
        // vs 8 raw bytes: ratio ≈ 12.5%, and far below generic codecs.
        let pred: Vec<f64> = (0..10_000).map(|i| (i as f64).sin() * 100.0).collect();
        let obs = pred.clone();
        let enc = encode_quantized(&obs, &pred, 1e-6).unwrap();
        assert!(enc.len() < 10_100, "got {}", enc.len());
    }

    #[test]
    fn quantized_outlier_stored_exactly_via_exception() {
        let pred = vec![0.0, 0.0];
        let obs = vec![1e30, 0.5]; // 1e30 / eps overflows i64
        let eps = 1e-9;
        let enc = encode_quantized(&obs, &pred, eps).unwrap();
        let back = decode_quantized(&enc, &pred).unwrap();
        assert_eq!(back[0], 1e30, "exception path must be exact");
        assert!((back[1] - 0.5).abs() <= eps);
    }

    #[test]
    fn nan_observation_survives_quantized_mode() {
        let pred = vec![1.0];
        let obs = vec![f64::NAN];
        let enc = encode_quantized(&obs, &pred, 1e-3).unwrap();
        let back = decode_quantized(&enc, &pred).unwrap();
        assert!(back[0].is_nan());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(encode_lossless(&[1.0], &[1.0, 2.0]).is_err());
        assert!(encode_quantized(&[1.0], &[], 0.1).is_err());
        let enc = encode_lossless(&[1.0, 2.0], &[1.0, 2.0]).unwrap();
        assert!(decode_lossless(&enc, &[1.0]).is_err());
    }

    #[test]
    fn bad_eps_rejected() {
        assert!(encode_quantized(&[1.0], &[1.0], 0.0).is_err());
        assert!(encode_quantized(&[1.0], &[1.0], -1.0).is_err());
        assert!(encode_quantized(&[1.0], &[1.0], f64::NAN).is_err());
        assert!(encode_quantized(&[1.0], &[1.0], f64::INFINITY).is_err());
    }

    #[test]
    fn better_model_means_smaller_output() {
        let (obs, good_pred) = synthetic(2000);
        let bad_pred: Vec<f64> = obs.iter().map(|v| v * 3.0 + 17.0).collect();
        let good = encode_lossless(&obs, &good_pred).unwrap();
        let bad = encode_lossless(&obs, &bad_pred).unwrap();
        assert!(
            good.len() < bad.len(),
            "good model {} should beat bad model {}",
            good.len(),
            bad.len()
        );
    }
}
