//! LZSS: sliding-window match compression.
//!
//! Standing in for gzip's LZ77 stage in the SPARTAN-style baseline of
//! experiment E4 (no zlib available offline). Greedy longest-match via
//! 4-byte hash chains over a 64 KiB window; matches of 4..=259 bytes.
//!
//! Token format: a flag byte precedes each group of 8 tokens (bit i set
//! → token i is a match). Literal = 1 raw byte. Match = 3 bytes:
//! `len − 4`, then distance as little-endian u16 (1..=65535).

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 259;
const WINDOW: usize = 65_535;
/// Cap on chain walks per position; bounds worst-case compress time.
const MAX_CHAIN: usize = 64;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> 16) as usize & 0xFFFF
}

/// Compress a byte stream.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    // Header: original length (needed to size the decode buffer).
    super::varint::put_u64(&mut out, data.len() as u64);
    if data.is_empty() {
        return out;
    }
    // head[h] = most recent position with hash h; prev[i] = previous
    // position in i's chain. usize::MAX = empty.
    let mut head = vec![usize::MAX; 65_536];
    let mut prev = vec![usize::MAX; data.len()];

    let mut flags_at = out.len();
    out.push(0);
    let mut flag_count = 0u8;

    let mut i = 0;
    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash4(data, i);
            let mut cand = head[h];
            let mut chains = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chains < MAX_CHAIN {
                let max_len = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chains += 1;
            }
        }

        if flag_count == 8 {
            flags_at = out.len();
            out.push(0);
            flag_count = 0;
        }

        if best_len >= MIN_MATCH {
            out[flags_at] |= 1 << flag_count;
            out.push((best_len - MIN_MATCH) as u8);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            // Insert every covered position into the chains.
            let end = (i + best_len).min(data.len().saturating_sub(MIN_MATCH - 1));
            for j in i..end {
                let h = hash4(data, j);
                prev[j] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            out.push(data[i]);
            if i + MIN_MATCH <= data.len() {
                let h = hash4(data, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flag_count += 1;
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(buf: &[u8]) -> crate::Result<Vec<u8>> {
    let corrupt = |d: &str| crate::StorageError::CorruptData {
        codec: "lzss",
        detail: d.to_string(),
    };
    let mut pos = 0;
    let n = super::varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(MAX_MATCH).saturating_add(1) {
        return Err(corrupt("implausible length"));
    }
    let mut out = Vec::with_capacity(n);
    let mut flags = 0u8;
    let mut flag_count = 8u8; // force a flag-byte read first
    while out.len() < n {
        if flag_count == 8 {
            flags = *buf.get(pos).ok_or_else(|| corrupt("missing flag byte"))?;
            pos += 1;
            flag_count = 0;
        }
        let is_match = flags & (1 << flag_count) != 0;
        flag_count += 1;
        if is_match {
            if pos + 3 > buf.len() {
                return Err(corrupt("truncated match token"));
            }
            let len = buf[pos] as usize + MIN_MATCH;
            let dist =
                u16::from_le_bytes([buf[pos + 1], buf[pos + 2]]) as usize;
            pos += 3;
            if dist == 0 || dist > out.len() {
                return Err(corrupt("match distance out of range"));
            }
            if out.len() + len > n {
                return Err(corrupt("match overruns declared length"));
            }
            // Byte-by-byte copy: overlapping matches (dist < len) are
            // legal and meaningful, so no memcpy.
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            let b = *buf.get(pos).ok_or_else(|| corrupt("truncated literal"))?;
            pos += 1;
            out.push(b);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "roundtrip failed for {} bytes", data.len());
    }

    #[test]
    fn roundtrips() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abcabcabcabcabcabc");
        roundtrip("ératos —thène — ünïcode bytes".as_bytes());
        roundtrip(&[0u8; 100_000]);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // "aaaa..." exercises dist=1 < len copies.
        let data = vec![b'a'; 1000];
        let c = compress(&data);
        assert!(c.len() < 50, "run should compress hard, got {}", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn repetitive_text_compresses() {
        let data: Vec<u8> = "SELECT intensity FROM measurements WHERE source = 42; "
            .repeat(200)
            .into_bytes();
        let c = compress(&data);
        assert!(c.len() * 5 < data.len(), "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn pseudo_random_data_roundtrips() {
        let data: Vec<u8> = (0..50_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(31) >> 24) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_range_matches_within_window() {
        // Two identical 10KB blocks 20KB apart: second block should
        // match the first (distance < 64KB window).
        let block: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut data = block.clone();
        data.extend(std::iter::repeat_n(7u8, 20_000));
        data.extend_from_slice(&block);
        let c = compress(&data);
        assert!(c.len() < data.len() / 2);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_error_not_panic() {
        let c = compress(b"hello hello hello hello");
        assert!(decompress(&c[..c.len() - 1]).is_err());
        assert!(decompress(&[]).is_err());
        // Declared length with no body.
        let mut bad = Vec::new();
        super::super::varint::put_u64(&mut bad, 10);
        assert!(decompress(&bad).is_err());
        // Match with distance 0.
        let mut bad2 = Vec::new();
        super::super::varint::put_u64(&mut bad2, 5);
        bad2.push(0b0000_0001); // first token is a match
        bad2.extend_from_slice(&[0, 0, 0]); // len 4, dist 0
        assert!(decompress(&bad2).is_err());
    }
}
