//! Frame-of-reference coding: subtract the block minimum, bit-pack the
//! offsets. The classic layout for clustered integer columns (date
//! keys, sequence numbers) where values sit in a narrow band far from
//! zero.

use super::{bitpack, varint};
use crate::bitmap::Bitmap;
use crate::error::{Result, StorageError};
use crate::zonemap::PredOp;

/// Block size: one reference per block bounds the damage of outliers.
const BLOCK: usize = 1024;

/// Encode an i64 slice block-wise as `min + bit-packed offsets`.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 9);
    varint::put_u64(&mut out, values.len() as u64);
    for block in values.chunks(BLOCK) {
        let min = block.iter().copied().min().expect("chunks are non-empty");
        varint::put_i64(&mut out, min);
        let offsets: Vec<u64> = block
            .iter()
            .map(|&v| v.wrapping_sub(min) as u64)
            .collect();
        let packed = bitpack::encode(&offsets);
        varint::put_u64(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "for", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(BLOCK) {
        return Err(corrupt("implausible length"));
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let min = varint::get_i64(buf, &mut pos)?;
        let packed_len = varint::get_u64(buf, &mut pos)? as usize;
        let end = pos.checked_add(packed_len).filter(|&e| e <= buf.len()).ok_or_else(
            || corrupt("truncated block"),
        )?;
        let offsets = bitpack::decode(&buf[pos..end])?;
        pos = end;
        if out.len() + offsets.len() > n {
            return Err(corrupt("block overflows declared length"));
        }
        out.extend(offsets.into_iter().map(|o| min.wrapping_add(o as i64)));
    }
    Ok(out)
}

/// Evaluate `value <op> rhs` on the packed domain: per block the
/// threshold is translated to offset space (`rhs - min`, exact in
/// i128 because offsets live in `[0, 2^64)`), and the bit-packed
/// offsets are compared directly — the i64 values are never rebuilt.
pub fn eval_cmp(buf: &[u8], op: PredOp, rhs: i64) -> Result<Bitmap> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "for", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(BLOCK) {
        return Err(corrupt("implausible length"));
    }
    let mut words: Vec<u64> = Vec::with_capacity(n.div_ceil(64));
    let mut len = 0usize;
    while len < n {
        let min = varint::get_i64(buf, &mut pos)?;
        let packed_len = varint::get_u64(buf, &mut pos)? as usize;
        let end = pos.checked_add(packed_len).filter(|&e| e <= buf.len()).ok_or_else(
            || corrupt("truncated block"),
        )?;
        // Offsets are exact in [0, 2^64): every value v satisfies
        // v >= min, so v - min never wraps as an i128. Translate the
        // threshold into that space; out-of-range thresholds decide the
        // whole block (expressed as an always-true/false offset compare
        // so the block body still gets validated).
        let shifted = rhs as i128 - min as i128;
        let block = if shifted < 0 {
            // Every offset (>= 0) exceeds the threshold: v > rhs.
            let all = matches!(op, PredOp::Gt | PredOp::Ge | PredOp::Ne);
            bitpack::eval_cmp(&buf[pos..end], if all { PredOp::Ge } else { PredOp::Lt }, 0)?
        } else if shifted > u64::MAX as i128 {
            // Every offset falls short of the threshold: v < rhs.
            let all = matches!(op, PredOp::Lt | PredOp::Le | PredOp::Ne);
            bitpack::eval_cmp(&buf[pos..end], if all { PredOp::Ge } else { PredOp::Lt }, 0)?
        } else {
            bitpack::eval_cmp(&buf[pos..end], op, shifted as u64)?
        };
        pos = end;
        if len + block.len() > n {
            return Err(corrupt("block overflows declared length"));
        }
        let (blen, bwords) = block.to_parts();
        if len.is_multiple_of(64) {
            // Encoder blocks are 1024 rows (a multiple of 64), so block
            // results append word-aligned except after a short block.
            words.extend_from_slice(bwords);
            words.truncate((len + blen).div_ceil(64));
            len += blen;
        } else {
            let mut bm = Bitmap::from_parts(len, std::mem::take(&mut words));
            // Slow path for decoder-legal but encoder-atypical layouts.
            for i in 0..blen {
                bm.push(block.get(i));
            }
            len += blen;
            let (_, w) = bm.to_parts();
            words = w.to_vec();
        }
    }
    Ok(Bitmap::from_parts(n, words))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various() {
        for values in [
            vec![],
            vec![42],
            vec![1_000_000, 1_000_001, 1_000_003],
            (0..5000).map(|i| 20_000_000 + (i % 100)).collect::<Vec<i64>>(),
            vec![i64::MIN, i64::MAX, 0],
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values, "{:?}", values.len());
        }
    }

    #[test]
    fn narrow_band_compresses_hard() {
        // Date keys: 7 distinct values around 20,000.
        let values: Vec<i64> = (0..10_000).map(|i| 20_000 + (i % 7)).collect();
        let enc = encode(&values);
        // 3 bits per value ≈ 3.75 KB vs 80 KB raw.
        assert!(enc.len() < 5_000, "got {}", enc.len());
    }

    #[test]
    fn outlier_only_hurts_its_own_block() {
        let mut values: Vec<i64> = (0..4096).map(|i| 1000 + (i % 4)).collect();
        values[0] = i64::MAX / 2; // poison block 0
        let enc = encode(&values);
        // Blocks 1..3 still pack tightly: total stays far below raw.
        assert!(enc.len() < values.len() * 8 / 2, "got {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), values);
    }

    #[test]
    fn eval_cmp_matches_decode_then_compare() {
        use crate::bitmap::Bitmap;
        let inputs: Vec<Vec<i64>> = vec![
            vec![],
            vec![42],
            vec![1_000_000, 1_000_001, 1_000_003],
            (0..5000).map(|i| 20_000_000 + (i % 100)).collect(),
            vec![i64::MIN, i64::MAX, 0, -1, 1],
            (0..2048).map(|i| if i < 1024 { i } else { -i }).collect(),
        ];
        let ops = [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne];
        for values in &inputs {
            let enc = encode(values);
            for &op in &ops {
                for &rhs in
                    &[i64::MIN, -1025, -1, 0, 42, 1_000_001, 20_000_050, i64::MAX - 1, i64::MAX]
                {
                    let fast = eval_cmp(&enc, op, rhs).unwrap();
                    let slow = Bitmap::from_fn(values.len(), |i| op.eval_i64(values[i], rhs));
                    assert_eq!(fast, slow, "{op:?} rhs={rhs} n={}", values.len());
                }
            }
        }
    }

    #[test]
    fn eval_cmp_translated_threshold_out_of_block_range() {
        // Block min is 1<<40; thresholds far below/above exercise the
        // decided-block paths while still validating the packed body.
        let values: Vec<i64> = (0..100).map(|i| (1i64 << 40) + i).collect();
        let enc = encode(&values);
        assert_eq!(eval_cmp(&enc, PredOp::Gt, 0).unwrap().count_set(), 100);
        assert_eq!(eval_cmp(&enc, PredOp::Lt, 0).unwrap().count_set(), 0);
        assert_eq!(eval_cmp(&enc, PredOp::Lt, i64::MAX).unwrap().count_set(), 100);
    }

    #[test]
    fn eval_cmp_rejects_corruption() {
        let enc = encode(&(0..2000).collect::<Vec<i64>>());
        assert!(eval_cmp(&enc[..enc.len() - 1], PredOp::Lt, 5).is_err());
        assert!(eval_cmp(&[], PredOp::Lt, 5).is_err());
    }

    #[test]
    fn corrupt_input_rejected() {
        let enc = encode(&[1, 2, 3]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&[]).is_err());
    }
}
