//! Frame-of-reference coding: subtract the block minimum, bit-pack the
//! offsets. The classic layout for clustered integer columns (date
//! keys, sequence numbers) where values sit in a narrow band far from
//! zero.

use super::{bitpack, varint};
use crate::error::{Result, StorageError};

/// Block size: one reference per block bounds the damage of outliers.
const BLOCK: usize = 1024;

/// Encode an i64 slice block-wise as `min + bit-packed offsets`.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2 + 9);
    varint::put_u64(&mut out, values.len() as u64);
    for block in values.chunks(BLOCK) {
        let min = block.iter().copied().min().expect("chunks are non-empty");
        varint::put_i64(&mut out, min);
        let offsets: Vec<u64> = block
            .iter()
            .map(|&v| v.wrapping_sub(min) as u64)
            .collect();
        let packed = bitpack::encode(&offsets);
        varint::put_u64(&mut out, packed.len() as u64);
        out.extend_from_slice(&packed);
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "for", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(BLOCK) {
        return Err(corrupt("implausible length"));
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let min = varint::get_i64(buf, &mut pos)?;
        let packed_len = varint::get_u64(buf, &mut pos)? as usize;
        let end = pos.checked_add(packed_len).filter(|&e| e <= buf.len()).ok_or_else(
            || corrupt("truncated block"),
        )?;
        let offsets = bitpack::decode(&buf[pos..end])?;
        pos = end;
        if out.len() + offsets.len() > n {
            return Err(corrupt("block overflows declared length"));
        }
        out.extend(offsets.into_iter().map(|o| min.wrapping_add(o as i64)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various() {
        for values in [
            vec![],
            vec![42],
            vec![1_000_000, 1_000_001, 1_000_003],
            (0..5000).map(|i| 20_000_000 + (i % 100)).collect::<Vec<i64>>(),
            vec![i64::MIN, i64::MAX, 0],
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values, "{:?}", values.len());
        }
    }

    #[test]
    fn narrow_band_compresses_hard() {
        // Date keys: 7 distinct values around 20,000.
        let values: Vec<i64> = (0..10_000).map(|i| 20_000 + (i % 7)).collect();
        let enc = encode(&values);
        // 3 bits per value ≈ 3.75 KB vs 80 KB raw.
        assert!(enc.len() < 5_000, "got {}", enc.len());
    }

    #[test]
    fn outlier_only_hurts_its_own_block() {
        let mut values: Vec<i64> = (0..4096).map(|i| 1000 + (i % 4)).collect();
        values[0] = i64::MAX / 2; // poison block 0
        let enc = encode(&values);
        // Blocks 1..3 still pack tightly: total stays far below raw.
        assert!(enc.len() < values.len() * 8 / 2, "got {}", enc.len());
        assert_eq!(decode(&enc).unwrap(), values);
    }

    #[test]
    fn corrupt_input_rejected() {
        let enc = encode(&[1, 2, 3]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&[]).is_err());
    }
}
