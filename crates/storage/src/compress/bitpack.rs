//! Fixed-width bit packing for unsigned integers.
//!
//! Values are packed LSB-first at the minimum width that fits the
//! maximum value. Dictionary codes and frame-of-reference offsets use
//! this as their final stage.

use super::varint;
use crate::bitmap::Bitmap;
use crate::error::{Result, StorageError};
use crate::zonemap::PredOp;

/// Minimum number of bits needed to represent `v` (0 needs 0 bits but we
/// report 1 so every value occupies at least one slot).
pub fn bits_needed(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Pack a slice at the minimal common width.
/// Layout: varint count, u8 width, packed words.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let width = values.iter().copied().map(bits_needed).max().unwrap_or(1);
    let mut out = Vec::new();
    varint::put_u64(&mut out, values.len() as u64);
    out.push(width as u8);
    // u128 accumulator: nbits stays < 8 between values, so even 64-bit
    // wide values never overflow 8 + 64 ≤ 128 bits.
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        acc |= (v as u128) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<u64>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "bitpack", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    let width = *buf.get(pos).ok_or_else(|| corrupt("missing width"))? as u32;
    pos += 1;
    if width == 0 || width > 64 {
        return Err(corrupt("invalid width"));
    }
    // Hostile lengths must error, not overflow or OOM: checked math,
    // and the plausibility bound caps the later allocation.
    let need_bits = (n as u64)
        .checked_mul(width as u64)
        .ok_or_else(|| corrupt("length overflow"))?;
    let have_bits = ((buf.len() - pos) as u64) * 8;
    if have_bits < need_bits {
        return Err(corrupt("truncated body"));
    }
    let mut out = Vec::with_capacity(n);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mask: u128 = if width == 64 { u64::MAX as u128 } else { (1u128 << width) - 1 };
    for &b in &buf[pos..] {
        acc |= (b as u128) << nbits;
        nbits += 8;
        while nbits >= width && out.len() < n {
            out.push((acc & mask) as u64);
            acc >>= width;
            nbits -= width;
        }
        if out.len() == n {
            break;
        }
    }
    if out.len() != n {
        return Err(corrupt("short decode"));
    }
    Ok(out)
}

/// Validated header + packed body of an encoded buffer.
struct Packed<'a> {
    n: usize,
    width: u32,
    body: &'a [u8],
}

fn parse(buf: &[u8]) -> Result<Packed<'_>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "bitpack", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    let width = *buf.get(pos).ok_or_else(|| corrupt("missing width"))? as u32;
    pos += 1;
    if width == 0 || width > 64 {
        return Err(corrupt("invalid width"));
    }
    let need_bits =
        (n as u64).checked_mul(width as u64).ok_or_else(|| corrupt("length overflow"))?;
    if ((buf.len() - pos) as u64) * 8 < need_bits {
        return Err(corrupt("truncated body"));
    }
    Ok(Packed { n, width, body: &buf[pos..] })
}

/// Stream the packed values through `test`, building the truth bitmap
/// without materializing a decoded vector.
fn scan(p: &Packed<'_>, mut test: impl FnMut(u64) -> Result<bool>) -> Result<Bitmap> {
    let mut words = vec![0u64; p.n.div_ceil(64)];
    let mask: u128 = if p.width == 64 { u64::MAX as u128 } else { (1u128 << p.width) - 1 };
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mut i = 0usize;
    for &b in p.body {
        acc |= (b as u128) << nbits;
        nbits += 8;
        while nbits >= p.width && i < p.n {
            if test((acc & mask) as u64)? {
                words[i / 64] |= 1 << (i % 64);
            }
            acc >>= p.width;
            nbits -= p.width;
            i += 1;
        }
        if i == p.n {
            break;
        }
    }
    Ok(Bitmap::from_parts(p.n, words))
}

/// Evaluate `value <op> rhs` directly on the packed representation,
/// emitting a truth bitmap without decoding to a `Vec<u64>`.
///
/// When `rhs` exceeds the packed width's value range the whole buffer is
/// decided by the width alone — no body scan at all.
pub fn eval_cmp(buf: &[u8], op: PredOp, rhs: u64) -> Result<Bitmap> {
    let p = parse(buf)?;
    let max_repr = if p.width == 64 { u64::MAX } else { (1u64 << p.width) - 1 };
    if rhs > max_repr {
        // Every packed value is < rhs.
        let all = matches!(op, PredOp::Lt | PredOp::Le | PredOp::Ne);
        return Ok(Bitmap::filled(p.n, all));
    }
    scan(&p, |v| Ok(op.eval_u64(v, rhs)))
}

/// Set-membership over packed codes: row `i` is set iff
/// `accept[code[i]]`. Codes outside the table are corruption (a code
/// the dictionary does not define). This is the dictionary kernel's
/// inner loop.
pub fn eval_in_table(buf: &[u8], accept: &[bool]) -> Result<Bitmap> {
    let p = parse(buf)?;
    scan(&p, |v| {
        accept.get(v as usize).copied().ok_or_else(|| StorageError::CorruptData {
            codec: "bitpack",
            detail: format!("code {v} outside acceptance table of {}", accept.len()),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_values() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_small_codes() {
        let values: Vec<u64> = (0..1000).map(|i| i % 7).collect();
        let enc = encode(&values);
        // width 3 → 3000 bits ≈ 375 bytes + header.
        assert!(enc.len() < 400);
        assert_eq!(decode(&enc).unwrap(), values);
    }

    #[test]
    fn roundtrip_wide_values() {
        let values = vec![u64::MAX, 0, u64::MAX / 2, 1];
        assert_eq!(decode(&encode(&values)).unwrap(), values);
    }

    #[test]
    fn roundtrip_57_to_63_bit_widths() {
        for shift in 56..64 {
            let values = vec![1u64 << shift, (1u64 << shift) - 1, 3, 1u64 << (shift - 1)];
            assert_eq!(decode(&encode(&values)).unwrap(), values, "shift {shift}");
        }
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn corrupt_inputs_error() {
        assert!(decode(&[]).is_err());
        let enc = encode(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        let mut bad = enc.clone();
        bad[1] = 0; // zero width
        assert!(decode(&bad).is_err());
        bad[1] = 65; // width > 64
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn eval_cmp_matches_decode_then_compare() {
        let inputs: Vec<Vec<u64>> = vec![
            vec![],
            vec![0],
            (0..200).map(|i| i % 13).collect(),
            vec![u64::MAX, 0, u64::MAX / 2, 7, 7, 7],
            (0..130).map(|i| i * 3).collect(),
        ];
        let ops = [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne];
        for values in &inputs {
            let enc = encode(values);
            let dec = decode(&enc).unwrap();
            for &op in &ops {
                for &rhs in &[0u64, 1, 6, 7, 12, 200, u64::MAX / 2, u64::MAX] {
                    let fast = eval_cmp(&enc, op, rhs).unwrap();
                    let slow = Bitmap::from_fn(dec.len(), |i| op.eval_u64(dec[i], rhs));
                    assert_eq!(fast, slow, "{op:?} rhs={rhs} n={}", values.len());
                }
            }
        }
    }

    #[test]
    fn eval_cmp_width_shortcut_skips_body_scan() {
        // Values fit 3 bits; rhs above the width's range decides all rows.
        let enc = encode(&(0..100).map(|i| i % 8).collect::<Vec<u64>>());
        let lt = eval_cmp(&enc, PredOp::Lt, 1000).unwrap();
        assert_eq!(lt.count_set(), 100);
        let gt = eval_cmp(&enc, PredOp::Gt, 1000).unwrap();
        assert_eq!(gt.count_set(), 0);
    }

    #[test]
    fn eval_in_table_membership_and_corruption() {
        let codes: Vec<u64> = (0..50).map(|i| i % 4).collect();
        let enc = encode(&codes);
        let truth = eval_in_table(&enc, &[true, false, true, false]).unwrap();
        let want = Bitmap::from_fn(50, |i| codes[i].is_multiple_of(2));
        assert_eq!(truth, want);
        // A code outside the table is a corrupt dictionary reference.
        assert!(eval_in_table(&enc, &[true, true]).is_err());
    }

    #[test]
    fn eval_cmp_rejects_truncation() {
        let enc = encode(&(0..100).collect::<Vec<u64>>());
        assert!(eval_cmp(&enc[..enc.len() - 1], PredOp::Lt, 5).is_err());
        assert!(eval_cmp(&[], PredOp::Lt, 5).is_err());
    }
}
