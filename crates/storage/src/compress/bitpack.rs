//! Fixed-width bit packing for unsigned integers.
//!
//! Values are packed LSB-first at the minimum width that fits the
//! maximum value. Dictionary codes and frame-of-reference offsets use
//! this as their final stage.

use super::varint;
use crate::error::{Result, StorageError};

/// Minimum number of bits needed to represent `v` (0 needs 0 bits but we
/// report 1 so every value occupies at least one slot).
pub fn bits_needed(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Pack a slice at the minimal common width.
/// Layout: varint count, u8 width, packed words.
pub fn encode(values: &[u64]) -> Vec<u8> {
    let width = values.iter().copied().map(bits_needed).max().unwrap_or(1);
    let mut out = Vec::new();
    varint::put_u64(&mut out, values.len() as u64);
    out.push(width as u8);
    // u128 accumulator: nbits stays < 8 between values, so even 64-bit
    // wide values never overflow 8 + 64 ≤ 128 bits.
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    for &v in values {
        acc |= (v as u128) << nbits;
        nbits += width;
        while nbits >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((acc & 0xFF) as u8);
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<u64>> {
    let corrupt = |d: &str| StorageError::CorruptData { codec: "bitpack", detail: d.to_string() };
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    let width = *buf.get(pos).ok_or_else(|| corrupt("missing width"))? as u32;
    pos += 1;
    if width == 0 || width > 64 {
        return Err(corrupt("invalid width"));
    }
    // Hostile lengths must error, not overflow or OOM: checked math,
    // and the plausibility bound caps the later allocation.
    let need_bits = (n as u64)
        .checked_mul(width as u64)
        .ok_or_else(|| corrupt("length overflow"))?;
    let have_bits = ((buf.len() - pos) as u64) * 8;
    if have_bits < need_bits {
        return Err(corrupt("truncated body"));
    }
    let mut out = Vec::with_capacity(n);
    let mut acc: u128 = 0;
    let mut nbits: u32 = 0;
    let mask: u128 = if width == 64 { u64::MAX as u128 } else { (1u128 << width) - 1 };
    for &b in &buf[pos..] {
        acc |= (b as u128) << nbits;
        nbits += 8;
        while nbits >= width && out.len() < n {
            out.push((acc & mask) as u64);
            acc >>= width;
            nbits -= width;
        }
        if out.len() == n {
            break;
        }
    }
    if out.len() != n {
        return Err(corrupt("short decode"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_values() {
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert_eq!(bits_needed(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_small_codes() {
        let values: Vec<u64> = (0..1000).map(|i| i % 7).collect();
        let enc = encode(&values);
        // width 3 → 3000 bits ≈ 375 bytes + header.
        assert!(enc.len() < 400);
        assert_eq!(decode(&enc).unwrap(), values);
    }

    #[test]
    fn roundtrip_wide_values() {
        let values = vec![u64::MAX, 0, u64::MAX / 2, 1];
        assert_eq!(decode(&encode(&values)).unwrap(), values);
    }

    #[test]
    fn roundtrip_57_to_63_bit_widths() {
        for shift in 56..64 {
            let values = vec![1u64 << shift, (1u64 << shift) - 1, 3, 1u64 << (shift - 1)];
            assert_eq!(decode(&encode(&values)).unwrap(), values, "shift {shift}");
        }
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn corrupt_inputs_error() {
        assert!(decode(&[]).is_err());
        let enc = encode(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        let mut bad = enc.clone();
        bad[1] = 0; // zero width
        assert!(decode(&bad).is_err());
        bad[1] = 65; // width > 64
        assert!(decode(&bad).is_err());
    }
}
