//! XOR-previous float codec (Gorilla-style, byte granularity).
//!
//! Each value is XORed with its predecessor; when consecutive floats are
//! close, the sign, exponent and high mantissa bits agree, so the XOR is
//! a *small* u64 and LEB128 shrinks it. This is the strongest *generic*
//! float codec in the suite — the semantic residual codec beats it
//! exactly when the model predicts better than "same as last time".

use super::varint;
use crate::error::Result;

/// Encode an f64 slice.
pub fn encode(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 3 + 9);
    varint::put_u64(&mut out, values.len() as u64);
    let mut prev = 0u64;
    for &v in values {
        let bits = v.to_bits();
        varint::put_u64(&mut out, bits ^ prev);
        prev = bits;
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<f64>> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(10) {
        return Err(crate::StorageError::CorruptData {
            codec: "float-xor",
            detail: format!("implausible length {n}"),
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0u64;
    for _ in 0..n {
        let x = varint::get_u64(buf, &mut pos)?;
        let bits = x ^ prev;
        out.push(f64::from_bits(bits));
        prev = bits;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_exact_including_specials() {
        let values = vec![0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -1e300];
        let back = decode(&encode(&values)).unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in values.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit-exact roundtrip");
        }
    }

    #[test]
    fn constant_series_is_tiny() {
        let values = vec![std::f64::consts::PI; 10_000];
        let enc = encode(&values);
        // First value ~10 bytes, every subsequent xor is 0 → 1 byte.
        assert!(enc.len() < 10_050, "got {}", enc.len());
    }

    #[test]
    fn slowly_varying_beats_raw() {
        let values: Vec<f64> = (0..10_000).map(|i| 1000.0 + (i as f64) * 1e-8).collect();
        let enc = encode(&values);
        assert!(enc.len() < values.len() * 8, "{} vs {}", enc.len(), values.len() * 8);
    }

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decode(&encode(&[])).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn truncation_detected() {
        let enc = encode(&[1.0, 2.0]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
    }
}
