//! Run-length encoding for integer columns with long constant runs
//! (group keys sorted by group, categorical codes).

use super::varint;
use crate::bitmap::Bitmap;
use crate::error::{Result, StorageError};
use crate::zonemap::PredOp;

/// Encode as `(count, then per run: zigzag value, varint run length)`.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::put_u64(&mut out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        varint::put_i64(&mut out, v);
        varint::put_u64(&mut out, run as u64);
        i += run;
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(u16::MAX as usize) {
        return Err(StorageError::CorruptData {
            codec: "rle",
            detail: format!("implausible length {n}"),
        });
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = varint::get_i64(buf, &mut pos)?;
        let run = varint::get_u64(buf, &mut pos)? as usize;
        if run == 0 || out.len() + run > n {
            return Err(StorageError::CorruptData {
                codec: "rle",
                detail: "run overflows declared length".to_string(),
            });
        }
        out.resize(out.len() + run, v);
    }
    Ok(out)
}

/// Evaluate `value <op> rhs` at run granularity: one comparison decides
/// an entire run, and accepted runs set their whole bit range in a
/// single word-speed pass. The values are never materialized.
pub fn eval_cmp(buf: &[u8], op: PredOp, rhs: i64) -> Result<Bitmap> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(u16::MAX as usize) {
        return Err(StorageError::CorruptData {
            codec: "rle",
            detail: format!("implausible length {n}"),
        });
    }
    let mut truth = Bitmap::filled(n, false);
    let mut row = 0usize;
    while row < n {
        let v = varint::get_i64(buf, &mut pos)?;
        let run = varint::get_u64(buf, &mut pos)? as usize;
        if run == 0 || row + run > n {
            return Err(StorageError::CorruptData {
                codec: "rle",
                detail: "run overflows declared length".to_string(),
            });
        }
        if op.eval_i64(v, rhs) {
            truth.set_range(row, row + run);
        }
        row += run;
    }
    Ok(truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for values in [
            vec![],
            vec![7],
            vec![1, 1, 1, 2, 2, 3],
            vec![5; 100_000],
            (0..100).collect::<Vec<i64>>(), // worst case: no runs
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values);
        }
    }

    #[test]
    fn grouped_source_ids_compress_massively() {
        // 35,692 sources × ~40 observations each, sorted by source —
        // exactly the shape of the LOFAR source column.
        let mut values = Vec::new();
        for s in 0..1000i64 {
            values.extend(std::iter::repeat_n(s, 40));
        }
        let enc = encode(&values);
        assert!(enc.len() < 4000, "1000 runs should take ~3 bytes each, got {}", enc.len());
    }

    #[test]
    fn corrupt_run_rejected() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 3); // claim 3 values
        varint::put_i64(&mut buf, 1);
        varint::put_u64(&mut buf, 10); // run of 10 > 3
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn eval_cmp_matches_decode_then_compare() {
        let inputs: Vec<Vec<i64>> = vec![
            vec![],
            vec![7],
            vec![1, 1, 1, 2, 2, 3],
            vec![5; 1000],
            (0..100).collect(),
            vec![i64::MIN, i64::MIN, 0, i64::MAX],
        ];
        let ops = [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne];
        for values in &inputs {
            let enc = encode(values);
            for &op in &ops {
                for &rhs in &[i64::MIN, -1, 0, 2, 5, 99, i64::MAX] {
                    let fast = eval_cmp(&enc, op, rhs).unwrap();
                    let slow = Bitmap::from_fn(values.len(), |i| op.eval_i64(values[i], rhs));
                    assert_eq!(fast, slow, "{op:?} rhs={rhs} n={}", values.len());
                }
            }
        }
    }

    #[test]
    fn eval_cmp_rejects_corruption() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 3);
        varint::put_i64(&mut buf, 1);
        varint::put_u64(&mut buf, 10); // run of 10 > 3
        assert!(eval_cmp(&buf, PredOp::Eq, 1).is_err());
        let enc = encode(&[1, 2, 3]);
        assert!(eval_cmp(&enc[..enc.len() - 1], PredOp::Eq, 1).is_err());
    }

    #[test]
    fn zero_run_rejected() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 1);
        varint::put_i64(&mut buf, 1);
        varint::put_u64(&mut buf, 0);
        assert!(decode(&buf).is_err());
    }
}
