//! Run-length encoding for integer columns with long constant runs
//! (group keys sorted by group, categorical codes).

use super::varint;
use crate::error::{Result, StorageError};

/// Encode as `(count, then per run: zigzag value, varint run length)`.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::new();
    varint::put_u64(&mut out, values.len() as u64);
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1usize;
        while i + run < values.len() && values[i + run] == v {
            run += 1;
        }
        varint::put_i64(&mut out, v);
        varint::put_u64(&mut out, run as u64);
        i += run;
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    if n > buf.len().saturating_mul(u16::MAX as usize) {
        return Err(StorageError::CorruptData {
            codec: "rle",
            detail: format!("implausible length {n}"),
        });
    }
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let v = varint::get_i64(buf, &mut pos)?;
        let run = varint::get_u64(buf, &mut pos)? as usize;
        if run == 0 || out.len() + run > n {
            return Err(StorageError::CorruptData {
                codec: "rle",
                detail: "run overflows declared length".to_string(),
            });
        }
        out.resize(out.len() + run, v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for values in [
            vec![],
            vec![7],
            vec![1, 1, 1, 2, 2, 3],
            vec![5; 100_000],
            (0..100).collect::<Vec<i64>>(), // worst case: no runs
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values);
        }
    }

    #[test]
    fn grouped_source_ids_compress_massively() {
        // 35,692 sources × ~40 observations each, sorted by source —
        // exactly the shape of the LOFAR source column.
        let mut values = Vec::new();
        for s in 0..1000i64 {
            values.extend(std::iter::repeat_n(s, 40));
        }
        let enc = encode(&values);
        assert!(enc.len() < 4000, "1000 runs should take ~3 bytes each, got {}", enc.len());
    }

    #[test]
    fn corrupt_run_rejected() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 3); // claim 3 values
        varint::put_i64(&mut buf, 1);
        varint::put_u64(&mut buf, 10); // run of 10 > 3
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn zero_run_rejected() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, 1);
        varint::put_i64(&mut buf, 1);
        varint::put_u64(&mut buf, 0);
        assert!(decode(&buf).is_err());
    }
}
