//! LEB128 variable-length integers and zigzag signed mapping.

use crate::error::{Result, StorageError};

/// Append a u64 as LEB128.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 u64 from `buf[*pos..]`, advancing `pos`.
pub fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(StorageError::CorruptData {
            codec: "varint",
            detail: "truncated".to_string(),
        })?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(StorageError::CorruptData {
                codec: "varint",
                detail: "overflow".to_string(),
            });
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag map: small-magnitude signed integers to small unsigned ones.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append an i64 as zigzag LEB128.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, zigzag(v));
}

/// Read a zigzag LEB128 i64.
pub fn get_i64(buf: &[u8], pos: &mut usize) -> Result<i64> {
    Ok(unzigzag(get_u64(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_u64(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_u64(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn small_values_take_one_byte() {
        let mut out = Vec::new();
        put_u64(&mut out, 100);
        assert_eq!(out.len(), 1);
        out.clear();
        put_u64(&mut out, 128);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn zigzag_mapping() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn i64_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut out = Vec::new();
            put_i64(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_i64(&out, &mut pos).unwrap(), v);
        }
    }

    #[test]
    fn truncated_input_errors() {
        let mut out = Vec::new();
        put_u64(&mut out, u64::MAX);
        let mut pos = 0;
        assert!(get_u64(&out[..out.len() - 1], &mut pos).is_err());
    }

    #[test]
    fn overlong_encoding_errors() {
        // 11 continuation bytes cannot be a valid u64.
        let bad = vec![0x80u8; 10];
        let mut pos = 0;
        assert!(get_u64(&bad, &mut pos).is_err());
    }
}
