//! Compression codecs.
//!
//! Two families, mirroring the paper's Section 4.1 comparison:
//!
//! * **Generic** codecs — what a database applies without understanding
//!   the data: [`varint`]/zigzag, [`delta`], [`bitpack`], [`rle`],
//!   [`dict`]ionary coding, the Gorilla-style XOR [`float`] codec, and a
//!   from-scratch [`lzss`] + [`huffman`] pipeline standing in for gzip
//!   (the SPARTAN paper's baseline; this environment has no zlib).
//! * **Semantic** codec — [`residual`]: store only the differences
//!   between model-predicted and observed values. With a well-fitted
//!   model the residual stream is near-zero and compresses far better
//!   than any generic transform, and reconstruction is bit-exact
//!   ("recompute the original dataset without loss of information").

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod float;
pub mod for_;
pub mod huffman;
pub mod lzss;
pub mod residual;
pub mod rle;
pub mod varint;

/// Outcome of compressing one buffer, for benchmark reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Input size in bytes.
    pub raw_bytes: usize,
    /// Output size in bytes.
    pub compressed_bytes: usize,
}

impl CompressionStats {
    /// `compressed / raw` — smaller is better; the paper's Table 1
    /// reports ≈ 0.05 for the LOFAR model parameters.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            return 1.0;
        }
        self.compressed_bytes as f64 / self.raw_bytes as f64
    }
}

/// Compress a byte stream with the deflate-like generic pipeline
/// (LZSS then canonical Huffman). The baseline for experiment E4.
pub fn generic_compress(data: &[u8]) -> Vec<u8> {
    huffman::encode(&lzss::compress(data))
}

/// Inverse of [`generic_compress`].
pub fn generic_decompress(data: &[u8]) -> crate::Result<Vec<u8>> {
    lzss::decompress(&huffman::decode(data)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_pipeline_roundtrip() {
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        let c = generic_compress(&data);
        assert!(c.len() < data.len() / 2, "repetitive data should compress well");
        assert_eq!(generic_decompress(&c).unwrap(), data);
    }

    #[test]
    fn generic_pipeline_handles_incompressible_data() {
        // A pseudo-random byte soup: must round-trip even if it grows.
        let data: Vec<u8> = (0..4096u64)
            .map(|i| (i.wrapping_mul(6364136223846793005).rotate_left(17) >> 32) as u8)
            .collect();
        let c = generic_compress(&data);
        assert_eq!(generic_decompress(&c).unwrap(), data);
    }

    #[test]
    fn ratio_math() {
        let s = CompressionStats { raw_bytes: 100, compressed_bytes: 5 };
        assert!((s.ratio() - 0.05).abs() < 1e-12);
        let z = CompressionStats { raw_bytes: 0, compressed_bytes: 0 };
        assert_eq!(z.ratio(), 1.0);
    }
}
