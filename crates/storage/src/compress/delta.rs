//! Delta coding for integer columns: store the first value and then
//! zigzag-varint deltas. Sorted or slowly-varying columns (row ids,
//! timestamps) collapse to ~1 byte per value.

use super::varint;
use crate::error::{Result, StorageError};

/// Encode an i64 slice as first-value + deltas.
pub fn encode(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() + 9);
    varint::put_u64(&mut out, values.len() as u64);
    let mut prev = 0i64;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            varint::put_i64(&mut out, v);
        } else {
            varint::put_i64(&mut out, v.wrapping_sub(prev));
        }
        prev = v;
    }
    out
}

/// Decode a buffer produced by [`encode`].
pub fn decode(buf: &[u8]) -> Result<Vec<i64>> {
    let mut pos = 0;
    let n = varint::get_u64(buf, &mut pos)? as usize;
    // Guard against hostile lengths before allocating.
    if n > buf.len().saturating_mul(10) {
        return Err(StorageError::CorruptData {
            codec: "delta",
            detail: format!("implausible length {n}"),
        });
    }
    let mut out = Vec::with_capacity(n);
    let mut prev = 0i64;
    for i in 0..n {
        let d = varint::get_i64(buf, &mut pos)?;
        let v = if i == 0 { d } else { prev.wrapping_add(d) };
        out.push(v);
        prev = v;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various() {
        for values in [
            vec![],
            vec![42],
            vec![1, 2, 3, 4, 5],
            vec![i64::MAX, i64::MIN, 0, -1],
            (0..1000).map(|i| i * 3 + 7).collect::<Vec<i64>>(),
        ] {
            assert_eq!(decode(&encode(&values)).unwrap(), values);
        }
    }

    #[test]
    fn sorted_ids_compress_to_about_a_byte_each() {
        let values: Vec<i64> = (0..10_000).collect();
        let enc = encode(&values);
        assert!(enc.len() < 12_000, "got {} bytes", enc.len());
        // vs 80,000 raw bytes.
    }

    #[test]
    fn wrapping_deltas_are_safe() {
        let values = vec![i64::MIN, i64::MAX];
        assert_eq!(decode(&encode(&values)).unwrap(), values);
    }

    #[test]
    fn truncation_detected() {
        let enc = encode(&[1, 2, 3]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        let mut buf = Vec::new();
        varint::put_u64(&mut buf, u64::MAX);
        assert!(decode(&buf).is_err());
    }
}
