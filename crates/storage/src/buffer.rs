//! Shared, sliceable value buffers.
//!
//! A [`Buffer`] is an `Arc`'d vector plus an `(offset, len)` window.
//! Cloning a buffer or taking a sub-slice is O(1) and never copies
//! values, which is what makes `Scan`, `project`, and morsel splitting
//! zero-copy in the executor. Mutation is copy-on-write: in-place when
//! the buffer is unshared and covers its whole allocation, otherwise
//! the window is first materialized into a fresh allocation.

use std::ops::Deref;
use std::sync::Arc;

/// A shared window onto an immutable vector of values.
#[derive(Debug, Clone)]
pub struct Buffer<T> {
    data: Arc<Vec<T>>,
    offset: usize,
    len: usize,
}

impl<T> Buffer<T> {
    /// Take ownership of a vector without copying it.
    pub fn from_vec(data: Vec<T>) -> Self {
        let len = data.len();
        Self { data: Arc::new(data), offset: 0, len }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The window as a plain slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// O(1) sub-window sharing the same allocation.
    ///
    /// Panics when `offset + len` exceeds this buffer's length, like
    /// slice indexing would.
    pub fn slice(&self, offset: usize, len: usize) -> Buffer<T> {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "buffer slice [{offset}, {offset}+{len}) out of range ({} values)",
            self.len
        );
        Buffer { data: Arc::clone(&self.data), offset: self.offset + offset, len }
    }

    /// True when both buffers are windows onto the same allocation —
    /// the zero-copy invariant tests assert on this.
    pub fn shares_allocation_with(&self, other: &Buffer<T>) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl<T: Clone> Buffer<T> {
    /// Run `f` over the owned vector (copy-on-write) and re-sync the
    /// window to cover the whole vector afterwards.
    ///
    /// When this buffer is the sole owner of its allocation and windows
    /// all of it, mutation is in place; otherwise the window is copied
    /// out first, so shared readers are never disturbed.
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut Vec<T>) -> R) -> R {
        if self.offset != 0 || self.len != self.data.len() {
            let materialized: Vec<T> = self.as_slice().to_vec();
            *self = Buffer::from_vec(materialized);
        }
        let vec = Arc::make_mut(&mut self.data);
        let r = f(vec);
        self.offset = 0;
        self.len = self.data.len();
        r
    }
}

impl<T> Deref for Buffer<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for Buffer<T> {
    fn from(v: Vec<T>) -> Self {
        Buffer::from_vec(v)
    }
}

impl<T> FromIterator<T> for Buffer<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Buffer::from_vec(iter.into_iter().collect())
    }
}

impl<'a, T> IntoIterator for &'a Buffer<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<T: PartialEq> PartialEq for Buffer<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<[T; N]> for Buffer<T> {
    fn eq(&self, other: &[T; N]) -> bool {
        self.as_slice() == other
    }
}

impl<T: PartialEq> PartialEq<&[T]> for Buffer<T> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: Default> Default for Buffer<T> {
    fn default() -> Self {
        Buffer::from_vec(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_allocation() {
        let b = Buffer::from_vec(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        let s = b.slice(1, 3);
        assert!(b.shares_allocation_with(&c));
        assert!(b.shares_allocation_with(&s));
        assert_eq!(s.as_slice(), &[2, 3, 4]);
        assert_eq!(s.slice(1, 1).as_slice(), &[3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Buffer::from_vec(vec![1, 2, 3]).slice(2, 2);
    }

    #[test]
    fn with_mut_copies_only_when_shared() {
        let mut b = Buffer::from_vec(vec![1, 2, 3]);
        let ptr_before = b.as_slice().as_ptr();
        b.with_mut(|v| v.push(4));
        // Sole owner, full window: mutation happened in place.
        assert_eq!(ptr_before, b.as_slice().as_ptr());
        assert_eq!(b.as_slice(), &[1, 2, 3, 4]);

        let shared = b.clone();
        b.with_mut(|v| v.push(5));
        // Copy-on-write: the clone is untouched.
        assert_eq!(shared.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5]);
        assert!(!b.shares_allocation_with(&shared));
    }

    #[test]
    fn with_mut_materializes_windows() {
        let base = Buffer::from_vec(vec![1, 2, 3, 4, 5]);
        let mut s = base.slice(1, 3);
        s.with_mut(|v| v.push(99));
        assert_eq!(s.as_slice(), &[2, 3, 4, 99]);
        assert_eq!(base.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn deref_gives_slice_ops() {
        let b: Buffer<i64> = vec![3, 1, 2].into();
        assert_eq!(b.iter().copied().max(), Some(3));
        assert_eq!(b[1], 1);
        assert_eq!(b.to_vec(), vec![3, 1, 2]);
    }
}
