//! Table schemas.

pub use crate::value::DataType;

/// One column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// Non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field { name: name.into(), data_type, nullable: false }
    }

    /// Nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Field {
        Field { name: name.into(), data_type, nullable: true }
    }
}

/// Ordered collection of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Schema from a field list.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column with this name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Projection of this schema onto a subset of columns (unknown names
    /// are skipped; the query planner validates names beforehand).
    pub fn project(&self, names: &[&str]) -> Schema {
        let fields = names
            .iter()
            .filter_map(|n| self.field(n))
            .cloned()
            .collect();
        Schema { fields }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("source", DataType::Int64),
            Field::new("nu", DataType::Float64),
            Field::nullable("intensity", DataType::Float64),
        ])
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("nu"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.field("intensity").unwrap().nullable);
        assert_eq!(s.names(), vec!["source", "nu", "intensity"]);
    }

    #[test]
    fn project_keeps_order_of_request() {
        let s = schema();
        let p = s.project(&["intensity", "source"]);
        assert_eq!(p.names(), vec!["intensity", "source"]);
        let q = s.project(&["nope"]);
        assert!(q.is_empty());
    }
}
