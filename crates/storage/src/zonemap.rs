//! Zone maps: per-zone min/max/null-count/constant synopses.
//!
//! A *zone* is a fixed run of rows (default [`DEFAULT_ZONE_ROWS`]). For
//! every numeric/bool column the write path records, per zone, the
//! minimum and maximum valid value, the null count, and whether the
//! zone is constant. A scan with a sargable comparison predicate can
//! then prove a zone irrelevant — no row in it can satisfy the
//! predicate — and skip it without touching the values (for paged
//! tables: without any pager IO). This is the paper's "zero-IO scan"
//! made mechanical: the synopsis answers the page-relevance question,
//! the pages themselves are never read.
//!
//! Two provenances share the representation ([`ZoneSource`]):
//!
//! * **Data** zones are exact min/max computed from the stored values.
//! * **Model** zones are `prediction ± max-absolute-residual` bounds
//!   derived from a captured model covering the column. They bound
//!   every stored value (the residual bound is computed against the
//!   same snapshot), so pruning against them is exactly as sound, but
//!   they exist *without* the column being materialized — a
//!   semantically compressed column still supports pruning.
//!
//! NaN/NULL policy: NaN values and NULL rows are excluded from min/max.
//! This is sound for pruning because a comparison predicate is never
//! *true* for a NaN or NULL operand (three-valued logic evaluates it
//! unknown, and filters only keep true rows). A zone containing only
//! NULLs/NaNs has the empty interval `(+inf, -inf)` and prunes against
//! every comparison. Note the bounds alone therefore cannot prove a
//! zone satisfies a predicate *for every row*: a NaN row hides outside
//! `[min, max]` yet fails the comparison. Whole-zone acceptance
//! ([`ZoneEntry::satisfies_all`]) additionally needs the aggregate
//! synopsis to certify the zone is NaN-free.
//!
//! Data zones also carry a per-zone **aggregate synopsis**
//! ([`ZoneAgg`]): the count of aggregate-visible values and their
//! in-row-order f64 (and, for integer sources, exact i64) sums. The
//! same exclusion rule applies — NULL rows and NaN values are invisible
//! to SQL aggregates (the expression layer maps NaN to NULL) — so an
//! accepted zone can contribute COUNT/SUM/AVG/MIN/MAX partials with
//! zero IO and zero per-row work. An all-NULL/NaN zone keeps its count
//! (zero) but carries no sums, and still aggregates correctly: it
//! contributes nothing, exactly like the scan would.

use crate::column::Column;
use crate::error::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use std::collections::BTreeMap;

/// Default zone granularity, in rows.
pub const DEFAULT_ZONE_ROWS: usize = 4096;

/// Comparison operator vocabulary shared by zone pruning and the
/// compressed-domain predicate kernels (`compress::*::eval_cmp`).
///
/// Storage cannot depend on the expression crate, so this mirrors the
/// sargable subset of its comparison ops; the query layer maps onto it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl PredOp {
    /// Apply the operator to `(lhs, rhs)`. NaN operands compare false
    /// under every operator (including `Ne`), matching the executor's
    /// three-valued logic where unknown rows never pass a filter.
    #[inline]
    pub fn eval(self, lhs: f64, rhs: f64) -> bool {
        match self {
            PredOp::Lt => lhs < rhs,
            PredOp::Le => lhs <= rhs,
            PredOp::Gt => lhs > rhs,
            PredOp::Ge => lhs >= rhs,
            PredOp::Eq => lhs == rhs,
            PredOp::Ne => !lhs.is_nan() && !rhs.is_nan() && lhs != rhs,
        }
    }

    /// Apply to a total ordering of `lhs` relative to `rhs` (integer,
    /// packed-code, and string kernels all reduce to this).
    #[inline]
    pub fn eval_ord(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            PredOp::Lt => ord == Less,
            PredOp::Le => ord != Greater,
            PredOp::Gt => ord == Greater,
            PredOp::Ge => ord != Less,
            PredOp::Eq => ord == Equal,
            PredOp::Ne => ord != Equal,
        }
    }

    /// Apply to integer operands (compressed-domain kernels).
    #[inline]
    pub fn eval_i64(self, lhs: i64, rhs: i64) -> bool {
        self.eval_ord(lhs.cmp(&rhs))
    }

    /// Apply to unsigned operands (packed-domain kernels).
    #[inline]
    pub fn eval_u64(self, lhs: u64, rhs: u64) -> bool {
        self.eval_ord(lhs.cmp(&rhs))
    }
}

/// Default selectivity for an equality predicate over a zone whose
/// value range is narrower than one unit — a continuous (floating)
/// domain, where the dense-integer `1/(width+1)` estimate degenerates.
/// The System R convention of 1/20 for equality without distinct-value
/// statistics.
const CONTINUOUS_EQ_SELECTIVITY: f64 = 0.05;

/// Per-zone aggregate synopsis: materialized partials for the
/// aggregate pushdown path.
///
/// `count` is the number of *aggregate-visible* values in the zone —
/// rows that are neither NULL nor NaN, mirroring the executor's
/// semantics where the expression layer maps NaN to NULL and SQL
/// aggregates ignore NULL. Together with [`ZoneEntry::rows`] and
/// [`ZoneEntry::null_count`] this gives the full count / non-null
/// count / visible-count triple.
///
/// `sum_f64` is the f64 sum folded **in row order** starting from
/// `0.0` — the exact order (and therefore the exact bits) a scan-time
/// accumulator produces over the same zone, which is what keeps pushed
/// answers bit-identical to full scans. `sum_i64` is the wrapping
/// exact integer sum for integer-valued sources (Int64 and Bool 0/1
/// columns); it is not subject to f64 rounding and serves consumers
/// that want exactness over bit-replay. Invariant: when `count == 0`
/// (an all-NULL/NaN zone) both sums are absent — the count is still
/// present, and aggregation stays correct because such a zone
/// contributes nothing, exactly like the scan would.
#[derive(Debug, Clone, Copy)]
pub struct ZoneAgg {
    /// Aggregate-visible values (non-NULL, non-NaN) folded into sums.
    pub count: u32,
    /// Row-order f64 sum of visible values; `None` when `count == 0`.
    /// May be non-finite (overflow to ±inf, or NaN via `inf + -inf`)
    /// even though the inputs never are.
    pub sum_f64: Option<f64>,
    /// Wrapping i64 sum for integer-valued sources; `None` for float
    /// columns or when `count == 0`.
    pub sum_i64: Option<i64>,
}

impl PartialEq for ZoneAgg {
    fn eq(&self, other: &ZoneAgg) -> bool {
        // Sums compare by bits: the whole point of the row-order fold
        // is bit-level reproducibility (and NaN sums must round-trip).
        self.count == other.count
            && self.sum_f64.map(f64::to_bits) == other.sum_f64.map(f64::to_bits)
            && self.sum_i64 == other.sum_i64
    }
}

/// Synopsis of one zone of one column.
///
/// `min > max` encodes "no bounded values" (all rows NULL/NaN, or an
/// empty zone). `min`/`max` are never NaN. Because NULL and NaN rows
/// are *excluded* from the bounds, `[min, max]` refutes predicates
/// soundly but cannot by itself certify that every row satisfies one —
/// see [`ZoneEntry::satisfies_all`] for the certified accept path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Rows in this zone (the final zone of a column may be short).
    pub rows: u32,
    /// NULL rows in this zone.
    pub null_count: u32,
    /// Minimum valid, non-NaN value (`+inf` when none).
    pub min: f64,
    /// Maximum valid, non-NaN value (`-inf` when none).
    pub max: f64,
    /// True when every row is valid and equal to `min` (== `max`).
    /// Constant zones admit whole-zone predicate evaluation: one
    /// comparison decides all rows.
    pub constant: bool,
    /// Materialized aggregate partials. `Some` for exact data zones
    /// built by the current write path; `None` for model zones (no
    /// exact values to sum) and synopses persisted before format v2.
    pub agg: Option<ZoneAgg>,
}

impl ZoneEntry {
    /// A zone with no bounded values (prunes against any comparison).
    pub fn empty(rows: u32, null_count: u32) -> ZoneEntry {
        ZoneEntry {
            rows,
            null_count,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            constant: false,
            agg: None,
        }
    }

    /// A zone whose rows are only known to lie in `[lo, hi]` (model
    /// bounds; unknown null structure, so never constant and never
    /// carrying aggregate partials).
    pub fn bounded(rows: u32, lo: f64, hi: f64) -> ZoneEntry {
        ZoneEntry { rows, null_count: 0, min: lo, max: hi, constant: false, agg: None }
    }

    /// True when the zone holds at least one bounded value.
    #[inline]
    pub fn has_values(&self) -> bool {
        self.min <= self.max
    }

    /// Could *any* row in this zone satisfy `value <op> rhs`?
    ///
    /// `false` is a proof (the zone can be skipped); `true` is merely
    /// "cannot rule it out". Sound only for predicates that no NULL or
    /// NaN row can satisfy — true of every comparison operator here.
    pub fn may_match(&self, op: PredOp, rhs: f64) -> bool {
        if rhs.is_nan() || !self.has_values() {
            return false;
        }
        match op {
            PredOp::Lt => self.min < rhs,
            PredOp::Le => self.min <= rhs,
            PredOp::Gt => self.max > rhs,
            PredOp::Ge => self.max >= rhs,
            PredOp::Eq => self.min <= rhs && rhs <= self.max,
            PredOp::Ne => !(self.min == self.max && self.min == rhs),
        }
    }

    /// For a constant zone, the single comparison that decides every
    /// row: `Some(true)` means all rows match, `Some(false)` none do.
    /// `None` when the zone is not constant (per-row evaluation
    /// required). Only meaningful for exact (`ZoneSource::Data`) zones.
    pub fn decides_all(&self, op: PredOp, rhs: f64) -> Option<bool> {
        if self.constant && self.null_count == 0 && self.rows > 0 {
            Some(op.eval(self.min, rhs))
        } else {
            None
        }
    }

    /// Does *every* row of this zone satisfy `value <op> rhs`?
    ///
    /// `true` is a proof that the zone can be accepted wholesale (the
    /// interval analogue of `decides_all(..) == Some(true)`, also valid
    /// for non-constant zones); `false` only means "cannot certify".
    ///
    /// The certificate needs more than the bounds: NULL rows and NaN
    /// values are excluded from `[min, max]` yet fail every comparison,
    /// so the zone must be proven free of both. `null_count == 0` rules
    /// out NULLs; NaN-freedom comes from the aggregate synopsis
    /// (`agg.count` counts non-NULL *non-NaN* values, so it equals
    /// `rows` exactly when no NaN hides outside the bounds) or from the
    /// `constant` flag, whose construction already excludes NaN. Model
    /// zones carry neither certificate (`bounded()` claims zero nulls
    /// without knowing the null structure) and are never accepted.
    pub fn satisfies_all(&self, op: PredOp, rhs: f64) -> bool {
        if rhs.is_nan() || self.rows == 0 || self.null_count > 0 || !self.has_values() {
            return false;
        }
        let nan_free = match &self.agg {
            Some(a) => a.count == self.rows,
            None => self.constant,
        };
        if !nan_free {
            return false;
        }
        match op {
            PredOp::Lt => self.max < rhs,
            PredOp::Le => self.max <= rhs,
            PredOp::Gt => self.min > rhs,
            PredOp::Ge => self.min >= rhs,
            PredOp::Eq => self.min == rhs && self.max == rhs,
            PredOp::Ne => self.max < rhs || self.min > rhs,
        }
    }

    /// Estimated fraction of this zone's rows satisfying `value <op> rhs`,
    /// assuming values are spread uniformly over `[min, max]`. Exact at
    /// the boundaries the zone map can prove (`0.0` when `may_match` is
    /// false, `0.0`/`1.0` when `decides_all` fires); an interpolation in
    /// between. Equality uses `1 / (width + 1)` — exact for dense
    /// stepped-integer zones — but on fractional-width (continuous)
    /// domains that formula saturates toward 1.0 as the range narrows,
    /// the opposite of how selective an equality on a continuous column
    /// actually is; those fall back to the conventional 1/20 default.
    /// NULL and NaN rows never satisfy a comparison and scale the
    /// estimate down.
    pub fn selectivity(&self, op: PredOp, rhs: f64) -> f64 {
        if self.rows == 0 || !self.may_match(op, rhs) {
            return 0.0;
        }
        if let Some(all) = self.decides_all(op, rhs) {
            return if all { 1.0 } else { 0.0 };
        }
        let valid = (self.rows - self.null_count) as f64 / self.rows as f64;
        let width = self.max - self.min;
        let eq = if !width.is_finite() {
            0.0
        } else if width < 1.0 {
            CONTINUOUS_EQ_SELECTIVITY
        } else {
            (width + 1.0).recip().min(1.0)
        };
        let frac = if !width.is_finite() {
            // Unbounded (model said nothing): even odds.
            0.5
        } else if width <= 0.0 {
            // Point interval that may_match admitted: everything matches
            // for range ops; equality/inequality resolved above unless
            // nulls/NaNs kept the zone non-constant.
            match op {
                PredOp::Eq => 1.0,
                PredOp::Ne => 0.0,
                _ => 1.0,
            }
        } else {
            match op {
                PredOp::Lt | PredOp::Le => ((rhs - self.min) / width).clamp(0.0, 1.0),
                PredOp::Gt | PredOp::Ge => ((self.max - rhs) / width).clamp(0.0, 1.0),
                PredOp::Eq => eq,
                PredOp::Ne => 1.0 - eq,
            }
        };
        (frac * valid).clamp(0.0, 1.0)
    }
}

/// Where a column's zone bounds came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneSource {
    /// Exact min/max computed from stored values at write time.
    Data,
    /// `prediction ± max-abs-residual` bounds from a captured model.
    Model,
}

/// The zone map of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnZones {
    /// Provenance of the bounds.
    pub source: ZoneSource,
    /// Zone granularity in rows.
    pub zone_rows: usize,
    /// One entry per zone, in row order.
    pub entries: Vec<ZoneEntry>,
}

impl ColumnZones {
    /// Build exact data zones for a column. Strings carry no usable
    /// bounds for numeric comparison pruning and return `None`.
    pub fn build(col: &Column, zone_rows: usize) -> Option<ColumnZones> {
        assert!(zone_rows > 0, "zone_rows must be positive");
        let n = col.len();
        let validity = col.validity();
        let all_valid = validity.all_set();
        let value_at: Box<dyn Fn(usize) -> f64> = match col {
            Column::Int64 { data, .. } => Box::new(move |i| data[i] as f64),
            Column::Float64 { data, .. } => Box::new(move |i| data[i]),
            Column::Bool { data, .. } => {
                Box::new(move |i| if data.get(i) { 1.0 } else { 0.0 })
            }
            Column::Str { .. } => return None,
        };
        // Exact integer view for the wrapping i64 sum; floats have none.
        let int_at: Option<Box<dyn Fn(usize) -> i64>> = match col {
            Column::Int64 { data, .. } => Some(Box::new(move |i| data[i])),
            Column::Bool { data, .. } => Some(Box::new(move |i| data.get(i) as i64)),
            _ => None,
        };
        let mut entries = Vec::with_capacity(n.div_ceil(zone_rows).max(1));
        let mut start = 0;
        loop {
            let end = (start + zone_rows).min(n);
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut nulls = 0u32;
            let mut saw_nan = false;
            let mut count = 0u32;
            let mut sum_f = 0.0f64;
            let mut sum_i = 0i64;
            for i in start..end {
                if !all_valid && !validity.get(i) {
                    nulls += 1;
                    continue;
                }
                let v = value_at(i);
                if v.is_nan() {
                    // NaN never satisfies a comparison and is invisible
                    // to aggregates (the expression layer maps it to
                    // NULL); exclude it from the bounds and the sums but
                    // poison the constant flag.
                    saw_nan = true;
                    continue;
                }
                if v < min {
                    min = v;
                }
                if v > max {
                    max = v;
                }
                // Row-order fold from 0.0: bitwise the same sum a
                // scan-time accumulator computes over this zone.
                count += 1;
                sum_f += v;
                if let Some(ia) = &int_at {
                    sum_i = sum_i.wrapping_add(ia(i));
                }
            }
            // Constant ⇔ every row is valid, non-NaN, and equal.
            let constant = end > start && nulls == 0 && !saw_nan && min == max;
            let agg = ZoneAgg {
                count,
                sum_f64: (count > 0).then_some(sum_f),
                sum_i64: (count > 0 && int_at.is_some()).then_some(sum_i),
            };
            entries.push(ZoneEntry {
                rows: (end - start) as u32,
                null_count: nulls,
                min,
                max,
                constant,
                agg: Some(agg),
            });
            start = end;
            if start >= n {
                break;
            }
        }
        Some(ColumnZones { source: ZoneSource::Data, zone_rows, entries })
    }

    /// Build model-provenance zones from per-row predictions and a max
    /// absolute residual: every stored value of row `i` lies in
    /// `[pred[i] - bound, pred[i] + bound]`. Rows with non-finite
    /// predictions make their zone unbounded (never prunable) — the
    /// model says nothing about them.
    pub fn from_model_bounds(preds: &[f64], bound: f64, zone_rows: usize) -> ColumnZones {
        assert!(zone_rows > 0, "zone_rows must be positive");
        let n = preds.len();
        let mut entries = Vec::with_capacity(n.div_ceil(zone_rows).max(1));
        let mut start = 0;
        loop {
            let end = (start + zone_rows).min(n);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            let mut unbounded = false;
            for &p in &preds[start..end] {
                if !p.is_finite() {
                    unbounded = true;
                    break;
                }
                if p < lo {
                    lo = p;
                }
                if p > hi {
                    hi = p;
                }
            }
            let entry = if unbounded || !bound.is_finite() {
                ZoneEntry::bounded((end - start) as u32, f64::NEG_INFINITY, f64::INFINITY)
            } else if lo > hi {
                ZoneEntry::empty((end - start) as u32, 0)
            } else {
                ZoneEntry::bounded((end - start) as u32, lo - bound, hi + bound)
            };
            entries.push(entry);
            start = end;
            if start >= n {
                break;
            }
        }
        ColumnZones { source: ZoneSource::Model, zone_rows, entries }
    }

    /// Total rows covered.
    pub fn row_count(&self) -> usize {
        self.entries.iter().map(|e| e.rows as usize).sum()
    }

    /// Row range `[start, end)` of zone `zi`.
    pub fn zone_range(&self, zi: usize) -> (usize, usize) {
        let start = zi * self.zone_rows;
        (start, start + self.entries[zi].rows as usize)
    }

    /// Indices of the zones overlapping rows `[offset, offset + len)`.
    pub fn zones_for(&self, offset: usize, len: usize) -> std::ops::Range<usize> {
        if len == 0 {
            return 0..0;
        }
        let first = offset / self.zone_rows;
        let last = (offset + len - 1) / self.zone_rows;
        first.min(self.entries.len())..(last + 1).min(self.entries.len())
    }

    /// Could any row in `[offset, offset + len)` satisfy the predicate?
    pub fn range_may_match(&self, offset: usize, len: usize, op: PredOp, rhs: f64) -> bool {
        self.zones_for(offset, len).any(|zi| self.entries[zi].may_match(op, rhs))
    }

    /// Row-weighted selectivity estimate for `column <op> rhs` over the
    /// whole column: the expected fraction of rows satisfying the
    /// predicate, combining per-zone uniform interpolation with the
    /// zone map's hard refutations (skipped zones contribute zero).
    pub fn estimate_selectivity(&self, op: PredOp, rhs: f64) -> f64 {
        let total: u64 = self.entries.iter().map(|e| e.rows as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let expected: f64 = self
            .entries
            .iter()
            .map(|e| e.selectivity(op, rhs) * e.rows as f64)
            .sum();
        (expected / total as f64).clamp(0.0, 1.0)
    }
}

/// Zone maps for a whole table, keyed by column name.
///
/// Built at write time ([`crate::table::TableBuilder::build`],
/// [`crate::table::Table::append_rows`]) and persisted alongside the
/// paged representation by [`crate::pager::Pager::store_table`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TableSynopsis {
    columns: BTreeMap<String, ColumnZones>,
}

impl TableSynopsis {
    /// Empty synopsis.
    pub fn new() -> TableSynopsis {
        TableSynopsis::default()
    }

    /// Zones for `column`, if any.
    pub fn column(&self, column: &str) -> Option<&ColumnZones> {
        self.columns.get(column)
    }

    /// Insert (or replace) the zones of one column.
    pub fn insert(&mut self, column: impl Into<String>, zones: ColumnZones) {
        self.columns.insert(column.into(), zones);
    }

    /// Remove one column's zones (projection path).
    pub fn remove(&mut self, column: &str) -> Option<ColumnZones> {
        self.columns.remove(column)
    }

    /// True when no column carries zones.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Iterate `(column, zones)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ColumnZones)> {
        self.columns.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Selectivity estimate for `column <op> rhs`, or `None` when the
    /// column carries no zones (strings, or synopsis never built).
    pub fn estimate_selectivity(&self, column: &str, op: PredOp, rhs: f64) -> Option<f64> {
        self.columns.get(column).map(|z| z.estimate_selectivity(op, rhs))
    }

    /// Serialize for persistence alongside the paged table.
    ///
    /// Format v2: the 25-byte fixed entry of v1 (`rows`, `null_count`,
    /// `min`, `max`, `constant`) followed by an aggregate-synopsis tag:
    /// `0` = none, `1` = count only (all-NULL/NaN zone: sums absent),
    /// `2` = count + f64 sum, `3` = count + f64 + i64 sums.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(b"ZMAP");
        buf.put_u8(2); // version
        buf.put_u32_le(self.columns.len() as u32);
        for (name, zones) in &self.columns {
            buf.put_u32_le(name.len() as u32);
            buf.put_slice(name.as_bytes());
            buf.put_u8(match zones.source {
                ZoneSource::Data => 0,
                ZoneSource::Model => 1,
            });
            buf.put_u64_le(zones.zone_rows as u64);
            buf.put_u32_le(zones.entries.len() as u32);
            for e in &zones.entries {
                buf.put_u32_le(e.rows);
                buf.put_u32_le(e.null_count);
                buf.put_f64_le(e.min);
                buf.put_f64_le(e.max);
                buf.put_u8(e.constant as u8);
                match &e.agg {
                    None => buf.put_u8(0),
                    Some(a) => {
                        match (a.sum_f64, a.sum_i64) {
                            (None, _) => {
                                buf.put_u8(1);
                                buf.put_u32_le(a.count);
                            }
                            (Some(f), None) => {
                                buf.put_u8(2);
                                buf.put_u32_le(a.count);
                                buf.put_f64_le(f);
                            }
                            (Some(f), Some(i)) => {
                                buf.put_u8(3);
                                buf.put_u32_le(a.count);
                                buf.put_f64_le(f);
                                buf.put_i64_le(i);
                            }
                        };
                    }
                }
            }
        }
        buf.to_vec()
    }

    /// Deserialize; corruption is an error, never a panic. Accepts the
    /// current v2 format and legacy v1 synopses (whose entries carry no
    /// aggregate partials: `agg` comes back `None` and the read path
    /// simply scans instead of pushing down).
    pub fn from_bytes(bytes: &[u8]) -> Result<TableSynopsis> {
        let corrupt = |detail: &str| StorageError::CorruptData {
            codec: "zonemap",
            detail: detail.to_string(),
        };
        let mut buf = bytes;
        if buf.remaining() < 9 {
            return Err(corrupt("truncated header"));
        }
        if &buf[..4] != b"ZMAP" {
            return Err(corrupt("bad magic"));
        }
        buf.advance(4);
        let version = buf.get_u8();
        if version != 1 && version != 2 {
            return Err(corrupt("unknown version"));
        }
        let ncols = buf.get_u32_le() as usize;
        let mut columns = BTreeMap::new();
        for _ in 0..ncols {
            if buf.remaining() < 4 {
                return Err(corrupt("truncated column name length"));
            }
            let nlen = buf.get_u32_le() as usize;
            if buf.remaining() < nlen {
                return Err(corrupt("truncated column name"));
            }
            let name = std::str::from_utf8(&buf[..nlen])
                .map_err(|_| corrupt("column name is not UTF-8"))?
                .to_string();
            buf.advance(nlen);
            if buf.remaining() < 13 {
                return Err(corrupt("truncated column zone header"));
            }
            let source = match buf.get_u8() {
                0 => ZoneSource::Data,
                1 => ZoneSource::Model,
                _ => return Err(corrupt("bad zone source tag")),
            };
            let zone_rows = buf.get_u64_le() as usize;
            if zone_rows == 0 {
                return Err(corrupt("zero zone_rows"));
            }
            let nentries = buf.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(nentries.min(4096));
            for _ in 0..nentries {
                if buf.remaining() < 25 {
                    return Err(corrupt("truncated zone entries"));
                }
                let rows = buf.get_u32_le();
                let null_count = buf.get_u32_le();
                let min = buf.get_f64_le();
                let max = buf.get_f64_le();
                let constant = match buf.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(corrupt("bad constant flag")),
                };
                if min.is_nan() || max.is_nan() {
                    return Err(corrupt("NaN zone bound"));
                }
                if null_count > rows {
                    return Err(corrupt("null_count exceeds rows"));
                }
                let agg = if version >= 2 {
                    if buf.remaining() < 1 {
                        return Err(corrupt("truncated agg tag"));
                    }
                    let tag = buf.get_u8();
                    match tag {
                        0 => None,
                        1..=3 => {
                            let need = match tag {
                                1 => 4,
                                2 => 12,
                                _ => 20,
                            };
                            if buf.remaining() < need {
                                return Err(corrupt("truncated agg partials"));
                            }
                            let count = buf.get_u32_le();
                            let sum_f64 = (tag >= 2).then(|| buf.get_f64_le());
                            let sum_i64 = (tag == 3).then(|| buf.get_i64_le());
                            if tag == 1 && count > 0 {
                                return Err(corrupt("agg count without sums"));
                            }
                            if tag >= 2 && count == 0 {
                                return Err(corrupt("agg sums without count"));
                            }
                            if count > rows - null_count {
                                return Err(corrupt("agg count exceeds valid rows"));
                            }
                            Some(ZoneAgg { count, sum_f64, sum_i64 })
                        }
                        _ => return Err(corrupt("bad agg tag")),
                    }
                } else {
                    None
                };
                entries.push(ZoneEntry { rows, null_count, min, max, constant, agg });
            }
            columns.insert(name, ColumnZones { source, zone_rows, entries });
        }
        Ok(TableSynopsis { columns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zones(col: &Column, zone_rows: usize) -> ColumnZones {
        ColumnZones::build(col, zone_rows).unwrap()
    }

    #[test]
    fn build_records_min_max_per_zone() {
        let c = Column::from_i64((0..10).collect());
        let z = zones(&c, 4);
        assert_eq!(z.entries.len(), 3);
        assert_eq!((z.entries[0].min, z.entries[0].max), (0.0, 3.0));
        assert_eq!((z.entries[1].min, z.entries[1].max), (4.0, 7.0));
        assert_eq!((z.entries[2].min, z.entries[2].max), (8.0, 9.0));
        assert_eq!(z.entries[2].rows, 2);
        assert_eq!(z.row_count(), 10);
    }

    #[test]
    fn nulls_and_nans_are_excluded_from_bounds() {
        let c = Column::from_f64_opt(vec![
            Some(1.0),
            None,
            Some(f64::NAN),
            Some(-2.0),
        ]);
        let z = zones(&c, 4);
        let e = &z.entries[0];
        assert_eq!((e.min, e.max), (-2.0, 1.0));
        assert_eq!(e.null_count, 1);
        assert!(!e.constant);
    }

    #[test]
    fn all_null_zone_prunes_everything() {
        let c = Column::from_f64_opt(vec![None, None, None]);
        let z = zones(&c, 4);
        let e = &z.entries[0];
        assert!(!e.has_values());
        for op in [PredOp::Lt, PredOp::Le, PredOp::Gt, PredOp::Ge, PredOp::Eq, PredOp::Ne] {
            assert!(!e.may_match(op, 0.0), "{op:?}");
        }
    }

    #[test]
    fn constant_zone_detected_and_decides_all() {
        let c = Column::from_i64(vec![7, 7, 7, 7, 7, 8]);
        let z = zones(&c, 4);
        assert!(z.entries[0].constant);
        assert_eq!(z.entries[0].decides_all(PredOp::Eq, 7.0), Some(true));
        assert_eq!(z.entries[0].decides_all(PredOp::Gt, 7.0), Some(false));
        assert!(!z.entries[1].constant);
        assert_eq!(z.entries[1].decides_all(PredOp::Eq, 7.0), None);
    }

    #[test]
    fn constant_with_nulls_does_not_decide_all() {
        let c = Column::from_i64_opt(vec![Some(5), None, Some(5)]);
        let z = zones(&c, 4);
        assert!(!z.entries[0].constant);
        assert_eq!(z.entries[0].decides_all(PredOp::Eq, 5.0), None);
    }

    #[test]
    fn may_match_interval_logic() {
        let e = ZoneEntry { rows: 4, null_count: 0, min: 10.0, max: 20.0, constant: false, agg: None };
        assert!(!e.may_match(PredOp::Lt, 10.0));
        assert!(e.may_match(PredOp::Le, 10.0));
        assert!(e.may_match(PredOp::Lt, 10.5));
        assert!(!e.may_match(PredOp::Gt, 20.0));
        assert!(e.may_match(PredOp::Ge, 20.0));
        assert!(e.may_match(PredOp::Eq, 15.0));
        assert!(!e.may_match(PredOp::Eq, 21.0));
        assert!(e.may_match(PredOp::Ne, 15.0));
        // NaN literal: no row can satisfy any comparison against it.
        assert!(!e.may_match(PredOp::Lt, f64::NAN));
        // Constant zone and != its value: provably empty.
        let k = ZoneEntry { rows: 4, null_count: 0, min: 3.0, max: 3.0, constant: true, agg: None };
        assert!(!k.may_match(PredOp::Ne, 3.0));
        assert!(k.may_match(PredOp::Ne, 4.0));
    }

    #[test]
    fn strings_have_no_zones() {
        assert!(ColumnZones::build(&Column::from_str(vec!["a".into()]), 4).is_none());
    }

    #[test]
    fn bool_zones_are_zero_one() {
        let c = Column::from_bool(&[true, false, true]);
        let z = zones(&c, 4);
        assert_eq!((z.entries[0].min, z.entries[0].max), (0.0, 1.0));
    }

    #[test]
    fn zones_for_maps_row_ranges() {
        let c = Column::from_i64((0..100).collect());
        let z = zones(&c, 10);
        assert_eq!(z.zones_for(0, 10), 0..1);
        assert_eq!(z.zones_for(5, 10), 0..2);
        assert_eq!(z.zones_for(95, 5), 9..10);
        assert_eq!(z.zones_for(0, 100), 0..10);
        assert_eq!(z.zones_for(50, 0), 0..0);
        assert_eq!(z.zone_range(3), (30, 40));
    }

    #[test]
    fn range_may_match_consults_only_overlapping_zones() {
        let c = Column::from_i64((0..100).collect());
        let z = zones(&c, 10);
        // Rows 0..10 hold 0..=9: v > 50 cannot match there…
        assert!(!z.range_may_match(0, 10, PredOp::Gt, 50.0));
        // …but the whole table can.
        assert!(z.range_may_match(0, 100, PredOp::Gt, 50.0));
    }

    #[test]
    fn model_bounds_widen_by_residual() {
        let preds = vec![10.0, 12.0, 30.0, 31.0];
        let z = ColumnZones::from_model_bounds(&preds, 0.5, 2);
        assert_eq!(z.source, ZoneSource::Model);
        assert_eq!((z.entries[0].min, z.entries[0].max), (9.5, 12.5));
        assert_eq!((z.entries[1].min, z.entries[1].max), (29.5, 31.5));
        // Model zones never claim constantness.
        assert_eq!(z.entries[0].decides_all(PredOp::Eq, 10.0), None);
    }

    #[test]
    fn non_finite_predictions_make_zone_unprunable() {
        let preds = vec![1.0, f64::NAN];
        let z = ColumnZones::from_model_bounds(&preds, 0.1, 2);
        assert!(z.entries[0].may_match(PredOp::Gt, 1e300));
        assert!(z.entries[0].may_match(PredOp::Lt, -1e300));
    }

    #[test]
    fn synopsis_roundtrips_through_bytes() {
        let mut s = TableSynopsis::new();
        s.insert("a", zones(&Column::from_i64((0..10).collect()), 4));
        s.insert(
            "b",
            ColumnZones::from_model_bounds(&[1.0, 2.0, f64::INFINITY], 0.25, 2),
        );
        let bytes = s.to_bytes();
        let back = TableSynopsis::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn corrupt_synopsis_is_rejected_not_panicking() {
        let mut s = TableSynopsis::new();
        s.insert("a", zones(&Column::from_i64((0..10).collect()), 4));
        let bytes = s.to_bytes();
        assert!(TableSynopsis::from_bytes(&[]).is_err());
        assert!(TableSynopsis::from_bytes(b"XMAP").is_err());
        for cut in 1..bytes.len() {
            assert!(TableSynopsis::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[4] = 9; // version
        assert!(TableSynopsis::from_bytes(&bad).is_err());
    }

    #[test]
    fn selectivity_interpolates_and_respects_proofs() {
        let e = ZoneEntry { rows: 100, null_count: 0, min: 0.0, max: 100.0, constant: false, agg: None };
        // Hard refutation → exactly zero.
        assert_eq!(e.selectivity(PredOp::Gt, 200.0), 0.0);
        // Linear interpolation on ranges.
        let lt = e.selectivity(PredOp::Lt, 25.0);
        assert!((lt - 0.25).abs() < 1e-9, "{lt}");
        let ge = e.selectivity(PredOp::Ge, 75.0);
        assert!((ge - 0.25).abs() < 1e-9, "{ge}");
        // Equality: 1/(width+1) heuristic, small but nonzero.
        let eq = e.selectivity(PredOp::Eq, 50.0);
        assert!(eq > 0.0 && eq < 0.05, "{eq}");
        // On a fractional-width (continuous) domain the integer
        // heuristic would claim ~0.94; the default kicks in instead.
        let f = ZoneEntry { rows: 100, null_count: 0, min: 0.12, max: 0.18, constant: false, agg: None };
        assert_eq!(f.selectivity(PredOp::Eq, 0.15), 0.05);
        assert_eq!(f.selectivity(PredOp::Ne, 0.15), 0.95);
        // Constant zones decide exactly.
        let k = ZoneEntry { rows: 10, null_count: 0, min: 7.0, max: 7.0, constant: true, agg: None };
        assert_eq!(k.selectivity(PredOp::Eq, 7.0), 1.0);
        assert_eq!(k.selectivity(PredOp::Eq, 8.0), 0.0);
        // NULLs scale the estimate down.
        let h = ZoneEntry { rows: 10, null_count: 5, min: 0.0, max: 10.0, constant: false, agg: None };
        assert!(h.selectivity(PredOp::Ge, 0.0) <= 0.5 + 1e-9);
    }

    #[test]
    fn column_selectivity_is_row_weighted() {
        let c = Column::from_i64((0..100).collect());
        let z = zones(&c, 10);
        // v < 50 ≈ half the rows; zones 5..10 are refuted outright.
        let s = z.estimate_selectivity(PredOp::Lt, 50.0);
        assert!((s - 0.5).abs() < 0.06, "{s}");
        let none = z.estimate_selectivity(PredOp::Gt, 1000.0);
        assert_eq!(none, 0.0);
        let mut syn = TableSynopsis::new();
        syn.insert("a", z);
        assert!(syn.estimate_selectivity("a", PredOp::Lt, 50.0).is_some());
        assert!(syn.estimate_selectivity("missing", PredOp::Lt, 50.0).is_none());
    }

    #[test]
    fn empty_column_gets_one_empty_zone() {
        let c = Column::from_i64(vec![]);
        let z = zones(&c, 4);
        assert_eq!(z.entries.len(), 1);
        assert!(!z.entries[0].has_values());
        assert_eq!(z.row_count(), 0);
    }

    #[test]
    fn build_materializes_row_order_aggregate_partials() {
        let c = Column::from_i64(vec![1, 2, 3, 4, 10, 20]);
        let z = zones(&c, 4);
        let a0 = z.entries[0].agg.unwrap();
        assert_eq!((a0.count, a0.sum_f64, a0.sum_i64), (4, Some(10.0), Some(10)));
        let a1 = z.entries[1].agg.unwrap();
        assert_eq!((a1.count, a1.sum_f64, a1.sum_i64), (2, Some(30.0), Some(30)));
        // Floats carry no i64 sum.
        let f = zones(&Column::from_f64(vec![0.5, 1.5]), 4);
        let af = f.entries[0].agg.unwrap();
        assert_eq!((af.count, af.sum_f64, af.sum_i64), (2, Some(2.0), None));
        // Bools sum as 0/1 with an exact integer view.
        let b = zones(&Column::from_bool(&[true, false, true]), 4);
        let ab = b.entries[0].agg.unwrap();
        assert_eq!((ab.count, ab.sum_f64, ab.sum_i64), (3, Some(2.0), Some(2)));
    }

    #[test]
    fn agg_excludes_nulls_and_nans_like_the_executor() {
        // NaN is aggregate-invisible (the expression layer maps it to
        // NULL), so the visible count differs from rows - null_count.
        let c = Column::from_f64_opt(vec![Some(1.0), None, Some(f64::NAN), Some(-2.0)]);
        let z = zones(&c, 4);
        let e = &z.entries[0];
        let a = e.agg.unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.sum_f64, Some(-1.0));
        assert!(a.count < e.rows - e.null_count, "NaN must not count");
    }

    #[test]
    fn all_null_zone_keeps_count_but_no_sums() {
        let c = Column::from_f64_opt(vec![None, None, None]);
        let z = zones(&c, 4);
        let e = &z.entries[0];
        let a = e.agg.unwrap();
        assert_eq!((a.count, a.sum_f64, a.sum_i64), (0, None, None));
        // And an all-NaN zone looks the same to aggregates.
        let n = zones(&Column::from_f64(vec![f64::NAN, f64::NAN]), 4);
        let an = n.entries[0].agg.unwrap();
        assert_eq!((an.count, an.sum_f64), (0, None));
    }

    #[test]
    fn negative_zero_sums_match_the_accumulator_fold() {
        // The fold starts from +0.0 exactly like a scan-time
        // accumulator, so `0.0 + -0.0 = +0.0` applies to the first
        // value too: a zone of -0.0s sums to +0.0 in both places —
        // bitwise agreement is what matters, not sign preservation.
        let z = zones(&Column::from_f64(vec![-0.0, -0.0]), 4);
        let a = z.entries[0].agg.unwrap();
        assert_eq!(a.sum_f64.map(f64::to_bits), Some(0.0f64.to_bits()));
        // Bitwise equality still distinguishes genuinely different sums
        // (a -0.0 sum can arrive via hand-built synopses).
        let neg = ZoneAgg { sum_f64: Some(-0.0), ..a };
        assert_ne!(neg, a);
        // min/max keep-first folds preserve -0.0 (-0.0 < 0.0 is false,
        // so the first-seen zero wins) — again matching the scan.
        let p = zones(&Column::from_f64(vec![0.0, -0.0]), 4);
        assert_eq!(p.entries[0].min.to_bits(), 0.0f64.to_bits());
        let q = zones(&Column::from_f64(vec![-0.0, 0.0]), 4);
        assert_eq!(q.entries[0].min.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn integer_sums_wrap_instead_of_truncating() {
        let c = Column::from_i64(vec![i64::MAX, 1]);
        let z = zones(&c, 4);
        let a = z.entries[0].agg.unwrap();
        assert_eq!(a.sum_i64, Some(i64::MIN));
        // The f64 fold rounds; the i64 view is the exact complement.
        assert_eq!(a.sum_f64, Some(i64::MAX as f64 + 1.0));
    }

    #[test]
    fn model_zones_carry_no_aggregate_partials() {
        let z = ColumnZones::from_model_bounds(&[1.0, 2.0], 0.5, 2);
        assert!(z.entries.iter().all(|e| e.agg.is_none()));
    }

    #[test]
    fn satisfies_all_certifies_interval_accepts() {
        let c = Column::from_i64(vec![10, 11, 12, 13]);
        let z = zones(&c, 4);
        let e = &z.entries[0];
        assert!(e.satisfies_all(PredOp::Ge, 10.0));
        assert!(e.satisfies_all(PredOp::Lt, 14.0));
        assert!(e.satisfies_all(PredOp::Ne, 20.0));
        assert!(!e.satisfies_all(PredOp::Gt, 10.0), "min row fails");
        assert!(!e.satisfies_all(PredOp::Eq, 10.0), "non-constant");
        assert!(!e.satisfies_all(PredOp::Ge, f64::NAN));
    }

    #[test]
    fn satisfies_all_requires_null_and_nan_freedom() {
        // One NULL: the NULL row fails every comparison.
        let with_null = zones(&Column::from_i64_opt(vec![Some(1), None]), 4);
        assert!(!with_null.entries[0].satisfies_all(PredOp::Ge, 0.0));
        // One NaN: hides outside the bounds, fails every comparison.
        let with_nan = zones(&Column::from_f64(vec![1.0, f64::NAN]), 4);
        assert!(!with_nan.entries[0].satisfies_all(PredOp::Ge, 0.0));
        // Model zones have no certificate at all.
        let model = ColumnZones::from_model_bounds(&[5.0, 6.0], 0.0, 2);
        assert!(!model.entries[0].satisfies_all(PredOp::Ge, 0.0));
        // Legacy entries without agg: only the constant flag certifies.
        let legacy = ZoneEntry {
            rows: 4,
            null_count: 0,
            min: 1.0,
            max: 2.0,
            constant: false,
            agg: None,
        };
        assert!(!legacy.satisfies_all(PredOp::Ge, 0.0));
        let konst = ZoneEntry { constant: true, max: 1.0, ..legacy };
        assert!(konst.satisfies_all(PredOp::Ge, 0.0));
    }

    #[test]
    fn v2_roundtrip_preserves_aggregate_partials() {
        let mut s = TableSynopsis::new();
        s.insert("i", zones(&Column::from_i64(vec![1, 2, 3, 4, 5]), 2));
        s.insert("f", zones(&Column::from_f64_opt(vec![Some(-0.0), None, None, None]), 2));
        s.insert("m", ColumnZones::from_model_bounds(&[1.0, 2.0], 0.25, 2));
        let back = TableSynopsis::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(back, s);
        // NaN sums (inf + -inf overflow artifacts) round-trip by bits.
        let mut z = zones(&Column::from_f64(vec![1.0]), 2);
        z.entries[0].agg = Some(ZoneAgg {
            count: 1,
            sum_f64: Some(f64::NAN),
            sum_i64: None,
        });
        let mut s2 = TableSynopsis::new();
        s2.insert("n", z);
        let back2 = TableSynopsis::from_bytes(&s2.to_bytes()).unwrap();
        assert_eq!(back2, s2);
    }

    #[test]
    fn legacy_v1_synopses_decode_without_partials() {
        // Hand-build a v1 image: same layout, no agg tag per entry.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"ZMAP");
        buf.push(1); // version
        buf.extend_from_slice(&1u32.to_le_bytes()); // one column
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(b'a');
        buf.push(0); // ZoneSource::Data
        buf.extend_from_slice(&4u64.to_le_bytes()); // zone_rows
        buf.extend_from_slice(&1u32.to_le_bytes()); // one entry
        buf.extend_from_slice(&3u32.to_le_bytes()); // rows
        buf.extend_from_slice(&0u32.to_le_bytes()); // null_count
        buf.extend_from_slice(&1.0f64.to_le_bytes());
        buf.extend_from_slice(&2.0f64.to_le_bytes());
        buf.push(0); // constant
        let s = TableSynopsis::from_bytes(&buf).unwrap();
        let e = &s.column("a").unwrap().entries[0];
        assert_eq!((e.rows, e.min, e.max), (3, 1.0, 2.0));
        assert!(e.agg.is_none(), "v1 entries carry no partials");
    }

    #[test]
    fn inconsistent_agg_partials_are_rejected() {
        let mut s = TableSynopsis::new();
        s.insert("a", zones(&Column::from_i64(vec![1, 2]), 4));
        let good = s.to_bytes();
        // The entry sits at the end: ...25 fixed bytes, tag, count, sums.
        // Corrupt the count (4 bytes after the tag) to exceed the rows.
        let mut bad = good.clone();
        let count_at = bad.len() - 20; // tag-3 entry tail: count, f64, i64
        bad[count_at..count_at + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(TableSynopsis::from_bytes(&bad).is_err());
        // An unknown agg tag is corruption, not silence.
        let mut badtag = good;
        let tag_at = badtag.len() - 21;
        badtag[tag_at] = 7;
        assert!(TableSynopsis::from_bytes(&badtag).is_err());
    }
}
