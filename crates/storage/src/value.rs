//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The data types LawsDB columns can hold.
///
/// The paper's running example needs exactly integers (source
/// identifiers), floats (frequency, intensity) and, for the TPC-DS-style
/// retail workload, strings and booleans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Type name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Str => "Str",
            DataType::Bool => "Bool",
        }
    }

    /// True for the numeric types models can be fitted over.
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically-typed scalar, used at API boundaries (query results,
/// point lookups); bulk data stays in typed column buffers.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type; `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int64),
            Value::Float(_) => Some(DataType::Float64),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints widen to floats, booleans to 0/1; `None` for
    /// NULL and strings. This is the coercion query predicates use.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Null | Value::Str(_) => None,
        }
    }

    /// Integer view without loss; floats must be whole numbers in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f)
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
            {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison: NULL compares as unknown (`None`); numeric
    /// types compare by value across Int/Float; mismatched non-numeric
    /// types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                // Keep integral floats distinguishable from ints.
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Float(4.0).as_i64(), Some(4));
        assert_eq!(Value::Float(4.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
    }

    #[test]
    fn sql_cmp_crosses_numeric_types() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(1).sql_cmp(&Value::Float(1.5)), Some(Ordering::Less));
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Float(5.0).to_string(), "5.0");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn data_type_properties() {
        assert!(DataType::Int64.is_numeric());
        assert!(DataType::Float64.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int64));
        assert_eq!(Value::Null.data_type(), None);
    }
}
