//! Deterministic bounded-backoff retry for device reads.
//!
//! Real devices fail two ways: permanently (dead disk — the crash
//! matrix's territory) and transiently (a glitching link that heals on
//! the next attempt). [`RetryingDevice`] wraps any [`BlockDevice`] and
//! re-issues failed *reads* under a [`RetryPolicy`]: a fixed number of
//! attempts with exponential backoff, every delay a pure function of
//! the attempt index so a logged schedule replays exactly. Writes are
//! never retried — write atomicity belongs to the WAL, and re-issuing a
//! possibly-partial write could corrupt twice.
//!
//! Only [`StorageError::Io`] is considered retryable; structural
//! errors (`PageNotFound`, …) are permanent and surface immediately.
//! When the budget is exhausted the *last* IO error is returned, so a
//! permanently dead device still yields a structured error after a
//! bounded number of attempts rather than hanging.

use crate::error::{Result, StorageError};
use crate::io::{BlockDevice, IoStats};
use lawsdb_obs::{event, global_metrics, Counter};
use std::sync::Arc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How many times to attempt a read and how long to wait in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per read, including the first (1 = no retry).
    pub max_attempts: u32,
    /// Backoff before the first retry, in microseconds.
    pub base_delay_us: u64,
    /// Backoff ceiling, in microseconds.
    pub max_delay_us: u64,
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_delay_us: 0, max_delay_us: 0 }
    }

    /// The default read policy: 4 attempts, 50 µs doubling to 400 µs.
    /// Enough to ride out a transient run (the injector's worst case is
    /// 3 consecutive failures) while a dead device costs < 1 ms extra.
    pub fn default_reads() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, base_delay_us: 50, max_delay_us: 400 }
    }

    /// Backoff before retry number `retry` (1-based: the wait between
    /// attempt N and attempt N+1). Pure and deterministic: doubles from
    /// `base_delay_us`, capped at `max_delay_us`.
    pub fn delay_for(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(32);
        let us = self
            .base_delay_us
            .saturating_mul(1u64 << exp)
            .min(self.max_delay_us);
        Duration::from_micros(us)
    }
}

/// Snapshot of a [`RetryingDevice`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Individual read attempts issued to the inner device.
    pub read_attempts: u64,
    /// Attempts beyond the first (i.e. actual retries).
    pub retries: u64,
    /// Reads that failed at least once and then succeeded.
    pub recovered: u64,
    /// Reads that failed every attempt and surfaced an error.
    pub exhausted: u64,
}

/// A [`BlockDevice`] wrapper that retries failed reads under a
/// [`RetryPolicy`]. Writes, allocation and stats pass straight through.
#[derive(Debug)]
pub struct RetryingDevice<D: BlockDevice> {
    inner: D,
    policy: RetryPolicy,
    read_attempts: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    exhausted: AtomicU64,
    // DB-wide mirrors in the global registry, resolved once here so the
    // read path pays one atomic add, not a name lookup.
    g_retries: Arc<Counter>,
    g_recovered: Arc<Counter>,
    g_exhausted: Arc<Counter>,
}

impl<D: BlockDevice> RetryingDevice<D> {
    /// Wrap `inner` under `policy`.
    pub fn new(inner: D, policy: RetryPolicy) -> RetryingDevice<D> {
        let reg = global_metrics();
        RetryingDevice {
            inner,
            policy,
            read_attempts: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            g_retries: reg.counter("lawsdb_storage_retry_attempts"),
            g_recovered: reg.counter("lawsdb_storage_retry_recovered"),
            g_exhausted: reg.counter("lawsdb_storage_retry_exhausted"),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    /// Retry counters so far.
    pub fn retry_stats(&self) -> RetryStats {
        RetryStats {
            read_attempts: self.read_attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
        }
    }

    /// Borrow the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Surrender the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    fn retryable(err: &StorageError) -> bool {
        matches!(err, StorageError::Io { .. })
    }
}

impl<D: BlockDevice> BlockDevice for RetryingDevice<D> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn page_count(&self) -> usize {
        self.inner.page_count()
    }

    fn allocate(&mut self) -> u64 {
        self.inner.allocate()
    }

    fn write_page(&mut self, id: u64, data: &[u8]) -> Result<()> {
        self.inner.write_page(id, data)
    }

    fn read_page_owned(&self, id: u64) -> Result<Vec<u8>> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            self.read_attempts.fetch_add(1, Ordering::Relaxed);
            if attempt > 1 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                self.g_retries.inc();
            }
            match self.inner.read_page_owned(id) {
                Ok(page) => {
                    if attempt > 1 {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                        self.g_recovered.inc();
                        event!("storage.retry.recovered", page = id, attempts = attempt);
                    }
                    return Ok(page);
                }
                Err(err) if Self::retryable(&err) && attempt < self.policy.max_attempts => {
                    let backoff = self.policy.delay_for(attempt);
                    event!(
                        "storage.retry.attempt",
                        page = id,
                        attempt,
                        backoff_us = backoff.as_micros() as u64
                    );
                    std::thread::sleep(backoff);
                }
                Err(err) => {
                    if Self::retryable(&err) {
                        self.exhausted.fetch_add(1, Ordering::Relaxed);
                        self.g_exhausted.inc();
                        event!("storage.retry.exhausted", page = id, attempts = attempt);
                    }
                    return Err(err);
                }
            }
        }
    }

    fn stats(&self) -> IoStats {
        self.inner.stats()
    }

    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultMode, FaultSchedule, FaultyDevice};
    use crate::io::SimulatedDevice;

    fn faulty(schedule: FaultSchedule) -> FaultyDevice {
        let mut inner = SimulatedDevice::new(128);
        let p = inner.allocate();
        inner.write_page(p, b"payload").unwrap();
        inner.reset_stats();
        FaultyDevice::new(inner, schedule)
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy { max_attempts: 8, base_delay_us: 50, max_delay_us: 400 };
        let us = |r| p.delay_for(r).as_micros() as u64;
        assert_eq!(us(1), 50);
        assert_eq!(us(2), 100);
        assert_eq!(us(3), 200);
        assert_eq!(us(4), 400);
        assert_eq!(us(5), 400, "capped");
        assert_eq!(us(100), 400, "stays capped at any retry index");
        assert_eq!(us(u32::MAX), 400, "exponent clamps at 32, no overflow");
        assert_eq!(RetryPolicy::none().delay_for(1), Duration::ZERO);
    }

    #[test]
    fn transient_fault_recovers_within_budget() {
        // Fault fires on the very first read; the injector's worst run
        // is 3 consecutive failures, within default_reads' 4 attempts.
        let d = RetryingDevice::new(
            faulty(FaultSchedule::crash_at(0, FaultMode::Transient, 1234)),
            RetryPolicy::default_reads(),
        );
        let page = d.read_page_owned(0).expect("retry must ride out the transient run");
        assert_eq!(&page[..7], b"payload");
        let s = d.retry_stats();
        assert!(s.retries >= 1);
        assert_eq!(s.recovered, 1);
        assert_eq!(s.exhausted, 0);
        assert!(d.inner().fault_fired());
        assert!(!d.inner().is_crashed());
    }

    #[test]
    fn exhausted_retries_surface_the_last_error() {
        // A crashed device fails every attempt; the error is structured,
        // not a hang or a panic.
        let d = RetryingDevice::new(
            faulty(FaultSchedule::crash_at(0, FaultMode::IoError, 7)),
            RetryPolicy::default_reads(),
        );
        let err = d.read_page_owned(0).unwrap_err();
        assert!(matches!(err, StorageError::Io { op: "read", .. }), "{err}");
        let s = d.retry_stats();
        assert_eq!(s.read_attempts, 4);
        assert_eq!(s.retries, 3);
        assert_eq!(s.exhausted, 1);
    }

    #[test]
    fn structural_errors_are_not_retried() {
        let d = RetryingDevice::new(SimulatedDevice::new(128), RetryPolicy::default_reads());
        let err = d.read_page_owned(99).unwrap_err();
        assert!(matches!(err, StorageError::PageNotFound { page: 99 }));
        let s = d.retry_stats();
        assert_eq!(s.read_attempts, 1, "permanent errors surface immediately");
        assert_eq!(s.exhausted, 0);
    }

    #[test]
    fn golden_reads_pass_through_untouched() {
        let d = RetryingDevice::new(faulty(FaultSchedule::none()), RetryPolicy::default_reads());
        assert_eq!(&d.read_page_owned(0).unwrap()[..7], b"payload");
        assert_eq!(
            d.retry_stats(),
            RetryStats { read_attempts: 1, retries: 0, recovered: 0, exhausted: 0 }
        );
    }
}
