//! # lawsdb-storage
//!
//! Columnar storage engine for LawsDB.
//!
//! This crate is the physical-storage substrate the paper's Section 4.1
//! ("Physical Storage") operates on:
//!
//! * **Typed columns** ([`column::Column`]) with validity bitmaps, in a
//!   row-major-free, scan-friendly layout; tables ([`table::Table`]) and
//!   a concurrent [`catalog::Catalog`].
//! * A **paged layout** ([`page`], [`pager::Pager`]) over a *simulated IO
//!   device* ([`io::SimulatedDevice`]) with configurable bandwidth and
//!   latency and exact page-read accounting. The device model is what
//!   lets the benchmark suite reproduce the paper's "zero-IO scan" claim
//!   quantitatively: an approximate, model-backed answer touches zero
//!   pages, while an exact scan pays `pages × (latency + size/bandwidth)`.
//! * A family of **compression codecs** ([`compress`]): delta, zigzag +
//!   varint, bit-packing, run-length, dictionary, frame-of-reference, an
//!   LZSS + Huffman general-purpose baseline (standing in for gzip in the
//!   SPARTAN-style comparison), and the **model-residual codec** — the
//!   paper's "true semantic compression": store residuals between
//!   observed and model-predicted values and recompute the original
//!   data losslessly.
//! * A **durability layer** ([`wal::DurableStore`]): write-ahead log +
//!   shadow paging + dual CRC-guarded superblocks, so every table and
//!   catalog commit is atomic and `recover()` lands on exactly the pre-
//!   or post-commit state after a crash. A deterministic fault-injecting
//!   device ([`fault::FaultyDevice`]) crash-tests the protocol at every
//!   device operation.
//!
//! The crate knows nothing about models or queries; the residual codec
//! takes predictions as plain slices, keeping the dependency arrow
//! pointing the right way (models → storage, never back).

// `!(x > y)` guards route NaN into the error branch; codec kernels index
// several co-indexed buffers; `Column::from_str` is a constructor in a
// family (`from_i64`, `from_f64`, ...), not a `FromStr` impl.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]
#![allow(clippy::should_implement_trait)]

pub mod bitmap;
pub mod buffer;
pub mod catalog;
pub mod checksum;
pub mod column;
pub mod compress;
pub mod error;
pub mod fault;
pub mod io;
pub mod page;
pub mod pager;
pub mod retry;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;
pub mod wal;
pub mod zonemap;

pub use buffer::Buffer;
pub use catalog::Catalog;
pub use checksum::crc32;
pub use column::Column;
pub use error::{Result, StorageError};
pub use fault::{FaultMode, FaultSchedule, FaultyDevice};
pub use io::{BlockDevice, DeviceProfile, IoStats, SimulatedDevice};
pub use retry::{RetryPolicy, RetryStats, RetryingDevice};
pub use schema::{DataType, Field, Schema};
pub use table::{Table, TableBuilder};
pub use value::Value;
pub use wal::{DurableStore, RecoveryReport, StoredTable};
pub use zonemap::{
    ColumnZones, PredOp, TableSynopsis, ZoneEntry, ZoneSource, DEFAULT_ZONE_ROWS,
};
